"""DTD parser: ``<!ELEMENT ...>`` / ``<!ATTLIST ...>`` text to
:class:`~repro.dtd.ast.DTDDocument`.

Supports the full element content-model grammar (EMPTY, ANY, mixed,
deterministic children models with ``, | ? * +`` and nesting), attribute
lists, comments, processing instructions and — because real-world DTDs
such as XMark's rely on them — parameter entities (``<!ENTITY % n "...">``
with ``%n;`` references, expanded textually as per XML 1.0).
"""

from __future__ import annotations

from repro.dtd.ast import (
    AttlistDecl,
    AttributeDef,
    AttributeDefaultKind,
    ContentKind,
    ContentModel,
    DTDDocument,
    ElementDecl,
)
from repro.dtd.regex import Alt, Atom, Opt, Plus, Regex, Seq, Star
from repro.errors import DTDSyntaxError
from repro.xmltree.lexer import is_name_char, is_name_start


class _Cursor:
    """Tiny in-memory scanner for DTD text (DTDs are small; no need for
    the chunked scanner used on documents)."""

    __slots__ = ("text", "position")

    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0

    def at_eof(self) -> bool:
        return self.position >= len(self.text)

    def peek(self) -> str:
        if self.at_eof():
            return ""
        return self.text[self.position]

    def advance(self) -> str:
        char = self.peek()
        self.position += 1
        return char

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.position)

    def try_consume(self, prefix: str) -> bool:
        if self.startswith(prefix):
            self.position += len(prefix)
            return True
        return False

    def expect(self, prefix: str, context: str) -> None:
        if not self.try_consume(prefix):
            found = self.text[self.position : self.position + 16]
            raise DTDSyntaxError(f"expected {prefix!r} in {context}, found {found!r}")

    def skip_whitespace(self) -> None:
        while not self.at_eof() and self.text[self.position] in " \t\r\n":
            self.position += 1

    def read_name(self, context: str) -> str:
        start = self.position
        char = self.peek()
        if not char or not is_name_start(char):
            raise DTDSyntaxError(f"expected a name in {context}, found {char!r}")
        self.position += 1
        while not self.at_eof() and is_name_char(self.text[self.position]):
            self.position += 1
        return self.text[start : self.position]

    def read_until(self, delimiter: str, context: str) -> str:
        index = self.text.find(delimiter, self.position)
        if index == -1:
            raise DTDSyntaxError(f"unterminated {context}")
        result = self.text[self.position : index]
        self.position = index + len(delimiter)
        return result

    def read_quoted(self, context: str) -> str:
        quote = self.peek()
        if quote not in ("'", '"'):
            raise DTDSyntaxError(f"expected quoted literal in {context}")
        self.advance()
        return self.read_until(quote, context)


def _expand_parameter_entities(text: str, entities: dict[str, str], depth: int = 0) -> str:
    """Textually expand ``%name;`` references (recursively, with a depth
    guard against definition cycles)."""
    if depth > 32:
        raise DTDSyntaxError("parameter entity expansion too deep (cycle?)")
    if "%" not in text:
        return text
    pieces: list[str] = []
    position = 0
    while True:
        percent = text.find("%", position)
        if percent == -1:
            pieces.append(text[position:])
            return "".join(pieces)
        semi = text.find(";", percent + 1)
        name = text[percent + 1 : semi] if semi != -1 else ""
        if semi == -1 or not name or not all(is_name_char(c) or is_name_start(c) for c in name):
            # A bare '%' (e.g. inside a quoted literal) — keep it.
            pieces.append(text[position : percent + 1])
            position = percent + 1
            continue
        pieces.append(text[position:percent])
        if name not in entities:
            raise DTDSyntaxError(f"undefined parameter entity %{name};")
        pieces.append(_expand_parameter_entities(entities[name], entities, depth + 1))
        position = semi + 1


class DTDParser:
    """Parser over (parameter-entity-expanded) DTD text."""

    def __init__(self) -> None:
        self._entities: dict[str, str] = {}

    # -- public -----------------------------------------------------------

    def parse(self, text: str) -> DTDDocument:
        document = DTDDocument()
        cursor = _Cursor(text)
        while True:
            cursor.skip_whitespace()
            if cursor.at_eof():
                return document
            if cursor.try_consume("<!--"):
                cursor.read_until("-->", "comment")
            elif cursor.try_consume("<?"):
                cursor.read_until("?>", "processing instruction")
            elif cursor.startswith("<!ENTITY"):
                self._parse_entity(cursor)
            elif cursor.startswith("<!ELEMENT"):
                document.elements.append(self._parse_element(cursor))
            elif cursor.startswith("<!ATTLIST"):
                document.attlists.append(self._parse_attlist(cursor))
            elif cursor.startswith("<!NOTATION"):
                cursor.read_until(">", "notation declaration")
            elif cursor.peek() == "%":
                # A declaration-level parameter entity reference.
                cursor.advance()
                name = cursor.read_name("parameter entity reference")
                cursor.expect(";", "parameter entity reference")
                if name not in self._entities:
                    raise DTDSyntaxError(f"undefined parameter entity %{name};")
                replacement = _expand_parameter_entities(self._entities[name], self._entities)
                rest = cursor.text[cursor.position :]
                cursor.text = replacement + rest
                cursor.position = 0
            else:
                found = cursor.text[cursor.position : cursor.position + 24]
                raise DTDSyntaxError(f"unrecognised DTD content: {found!r}")

    # -- declarations --------------------------------------------------------

    def _parse_entity(self, cursor: _Cursor) -> None:
        cursor.expect("<!ENTITY", "entity declaration")
        cursor.skip_whitespace()
        if cursor.try_consume("%"):
            cursor.skip_whitespace()
            name = cursor.read_name("parameter entity declaration")
            cursor.skip_whitespace()
            value = cursor.read_quoted("parameter entity declaration")
            cursor.skip_whitespace()
            cursor.expect(">", "parameter entity declaration")
            # First definition wins, as per the XML specification.
            self._entities.setdefault(name, value)
        else:
            # General entity: record nothing (documents using it are out of
            # the reproduced scope) but consume the declaration.
            cursor.read_until(">", "entity declaration")

    def _parse_element(self, cursor: _Cursor) -> ElementDecl:
        cursor.expect("<!ELEMENT", "element declaration")
        cursor.skip_whitespace()
        tag = cursor.read_name("element declaration")
        cursor.skip_whitespace()
        remainder = self._expanded_declaration_body(cursor, "element declaration")
        body = _Cursor(remainder)
        body.skip_whitespace()
        content = self._parse_content_model(body, tag)
        body.skip_whitespace()
        if not body.at_eof():
            raise DTDSyntaxError(f"trailing content in <!ELEMENT {tag}>: {body.text[body.position:]!r}")
        return ElementDecl(tag, content)

    def _expanded_declaration_body(self, cursor: _Cursor, context: str) -> str:
        """Consume up to the closing '>' (quote-aware, so a '>' inside a
        quoted default value does not end the declaration) and expand
        parameter entities in the body."""
        start = cursor.position
        quote = ""
        while True:
            char = cursor.peek()
            if not char:
                raise DTDSyntaxError(f"unterminated {context}")
            if quote:
                if char == quote:
                    quote = ""
            elif char in ("'", '"'):
                quote = char
            elif char == ">":
                raw = cursor.text[start : cursor.position]
                cursor.advance()
                return _expand_parameter_entities(raw, self._entities)
            cursor.advance()

    def _parse_content_model(self, cursor: _Cursor, tag: str) -> ContentModel:
        if cursor.try_consume("EMPTY"):
            return ContentModel(ContentKind.EMPTY)
        if cursor.try_consume("ANY"):
            return ContentModel(ContentKind.ANY)
        if cursor.peek() != "(":
            raise DTDSyntaxError(f"bad content model for <!ELEMENT {tag}>")
        # Look ahead for #PCDATA to distinguish mixed content.
        probe = cursor.text[cursor.position :].lstrip("( \t\r\n")
        if probe.startswith("#PCDATA"):
            return self._parse_mixed(cursor, tag)
        regex = self._parse_children_expression(cursor, tag)
        return ContentModel(ContentKind.CHILDREN, regex=regex)

    def _parse_mixed(self, cursor: _Cursor, tag: str) -> ContentModel:
        cursor.expect("(", f"mixed content of {tag}")
        cursor.skip_whitespace()
        cursor.expect("#PCDATA", f"mixed content of {tag}")
        tags: list[str] = []
        while True:
            cursor.skip_whitespace()
            if cursor.try_consume(")"):
                break
            cursor.expect("|", f"mixed content of {tag}")
            cursor.skip_whitespace()
            tags.append(cursor.read_name(f"mixed content of {tag}"))
        if tags:
            cursor.expect("*", f"mixed content of {tag}")
        else:
            cursor.try_consume("*")  # "(#PCDATA)*" is legal too
        return ContentModel(ContentKind.MIXED, mixed_tags=tuple(tags))

    def _parse_children_expression(self, cursor: _Cursor, tag: str) -> Regex:
        """Parse a parenthesised choice/sequence with occurrence suffix."""
        cursor.expect("(", f"content model of {tag}")
        items: list[Regex] = [self._parse_cp(cursor, tag)]
        cursor.skip_whitespace()
        separator = ""
        while cursor.peek() in (",", "|"):
            char = cursor.advance()
            if separator and char != separator:
                raise DTDSyntaxError(f"mixed ',' and '|' at the same level in content model of {tag}")
            separator = char
            items.append(self._parse_cp(cursor, tag))
            cursor.skip_whitespace()
        cursor.expect(")", f"content model of {tag}")
        inner: Regex
        if len(items) == 1:
            inner = items[0]
        elif separator == "|":
            inner = Alt(items)
        else:
            inner = Seq(items)
        return self._apply_occurrence(cursor, inner)

    def _parse_cp(self, cursor: _Cursor, tag: str) -> Regex:
        cursor.skip_whitespace()
        if cursor.peek() == "(":
            return self._parse_children_expression(cursor, tag)
        name = cursor.read_name(f"content model of {tag}")
        return self._apply_occurrence(cursor, Atom(name))

    @staticmethod
    def _apply_occurrence(cursor: _Cursor, regex: Regex) -> Regex:
        char = cursor.peek()
        if char == "?":
            cursor.advance()
            return Opt(regex)
        if char == "*":
            cursor.advance()
            return Star(regex)
        if char == "+":
            cursor.advance()
            return Plus(regex)
        return regex

    def _parse_attlist(self, cursor: _Cursor) -> AttlistDecl:
        cursor.expect("<!ATTLIST", "attribute list")
        cursor.skip_whitespace()
        tag = cursor.read_name("attribute list")
        remainder = self._expanded_declaration_body(cursor, f"<!ATTLIST {tag}>")
        body = _Cursor(remainder)
        attributes: list[AttributeDef] = []
        while True:
            body.skip_whitespace()
            if body.at_eof():
                return AttlistDecl(tag, tuple(attributes))
            name = body.read_name(f"<!ATTLIST {tag}>")
            body.skip_whitespace()
            attribute_type = self._parse_attribute_type(body, tag)
            body.skip_whitespace()
            default_kind, default_value = self._parse_attribute_default(body, tag)
            attributes.append(AttributeDef(name, attribute_type, default_kind, default_value))

    @staticmethod
    def _parse_attribute_type(body: _Cursor, tag: str) -> str:
        if body.peek() == "(":
            # Enumeration: normalise as "(a|b|c)".
            raw = body.read_until(")", f"enumeration in <!ATTLIST {tag}>")
            values = [value.strip() for value in raw.lstrip("(").split("|")]
            return "(" + "|".join(values) + ")"
        token = body.read_name(f"attribute type in <!ATTLIST {tag}>")
        if token == "NOTATION":
            body.skip_whitespace()
            raw = body.read_until(")", f"NOTATION in <!ATTLIST {tag}>")
            values = [value.strip() for value in raw.lstrip("(").split("|")]
            return "NOTATION(" + "|".join(values) + ")"
        return token

    @staticmethod
    def _parse_attribute_default(body: _Cursor, tag: str) -> tuple[AttributeDefaultKind, str | None]:
        if body.try_consume("#REQUIRED"):
            return AttributeDefaultKind.REQUIRED, None
        if body.try_consume("#IMPLIED"):
            return AttributeDefaultKind.IMPLIED, None
        if body.try_consume("#FIXED"):
            body.skip_whitespace()
            return AttributeDefaultKind.FIXED, body.read_quoted(f"#FIXED default in <!ATTLIST {tag}>")
        return AttributeDefaultKind.DEFAULT, body.read_quoted(f"default value in <!ATTLIST {tag}>")


def parse_dtd(text: str) -> DTDDocument:
    """Parse DTD text into its declaration list."""
    return DTDParser().parse(text)
