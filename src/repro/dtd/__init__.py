"""DTD substrate: parsing, local tree grammars, properties, validation.

The paper treats a DTD as a local tree grammar ``(X, E)`` (Section 2.2).
This package parses real ``.dtd`` syntax, lowers it to that formal object,
checks the Definition 4.3 properties that gate completeness, and validates
documents producing the interpretation ``ℑ`` used by type-driven
projection.
"""

from repro.dtd.ast import (
    AttlistDecl,
    AttributeDef,
    AttributeDefaultKind,
    ContentKind,
    ContentModel,
    DTDDocument,
    ElementDecl,
)
from repro.dtd.automaton import GlushkovAutomaton
from repro.dtd.grammar import (
    AttributeProduction,
    ElementProduction,
    Grammar,
    Production,
    TextProduction,
    attribute_name,
    grammar_from_dtd,
    grammar_from_productions,
    grammar_from_text,
    is_attribute_name,
    is_text_name,
    text_name,
)
from repro.dtd.parser import DTDParser, parse_dtd
from repro.dtd.singletype import SingleTypeGrammar, single_type_grammar
from repro.dtd.properties import (
    GrammarProperties,
    analyze_grammar,
    is_parent_unambiguous,
    is_recursive,
    is_star_guarded,
    recursive_names,
)
from repro.dtd.regex import Alt, Atom, Empty, Epsilon, Opt, Plus, Regex, Seq, Star
from repro.dtd.validator import EventValidator, Interpretation, TreeValidator, validate

__all__ = [
    "Alt",
    "Atom",
    "AttlistDecl",
    "AttributeDef",
    "AttributeDefaultKind",
    "AttributeProduction",
    "ContentKind",
    "ContentModel",
    "DTDDocument",
    "DTDParser",
    "ElementDecl",
    "ElementProduction",
    "Empty",
    "Epsilon",
    "EventValidator",
    "GlushkovAutomaton",
    "Grammar",
    "GrammarProperties",
    "Interpretation",
    "Opt",
    "Plus",
    "Production",
    "Regex",
    "Seq",
    "SingleTypeGrammar",
    "Star",
    "TextProduction",
    "TreeValidator",
    "analyze_grammar",
    "attribute_name",
    "grammar_from_dtd",
    "grammar_from_productions",
    "grammar_from_text",
    "is_attribute_name",
    "is_parent_unambiguous",
    "is_recursive",
    "is_star_guarded",
    "is_text_name",
    "parse_dtd",
    "recursive_names",
    "single_type_grammar",
    "text_name",
    "validate",
]
