"""Single-type tree grammars — the XML Schema extension of footnote 1.

The paper: "The extension of our approach to XML Schema simply needs some
special treatment of local elements."  XML Schema corresponds to
*single-type* tree grammars [Murata/Lee/Mani]: unlike a DTD, two names may
define the same element tag (*local elements* — ``title`` inside ``book``
vs ``title`` inside ``chapter``), as long as competing names never appear
in the same content model.  That restriction keeps the interpretation
deterministic: a node's name is determined by its *parent's name* plus its
tag, so validation, the streaming pruner and the whole static analysis
work exactly as for DTDs — only name resolution changes.

The XSD *syntax* front-end lives in :mod:`repro.schema.xsd` — schemas
with local elements compile to this class automatically.  Grammars can
also be built programmatically with :func:`single_type_grammar`, in the
paper's notation::

    grammar = single_type_grammar("Root", {
        "Root":    ("library", Seq([Star(Atom("Book")), Star(Atom("Film"))])),
        "Book":    ("item",    Seq([Atom("BTitle"), Atom("Pages")])),
        "Film":    ("item",    Seq([Atom("FTitle"), Atom("Minutes")])),
        ...
    })

Here both ``Book`` and ``Film`` define tag ``item`` — a local-element
setup a DTD cannot express.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.dtd.grammar import (
    AttributeProduction,
    ElementProduction,
    Grammar,
    Production,
    TextProduction,
)
from repro.dtd.regex import Regex
from repro.errors import GrammarError


class SingleTypeGrammar(Grammar):
    """A tree grammar in the single-type class (XML Schema).

    Construction checks the single-type restriction: within any one
    content model, two distinct names must not share an element tag
    (otherwise the interpretation would be ambiguous — that would be the
    *regular* tree grammar class, beyond XML Schema).
    """

    def __init__(self, root: str, productions: Iterable[Production]) -> None:
        super().__init__(root, productions, require_local=False)
        # (parent name, tag) -> child name; the single-type resolver.
        self._child_by_tag: dict[tuple[str, str], str] = {}
        for name, production in self.productions.items():
            if not isinstance(production, ElementProduction):
                continue
            seen: dict[str, str] = {}
            for child in self.children_of(name):
                child_production = self.productions[child]
                if not isinstance(child_production, ElementProduction):
                    continue
                clash = seen.get(child_production.tag)
                if clash is not None and clash != child:
                    raise GrammarError(
                        f"content model of {name!r} is not single-type: names "
                        f"{clash!r} and {child!r} both define tag "
                        f"{child_production.tag!r}"
                    )
                seen[child_production.tag] = child
                self._child_by_tag[(name, child_production.tag)] = child

    def child_element_name(self, parent_name: str | None, tag: str) -> str | None:
        """Resolve the name of a ``tag`` element appearing under an
        element named ``parent_name`` (None resolves the document root)."""
        if parent_name is None:
            root_production = self.productions[self.root]
            if isinstance(root_production, ElementProduction) and root_production.tag == tag:
                return self.root
            return None
        return self._child_by_tag.get((parent_name, tag))


def single_type_grammar(
    root: str, edges: Mapping[str, "tuple[str, Regex] | None"]
) -> SingleTypeGrammar:
    """Build a single-type grammar in the paper's ``Y -> a[r]`` notation
    (None defines ``Y -> String``), mirroring
    :func:`repro.dtd.grammar.grammar_from_productions`."""
    productions: list[Production] = []
    for name, edge in edges.items():
        if edge is None:
            productions.append(TextProduction(name))
        else:
            tag, regex = edge
            productions.append(ElementProduction(name, tag, regex))
    return SingleTypeGrammar(root, productions)
