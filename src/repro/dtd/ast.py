"""Syntactic AST for parsed DTD declarations.

This is the *surface* representation produced by :mod:`repro.dtd.parser`
(element declarations with EMPTY/ANY/mixed/children content, attribute
lists).  :mod:`repro.dtd.grammar` lowers it to the paper's semantic object,
a local tree grammar over names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.dtd.regex import Regex


class ContentKind(Enum):
    EMPTY = "EMPTY"
    ANY = "ANY"
    MIXED = "MIXED"
    CHILDREN = "CHILDREN"


@dataclass(frozen=True, slots=True)
class ContentModel:
    """Content of an ``<!ELEMENT ...>`` declaration.

    * ``EMPTY``   — no content; ``regex`` and ``mixed_tags`` unused.
    * ``ANY``     — any mixture of declared elements and text.
    * ``MIXED``   — ``(#PCDATA | t1 | ... | tn)*``; ``mixed_tags`` holds
      the ``ti`` (possibly empty, for text-only elements).
    * ``CHILDREN``— a deterministic content model; ``regex`` is over
      element *tags* at this stage.
    """

    kind: ContentKind
    regex: Regex | None = None
    mixed_tags: tuple[str, ...] = ()

    def allows_text(self) -> bool:
        return self.kind in (ContentKind.MIXED, ContentKind.ANY)


@dataclass(frozen=True, slots=True)
class ElementDecl:
    """``<!ELEMENT tag content>``."""

    tag: str
    content: ContentModel


class AttributeDefaultKind(Enum):
    REQUIRED = "#REQUIRED"
    IMPLIED = "#IMPLIED"
    FIXED = "#FIXED"
    DEFAULT = "default"  # a plain default value


@dataclass(frozen=True, slots=True)
class AttributeDef:
    """A single attribute definition inside an ``<!ATTLIST ...>``.

    ``attribute_type`` is the raw type token (``CDATA``, ``ID``, an
    enumeration rendered as ``(a|b|c)``...); the static analysis only needs
    the attribute's existence, but the type is kept for completeness.
    """

    name: str
    attribute_type: str
    default_kind: AttributeDefaultKind
    default_value: str | None = None


@dataclass(frozen=True, slots=True)
class AttlistDecl:
    """``<!ATTLIST tag attdefs...>``."""

    tag: str
    attributes: tuple[AttributeDef, ...]


@dataclass(slots=True)
class DTDDocument:
    """All declarations of one DTD, in source order.

    Multiple ATTLIST declarations for one element are legal in XML and are
    merged by the grammar lowering.
    """

    elements: list[ElementDecl] = field(default_factory=list)
    attlists: list[AttlistDecl] = field(default_factory=list)

    def element_tags(self) -> list[str]:
        return [declaration.tag for declaration in self.elements]
