"""Glushkov automata for content-model validation.

A content model ``r`` over names compiles to a position automaton with one
state per atom occurrence plus a start state.  XML content models are
required to be deterministic ("1-unambiguous"), in which case the Glushkov
automaton is a DFA; we do not *rely* on that — transitions are computed as
subset moves with on-the-fly determinisation and memoisation — so the
validator also works for arbitrary (test-generated) grammars.
"""

from __future__ import annotations

from typing import Iterable

from repro.dtd.regex import Regex, assign_positions, first_set, follow_map, last_set


class GlushkovAutomaton:
    """Compiled matcher for one content model.

    States are frozensets of Glushkov positions; position 0 is the start
    state.  ``step`` and ``matches`` are the full protocol; the streaming
    validator keeps one live state per open element.
    """

    __slots__ = ("_names", "_initial", "_accepting", "_transitions", "_dfa_cache", "_position_names")

    def __init__(self, regex: Regex) -> None:
        atoms = assign_positions(regex)
        names_by_position = {atom.position: atom.name for atom in atoms}
        self._position_names = names_by_position
        self._names = regex.names()

        firsts = first_set(regex)
        lasts = last_set(regex)
        follow = follow_map(regex)

        # _transitions[p] = positions reachable from p, keyed by name.
        self._transitions: dict[int, dict[str, frozenset[int]]] = {0: {}}
        for position in firsts:
            name = names_by_position[position]
            self._transitions[0].setdefault(name, frozenset())
            self._transitions[0][name] |= {position}
        for atom in atoms:
            table: dict[str, frozenset[int]] = {}
            for successor in follow[atom.position]:
                name = names_by_position[successor]
                table.setdefault(name, frozenset())
                table[name] |= {successor}
            self._transitions[atom.position] = table

        self._initial: frozenset[int] = frozenset((0,))
        self._accepting: frozenset[int] = lasts | (frozenset((0,)) if regex.nullable() else frozenset())
        self._dfa_cache: dict[tuple[frozenset[int], str], frozenset[int]] = {}

    # -- protocol ------------------------------------------------------------

    @property
    def initial(self) -> frozenset[int]:
        return self._initial

    def step(self, state: frozenset[int], name: str) -> frozenset[int]:
        """Advance by one name.  The empty frozenset is the sink state."""
        key = (state, name)
        cached = self._dfa_cache.get(key)
        if cached is not None:
            return cached
        result: set[int] = set()
        for position in state:
            targets = self._transitions.get(position, {}).get(name)
            if targets:
                result.update(targets)
        frozen = frozenset(result)
        self._dfa_cache[key] = frozen
        return frozen

    def is_accepting(self, state: frozenset[int]) -> bool:
        return bool(state & self._accepting)

    def matches(self, sequence: Iterable[str]) -> bool:
        state = self._initial
        for name in sequence:
            state = self.step(state, name)
            if not state:
                return False
        return self.is_accepting(state)

    def allowed_names(self, state: frozenset[int]) -> set[str]:
        """Names with a non-sink transition from ``state`` (for error
        messages: "expected one of ...")."""
        allowed: set[str] = set()
        for position in state:
            allowed.update(self._transitions.get(position, {}))
        return allowed

    @property
    def alphabet(self) -> frozenset[str]:
        return self._names
