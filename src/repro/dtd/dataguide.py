"""Dataguide-based grammar inference — pruning without a DTD.

The paper's conclusion: "it should be easy to adapt the approach to work
in the absence of DTDs, by using dataguides/path-summaries instead".
This module does exactly that: it summarises one or more documents into a
local tree grammar whose language contains them, so the whole static
analysis (Figures 1 and 2) and the streaming pruner run unchanged.

The summary is the classic *strong dataguide* collapsed by label —
legitimate here because local tree grammars cannot distinguish two
elements with the same tag anyway (condition 3 of Section 2.2).  For each
tag we record:

* the set of child tags observed anywhere under it,
* whether text content was observed,
* the set of attributes observed,

and emit the production ``Tag -> tag[(C1 | ... | Cn | tag#text?)*]``.
The starred union over-approximates every observed child sequence, so
every summarised document validates against the inferred grammar
(:func:`grammar_from_documents` is *sound* for them); by Theorem 4.5 any
projector inferred from it prunes those documents soundly.

Precision note: the starred-union content models are not \\*-guarded in a
useful sense for completeness (every union is starred, so they *are*
\\*-guarded — but parent ambiguity is common in summarised data), so the
completeness guarantee usually does not apply; soundness always does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.dtd.ast import AttributeDef, AttributeDefaultKind
from repro.dtd.grammar import (
    AttributeProduction,
    ElementProduction,
    Grammar,
    Production,
    TextProduction,
    attribute_name,
    text_name,
)
from repro.dtd.regex import Alt, Atom, Epsilon, Regex, Star
from repro.errors import GrammarError
from repro.xmltree.events import Characters, EndElement, Event, StartElement
from repro.xmltree.nodes import Document, Element, Text


@dataclass(slots=True)
class TagSummary:
    """What has been observed for one element tag."""

    children: set[str] = field(default_factory=set)
    attributes: set[str] = field(default_factory=set)
    has_text: bool = False
    occurrences: int = 0


class DataguideBuilder:
    """Incremental dataguide: feed documents (or raw event streams), then
    materialise the grammar.

    >>> builder = DataguideBuilder()
    >>> builder.add_document(document)
    >>> grammar = builder.grammar()
    """

    def __init__(self) -> None:
        self._summaries: dict[str, TagSummary] = {}
        self._roots: set[str] = set()
        # Event-mode state.
        self._stack: list[str] = []

    # -- ingestion ---------------------------------------------------------

    def add_document(self, document: Document) -> None:
        self._roots.add(document.root.tag)
        stack: list[Element] = [document.root]
        while stack:
            element = stack.pop()
            summary = self._summary(element.tag)
            summary.occurrences += 1
            summary.attributes.update(element.attributes)
            for child in element.children:
                if isinstance(child, Text):
                    if child.value.strip():
                        summary.has_text = True
                else:
                    assert isinstance(child, Element)
                    summary.children.add(child.tag)
                    stack.append(child)

    def add_event(self, event: Event) -> None:
        """Streaming ingestion: summarise without building a tree."""
        if isinstance(event, StartElement):
            if not self._stack:
                self._roots.add(event.tag)
            else:
                self._summary(self._stack[-1]).children.add(event.tag)
            summary = self._summary(event.tag)
            summary.occurrences += 1
            summary.attributes.update(event.attributes)
            self._stack.append(event.tag)
        elif isinstance(event, EndElement):
            self._stack.pop()
        elif isinstance(event, Characters):
            if self._stack and event.text.strip():
                self._summary(self._stack[-1]).has_text = True

    def add_events(self, events: Iterable[Event]) -> None:
        for event in events:
            self.add_event(event)

    def _summary(self, tag: str) -> TagSummary:
        summary = self._summaries.get(tag)
        if summary is None:
            summary = TagSummary()
            self._summaries[tag] = summary
        return summary

    # -- materialisation -------------------------------------------------------

    def materialise(self, root: str | None = None) -> "tuple[str, list[Production]]":
        """The inferred ``(root, productions)`` pair, deterministically.

        Production order (and every child/attribute union inside the
        regexes) is sorted, so summarising one corpus in *any* ingestion
        order yields byte-identical productions — and therefore
        byte-identical grammar fingerprints, which key the projector
        cache, resident-worker pins and the attestation ledger.  A
        property test pins this.

        ``root`` defaults to the single observed root tag; summarising
        documents with different roots requires choosing one explicitly.
        """
        if not self._summaries:
            raise GrammarError("no documents were summarised")
        if root is None:
            if len(self._roots) != 1:
                raise GrammarError(
                    f"ambiguous root (observed {sorted(self._roots)}); pass root="
                )
            root = next(iter(self._roots))
        if root not in self._summaries:
            raise GrammarError(f"root tag {root!r} was never observed")

        productions: list[Production] = []
        for tag, summary in sorted(self._summaries.items()):
            alternatives: list[Regex] = [Atom(child) for child in sorted(summary.children)]
            if summary.has_text:
                alternatives.append(Atom(text_name(tag)))
            if not alternatives:
                regex: Regex = Epsilon()
            elif len(alternatives) == 1:
                regex = Star(alternatives[0])
            else:
                regex = Star(Alt(alternatives))
            attributes = tuple(
                AttributeDef(name, "CDATA", AttributeDefaultKind.IMPLIED)
                for name in sorted(summary.attributes)
            )
            productions.append(ElementProduction(tag, tag, regex, attributes))
            if summary.has_text:
                productions.append(TextProduction(text_name(tag)))
            for name in sorted(summary.attributes):
                productions.append(AttributeProduction(attribute_name(tag, name), tag, name))
        return root, productions

    def grammar(self, root: str | None = None) -> Grammar:
        """The inferred local tree grammar (see :meth:`materialise`)."""
        grammar_root, productions = self.materialise(root)
        return Grammar(grammar_root, productions)

    def statistics(self) -> dict[str, TagSummary]:
        """The raw per-tag summaries (for inspection and tests)."""
        return dict(self._summaries)


def grammar_from_documents(documents: Iterable[Document] | Document, root: str | None = None) -> Grammar:
    """One-shot: summarise document(s) into a grammar (sound for them)."""
    builder = DataguideBuilder()
    if isinstance(documents, Document):
        documents = [documents]
    for document in documents:
        builder.add_document(document)
    return builder.grammar(root)


def grammar_from_file(path: str, root: str | None = None) -> Grammar:
    """Summarise a document file *streaming* — the dataguide never holds
    the tree, so arbitrarily large inputs summarise in constant memory."""
    from repro.xmltree.parser import parse_events

    builder = DataguideBuilder()
    with open(path, "r", encoding="utf-8") as handle:
        builder.add_events(parse_events(handle))
    return builder.grammar(root)
