"""Validation of documents against a local tree grammar (Def 2.4).

Validation produces the *interpretation* ``ℑ : Ids(t) → DN(E)`` as a side
effect — exactly what the type-driven projection of Def 2.7 consumes.  For
a DTD (a *local* tree grammar) the interpretation is unique because the
element tag determines the name; the validator therefore only has to check
content models and report the mapping.

Two validators are provided:

* :class:`TreeValidator` over in-memory documents, returning an
  :class:`Interpretation`;
* :class:`EventValidator` over the parser's event stream, used by the
  combined validate-and-prune pass of :mod:`repro.projection.streaming`
  ("pruning can be executed during parsing and/or validation and brings no
  overhead", Section 1.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dtd.automaton import GlushkovAutomaton
from repro.dtd.grammar import (
    AttributeProduction,
    ElementProduction,
    Grammar,
    TextProduction,
    text_name,
)
from repro.errors import ValidationError
from repro.xmltree.events import Characters, EndElement, Event, StartElement
from repro.xmltree.nodes import Document, Element, Node, Text


@dataclass(slots=True)
class Interpretation:
    """The mapping ``ℑ`` from node identifiers to grammar names."""

    grammar: Grammar
    names: dict[int, str]

    def __getitem__(self, node_id: int) -> str:
        return self.names[node_id]

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.names

    def name_of(self, node: Node) -> str:
        return self.names[node.node_id]

    def image(self, node_ids) -> frozenset[str]:
        """``ℑ(S)`` for a set of identifiers."""
        return frozenset(self.names[node_id] for node_id in node_ids)


class _AutomatonCache:
    """One compiled Glushkov automaton per element production, shared by
    both validators and built lazily."""

    __slots__ = ("_grammar", "_automata")

    def __init__(self, grammar: Grammar) -> None:
        self._grammar = grammar
        self._automata: dict[str, GlushkovAutomaton] = {}

    def automaton(self, name: str) -> GlushkovAutomaton:
        automaton = self._automata.get(name)
        if automaton is None:
            production = self._grammar.production(name)
            assert isinstance(production, ElementProduction)
            automaton = GlushkovAutomaton(production.regex)
            self._automata[name] = automaton
        return automaton


class TreeValidator:
    """Validate an in-memory document, producing the interpretation.

    ``ignore_whitespace`` controls whether whitespace-only text in
    element-only content is ignorable (the standard behaviour for
    pretty-printed documents) or a validation error.
    """

    def __init__(self, grammar: Grammar, ignore_whitespace: bool = True, check_attributes: bool = True) -> None:
        self._grammar = grammar
        self._ignore_whitespace = ignore_whitespace
        self._check_attributes = check_attributes
        self._automata = _AutomatonCache(grammar)

    def validate(self, document: Document) -> Interpretation:
        grammar = self._grammar
        root_production = grammar.production(grammar.root)
        if not isinstance(root_production, ElementProduction):
            raise ValidationError(f"root name {grammar.root!r} is not an element production")
        if document.root.tag != root_production.tag:
            raise ValidationError(
                f"root element is <{document.root.tag}>, expected <{root_production.tag}>",
                document.root.node_id,
            )
        names: dict[int, str] = {}
        # Iterative DFS; children are validated when their parent is visited.
        stack: list[tuple[Element, str]] = [(document.root, grammar.root)]
        while stack:
            element, name = stack.pop()
            names[element.node_id] = name
            production = grammar.production(name)
            assert isinstance(production, ElementProduction)
            if self._check_attributes:
                self._validate_attributes(element, production)
            child_names = self._children_names(element, production)
            sequence = [child_name for _, child_name in child_names]
            automaton = self._automata.automaton(name)
            if not automaton.matches(sequence):
                raise ValidationError(
                    f"content of <{element.tag}> does not match its model: "
                    f"found ({', '.join(sequence) or 'empty'})",
                    element.node_id,
                )
            for child, child_name in child_names:
                if isinstance(child, Element):
                    stack.append((child, child_name))
                else:
                    names[child.node_id] = child_name
        return Interpretation(grammar, names)

    # -- helpers -------------------------------------------------------------

    def _children_names(
        self, element: Element, production: ElementProduction
    ) -> list[tuple[Node, str]]:
        """Assign a name to each child (the unique one a local grammar
        permits), dropping ignorable whitespace."""
        grammar = self._grammar
        own_text = grammar.text_child_of(production.name)
        result: list[tuple[Node, str]] = []
        for child in element.children:
            if isinstance(child, Text):
                if own_text is not None:
                    result.append((child, own_text))
                elif self._ignore_whitespace and not child.value.strip():
                    continue
                else:
                    raise ValidationError(
                        f"text content not allowed in <{element.tag}>", child.node_id
                    )
            else:
                assert isinstance(child, Element)
                child_name = grammar.child_element_name(production.name, child.tag)
                if child_name is None:
                    raise ValidationError(
                        f"undeclared element <{child.tag}> in <{element.tag}>",
                        child.node_id,
                    )
                result.append((child, child_name))
        return result

    def _validate_attributes(self, element: Element, production: ElementProduction) -> None:
        declared = {attr.name: attr for attr in production.attributes}
        for attr in production.attributes:
            from repro.dtd.ast import AttributeDefaultKind

            if attr.default_kind is AttributeDefaultKind.REQUIRED and attr.name not in element.attributes:
                raise ValidationError(
                    f"missing required attribute {attr.name!r} on <{element.tag}>",
                    element.node_id,
                )
        # Undeclared attributes are tolerated (non-strict mode is the
        # pragmatic default; XMark documents are attribute-clean anyway).
        del declared


def validate(document: Document, grammar: Grammar, ignore_whitespace: bool = True) -> Interpretation:
    """Validate ``document`` against ``grammar``; returns ``ℑ``."""
    return TreeValidator(grammar, ignore_whitespace=ignore_whitespace).validate(document)


class EventValidator:
    """Streaming validator driven one event at a time.

    Feed it every event in order; it raises :class:`ValidationError` on the
    first violation.  :meth:`current_name` reports the grammar name of the
    innermost open element, which is how the streaming pruner learns the
    interpretation without building the tree.
    """

    def __init__(
        self,
        grammar: Grammar,
        ignore_whitespace: bool = True,
        check_attributes: "bool | None" = None,
    ) -> None:
        self._grammar = grammar
        self._ignore_whitespace = ignore_whitespace
        self._automata = _AutomatonCache(grammar)
        # Attribute checking is off by default (matching the tree
        # validator's tolerance of undeclared attributes), but grammars
        # can demand it: an inferred dataguide grammar sets
        # ``strict_attributes`` because an attribute never seen in the
        # sample is evidence the document strays — silently dropping it
        # in the pruned output would be wrong bytes, not tolerance.
        if check_attributes is None:
            check_attributes = bool(getattr(grammar, "strict_attributes", False))
        self._check_attributes = check_attributes
        self._declared_attrs: dict[str, frozenset[str]] = {}
        # Stack of [name, automaton, live state]; None before the root.
        self._stack: list[list] = []
        self._done = False

    def current_name(self) -> str | None:
        if not self._stack:
            return None
        return self._stack[-1][0]

    def feed(self, event: Event) -> str | None:
        """Process one event.  For Start/Characters events, returns the
        grammar name assigned to that node; otherwise None."""
        grammar = self._grammar
        if isinstance(event, StartElement):
            if self._done:
                raise ValidationError("content after the root element closed")
            parent_name = self._stack[-1][0] if self._stack else None
            name = grammar.child_element_name(parent_name, event.tag)
            if not self._stack:
                if name != grammar.root:
                    root_tag = grammar.tag_of(grammar.root)
                    raise ValidationError(
                        f"root element is <{event.tag}>, expected <{root_tag}>"
                    )
            elif name is None:
                raise ValidationError(f"undeclared element <{event.tag}>")
            else:
                self._advance(name, f"<{event.tag}>")
            if self._check_attributes and event.attributes:
                self._validate_attributes(name, event)
            automaton = self._automata.automaton(name)
            self._stack.append([name, automaton, automaton.initial])
            return name
        if isinstance(event, EndElement):
            name, automaton, state = self._stack.pop()
            if not automaton.is_accepting(state):
                expected = ", ".join(sorted(automaton.allowed_names(state))) or "end of content"
                raise ValidationError(
                    f"content of <{event.tag}> ended prematurely (expected {expected})"
                )
            if not self._stack:
                self._done = True
            return None
        if isinstance(event, Characters):
            if not self._stack:
                return None
            parent_name = self._stack[-1][0]
            production = grammar.production(parent_name)
            assert isinstance(production, ElementProduction)
            own_text = grammar.text_child_of(parent_name)
            if own_text is not None:
                self._advance(own_text, "text content")
                return own_text
            if self._ignore_whitespace and not event.text.strip():
                return None
            raise ValidationError(f"text content not allowed in <{production.tag}>")
        return None

    def _validate_attributes(self, name: str, event: StartElement) -> None:
        declared = self._declared_attrs.get(name)
        if declared is None:
            production = self._grammar.production(name)
            assert isinstance(production, ElementProduction)
            declared = frozenset(attr.name for attr in production.attributes)
            self._declared_attrs[name] = declared
        for attribute in event.attributes:
            if attribute not in declared:
                raise ValidationError(
                    f"undeclared attribute {attribute!r} on <{event.tag}>"
                )

    def _advance(self, name: str, what: str) -> None:
        frame = self._stack[-1]
        new_state = frame[1].step(frame[2], name)
        if not new_state:
            expected = ", ".join(sorted(frame[1].allowed_names(frame[2]))) or "end of content"
            parent_tag = self._grammar.tag_of(frame[0])
            raise ValidationError(
                f"{what} not allowed here in <{parent_tag}> (expected {expected})"
            )
        frame[2] = new_state

    def finish(self) -> None:
        if self._stack:
            raise ValidationError("document ended with open elements")
        if not self._done:
            raise ValidationError("document has no root element")
