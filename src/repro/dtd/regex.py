"""Regular expressions over grammar names.

The right-hand side of every DTD production ``X -> a[r]`` is a regular
expression ``r`` over names (Section 2.2 of the paper).  This module
defines the expression AST, the usual derived queries (``names``,
``nullable``) and the Glushkov position sets (``first``, ``last``,
``follow``) that :mod:`repro.dtd.automaton` turns into a finite automaton
for validation.
"""

from __future__ import annotations

from typing import Iterator


class Regex:
    """Base class for regular expressions over names."""

    __slots__ = ()

    def names(self) -> frozenset[str]:
        """``Names(r)``: every name occurring in the expression."""
        raise NotImplementedError

    def nullable(self) -> bool:
        """Whether the expression matches the empty sequence."""
        raise NotImplementedError

    def atoms(self) -> Iterator["Atom"]:
        """All atom occurrences (Glushkov positions), left to right."""
        raise NotImplementedError

    # Structural equality/hashing lets tests compare parsed content models.

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        raise NotImplementedError


class Empty(Regex):
    """The empty language (matches nothing).  Not produced by the DTD
    parser but useful as an algebraic unit."""

    __slots__ = ()

    def names(self) -> frozenset[str]:
        return frozenset()

    def nullable(self) -> bool:
        return False

    def atoms(self) -> Iterator["Atom"]:
        return iter(())

    def _key(self):
        return ()

    def __str__(self) -> str:
        return "∅"


class Epsilon(Regex):
    """The empty sequence (the DTD content model ``EMPTY``)."""

    __slots__ = ()

    def names(self) -> frozenset[str]:
        return frozenset()

    def nullable(self) -> bool:
        return True

    def atoms(self) -> Iterator["Atom"]:
        return iter(())

    def _key(self):
        return ()

    def __str__(self) -> str:
        return "()"


class Atom(Regex):
    """A single name occurrence."""

    __slots__ = ("name", "position")

    def __init__(self, name: str) -> None:
        self.name = name
        # Glushkov position, assigned by automaton construction.
        self.position = -1

    def names(self) -> frozenset[str]:
        return frozenset((self.name,))

    def nullable(self) -> bool:
        return False

    def atoms(self) -> Iterator["Atom"]:
        yield self

    def _key(self):
        return (self.name,)

    def __str__(self) -> str:
        return self.name


class Seq(Regex):
    """Concatenation ``r1, r2, ..., rn``."""

    __slots__ = ("items",)

    def __init__(self, items: list[Regex]) -> None:
        self.items = list(items)

    def names(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for item in self.items:
            result |= item.names()
        return result

    def nullable(self) -> bool:
        return all(item.nullable() for item in self.items)

    def atoms(self) -> Iterator[Atom]:
        for item in self.items:
            yield from item.atoms()

    def _key(self):
        return tuple(self.items)

    def __str__(self) -> str:
        return "(" + ", ".join(str(item) for item in self.items) + ")"


class Alt(Regex):
    """Union ``r1 | r2 | ... | rn``."""

    __slots__ = ("items",)

    def __init__(self, items: list[Regex]) -> None:
        self.items = list(items)

    def names(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for item in self.items:
            result |= item.names()
        return result

    def nullable(self) -> bool:
        return any(item.nullable() for item in self.items)

    def atoms(self) -> Iterator[Atom]:
        for item in self.items:
            yield from item.atoms()

    def _key(self):
        return tuple(self.items)

    def __str__(self) -> str:
        return "(" + " | ".join(str(item) for item in self.items) + ")"


class Star(Regex):
    """Kleene star ``r*``."""

    __slots__ = ("inner",)

    def __init__(self, inner: Regex) -> None:
        self.inner = inner

    def names(self) -> frozenset[str]:
        return self.inner.names()

    def nullable(self) -> bool:
        return True

    def atoms(self) -> Iterator[Atom]:
        return self.inner.atoms()

    def _key(self):
        return (self.inner,)

    def __str__(self) -> str:
        return f"{self.inner}*"


class Plus(Regex):
    """``r+`` (one or more)."""

    __slots__ = ("inner",)

    def __init__(self, inner: Regex) -> None:
        self.inner = inner

    def names(self) -> frozenset[str]:
        return self.inner.names()

    def nullable(self) -> bool:
        return self.inner.nullable()

    def atoms(self) -> Iterator[Atom]:
        return self.inner.atoms()

    def _key(self):
        return (self.inner,)

    def __str__(self) -> str:
        return f"{self.inner}+"


class Opt(Regex):
    """``r?`` (zero or one)."""

    __slots__ = ("inner",)

    def __init__(self, inner: Regex) -> None:
        self.inner = inner

    def names(self) -> frozenset[str]:
        return self.inner.names()

    def nullable(self) -> bool:
        return True

    def atoms(self) -> Iterator[Atom]:
        return self.inner.atoms()

    def _key(self):
        return (self.inner,)

    def __str__(self) -> str:
        return f"{self.inner}?"


# -- Glushkov position sets ---------------------------------------------------
#
# Atoms compare *structurally* (two occurrences of the same name are
# equal), so the Glushkov machinery must never put Atom objects in
# sets/dicts — it works with the integer positions assigned by
# :func:`assign_positions` instead.


def assign_positions(regex: Regex) -> list[Atom]:
    """Number every atom occurrence 1..n (mutating ``position``) and
    return them in order."""
    atoms = list(regex.atoms())
    for position, atom in enumerate(atoms, start=1):
        atom.position = position
    return atoms


def first_set(regex: Regex) -> frozenset[int]:
    """Positions that can begin a match (positions must be assigned)."""
    if isinstance(regex, (Empty, Epsilon)):
        return frozenset()
    if isinstance(regex, Atom):
        return frozenset((regex.position,))
    if isinstance(regex, Seq):
        result: set[int] = set()
        for item in regex.items:
            result |= first_set(item)
            if not item.nullable():
                break
        return frozenset(result)
    if isinstance(regex, Alt):
        result = set()
        for item in regex.items:
            result |= first_set(item)
        return frozenset(result)
    if isinstance(regex, (Star, Plus, Opt)):
        return first_set(regex.inner)
    raise TypeError(f"unknown regex node {regex!r}")


def last_set(regex: Regex) -> frozenset[int]:
    """Positions that can end a match (positions must be assigned)."""
    if isinstance(regex, (Empty, Epsilon)):
        return frozenset()
    if isinstance(regex, Atom):
        return frozenset((regex.position,))
    if isinstance(regex, Seq):
        result: set[int] = set()
        for item in reversed(regex.items):
            result |= last_set(item)
            if not item.nullable():
                break
        return frozenset(result)
    if isinstance(regex, Alt):
        result = set()
        for item in regex.items:
            result |= last_set(item)
        return frozenset(result)
    if isinstance(regex, (Star, Plus, Opt)):
        return last_set(regex.inner)
    raise TypeError(f"unknown regex node {regex!r}")


def follow_map(regex: Regex) -> dict[int, set[int]]:
    """The Glushkov follow relation over positions (must be assigned)."""
    follow: dict[int, set[int]] = {atom.position: set() for atom in regex.atoms()}

    def visit(node: Regex) -> None:
        if isinstance(node, Seq):
            for item in node.items:
                visit(item)
            for index in range(len(node.items) - 1):
                lasts = last_set(node.items[index])
                # first() of the remainder, skipping nullable items.
                for nxt in range(index + 1, len(node.items)):
                    firsts = first_set(node.items[nxt])
                    for position in lasts:
                        follow[position] |= firsts
                    if not node.items[nxt].nullable():
                        break
        elif isinstance(node, Alt):
            for item in node.items:
                visit(item)
        elif isinstance(node, (Star, Plus)):
            visit(node.inner)
            firsts = first_set(node.inner)
            for position in last_set(node.inner):
                follow[position] |= firsts
        elif isinstance(node, Opt):
            visit(node.inner)

    visit(regex)
    return follow


def matches(regex: Regex, sequence: list[str]) -> bool:
    """Direct (uncached) membership test; the validator uses the compiled
    automaton from :mod:`repro.dtd.automaton` instead."""
    from repro.dtd.automaton import GlushkovAutomaton

    return GlushkovAutomaton(regex).matches(sequence)
