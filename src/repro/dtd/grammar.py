"""Local tree grammars — the paper's semantic view of a DTD (Section 2.2).

A grammar is a pair ``(X, E)``: a distinguished root *name* ``X`` and a set
of productions ``E`` mapping names to either ``a[r]`` (an element with tag
``a`` and content regex ``r`` over names) or ``String`` (a text leaf).
Because element tags determine their content in a DTD (condition 3 of the
definition), we use tags themselves as element names, derive one text name
``tag#text`` per element that may contain character data, and one attribute
name ``tag@att`` per declared attribute.

The per-element text names implement the paper's Section 6 heuristic
verbatim: "rewrite the DTD E so that every name Y defined as Y -> String
occurs exactly once in the right hand side of an edge of E; this enhances
the precision of pruning by reducing the number of conflicts on the leaves
of the tree."

This module also provides the graph machinery the static analysis is built
on: forward reachability ``⇒E`` (Def 2.5), chains, parent maps, and the
type-projector algebra (Def 2.6): the chain-closure test, closure
completion and union.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.dtd.ast import (
    AttributeDef,
    ContentKind,
    DTDDocument,
)
from repro.dtd.regex import Alt, Atom, Epsilon, Regex, Star
from repro.errors import GrammarError, ProjectorError

TEXT_SUFFIX = "#text"
ATTRIBUTE_SEPARATOR = "@"


def text_name(tag: str) -> str:
    """The text name associated with elements tagged ``tag``."""
    return tag + TEXT_SUFFIX


def attribute_name(tag: str, attribute: str) -> str:
    """The attribute name for ``attribute`` on elements tagged ``tag``."""
    return tag + ATTRIBUTE_SEPARATOR + attribute


def is_text_name(name: str) -> bool:
    return name.endswith(TEXT_SUFFIX)


def is_attribute_name(name: str) -> bool:
    return ATTRIBUTE_SEPARATOR in name


@dataclass(frozen=True, slots=True)
class ElementProduction:
    """``Y -> tag[regex]`` plus the attributes declared on ``tag``."""

    name: str
    tag: str
    regex: Regex
    attributes: tuple[AttributeDef, ...] = ()

    def attribute_names(self) -> tuple[str, ...]:
        # Keyed by production *name* (== tag for DTDs), so local elements
        # in single-type grammars keep distinct attribute names.
        return tuple(attribute_name(self.name, attr.name) for attr in self.attributes)


@dataclass(frozen=True, slots=True)
class TextProduction:
    """``Y -> String``."""

    name: str


@dataclass(frozen=True, slots=True)
class AttributeProduction:
    """``Y -> String`` for an attribute value (our extension of the paper's
    data model to attributes)."""

    name: str
    owner_tag: str
    attribute: str


Production = ElementProduction | TextProduction | AttributeProduction


class Grammar:
    """A local tree grammar ``(X, E)`` with precomputed graph structure."""

    def __init__(self, root: str, productions: Iterable[Production], require_local: bool = True) -> None:
        self.root = root
        self.productions: dict[str, Production] = {}
        for production in productions:
            if production.name in self.productions:
                raise GrammarError(f"duplicate production for name {production.name!r}")
            self.productions[production.name] = production
        if root not in self.productions:
            raise GrammarError(f"root name {root!r} has no production")

        self._tag_to_name: dict[str, str] = {}
        for production in self.productions.values():
            if isinstance(production, ElementProduction):
                if production.tag in self._tag_to_name:
                    if require_local:
                        raise GrammarError(
                            f"two names define element tag {production.tag!r}; "
                            "a DTD is a *local* tree grammar (one name per tag) — "
                            "use SingleTypeGrammar for XML Schema-style local elements"
                        )
                    continue  # single-type subclasses resolve by context
                self._tag_to_name[production.tag] = production.name

        # successors = the edge relation ⇒E of Def 2.5 (children ∪ attributes).
        self._children: dict[str, frozenset[str]] = {}
        self._attributes: dict[str, frozenset[str]] = {}
        self._successors: dict[str, frozenset[str]] = {}
        for name, production in self.productions.items():
            if isinstance(production, ElementProduction):
                children = production.regex.names()
                attrs = frozenset(production.attribute_names())
            else:
                children = frozenset()
                attrs = frozenset()
            self._children[name] = frozenset(children)
            self._attributes[name] = attrs
            self._successors[name] = frozenset(children) | attrs

        for name, successors in self._successors.items():
            for successor in successors:
                if successor not in self.productions:
                    raise GrammarError(f"production {name!r} references undefined name {successor!r}")

        # parents = the reverse edge relation.
        parents: dict[str, set[str]] = {name: set() for name in self.productions}
        for name, successors in self._successors.items():
            for successor in successors:
                parents[successor].add(name)
        self._parents: dict[str, frozenset[str]] = {
            name: frozenset(values) for name, values in parents.items()
        }

        self._descendant_cache: dict[str, frozenset[str]] = {}
        self._ancestor_cache: dict[str, frozenset[str]] = {}
        # name -> the text name usable for its text children (None if the
        # content model admits no text).  Supports both the per-element
        # text names of the Section 6 heuristic and a shared text name.
        self._text_child: dict[str, str | None] = {}
        for name in self.productions:
            text_children = sorted(
                child
                for child in self._children[name]
                if isinstance(self.productions[child], TextProduction)
            )
            self._text_child[name] = text_children[0] if text_children else None

    # -- basic accessors -------------------------------------------------

    def names(self) -> frozenset[str]:
        """``DN(E)``: the set of defined names."""
        return frozenset(self.productions)

    def production(self, name: str) -> Production:
        try:
            return self.productions[name]
        except KeyError:
            raise GrammarError(f"unknown name {name!r}") from None

    def name_of_tag(self, tag: str) -> str | None:
        """The unique name defining elements tagged ``tag`` (or None)."""
        return self._tag_to_name.get(tag)

    def element_names(self) -> frozenset[str]:
        return frozenset(
            name for name, production in self.productions.items()
            if isinstance(production, ElementProduction)
        )

    def tag_of(self, name: str) -> str | None:
        production = self.production(name)
        if isinstance(production, ElementProduction):
            return production.tag
        return None

    # -- the edge relation and its closures --------------------------------

    def children_of(self, name: str) -> frozenset[str]:
        """Element and text successor names (the child axis)."""
        return self._children.get(name, frozenset())

    def attributes_of(self, name: str) -> frozenset[str]:
        """Attribute successor names (the attribute axis)."""
        return self._attributes.get(name, frozenset())

    def successors_of(self, name: str) -> frozenset[str]:
        """``{Y | name ⇒E Y}`` — children plus attributes (Def 2.5)."""
        return self._successors.get(name, frozenset())

    def parents_of(self, name: str) -> frozenset[str]:
        """``{Y | Y ⇒E name}``."""
        return self._parents.get(name, frozenset())

    def text_child_of(self, name: str) -> str | None:
        """The text name generated for text children of ``name`` (None if
        its content model admits none)."""
        return self._text_child.get(name)

    def child_element_name(self, parent_name: str | None, tag: str) -> str | None:
        """Resolve the name of a ``tag`` element under ``parent_name``
        (None resolves the document root).  In a *local* grammar the tag
        alone decides; :class:`~repro.dtd.singletype.SingleTypeGrammar`
        overrides this with context-sensitive resolution."""
        return self._tag_to_name.get(tag)

    def descendants_of(self, name: str) -> frozenset[str]:
        """``{Y | name ⇒E+ Y}`` (transitive, not reflexive), cached."""
        cached = self._descendant_cache.get(name)
        if cached is not None:
            return cached
        seen: set[str] = set()
        frontier = list(self._successors.get(name, ()))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._successors.get(current, ()))
        result = frozenset(seen)
        self._descendant_cache[name] = result
        return result

    def ancestors_of(self, name: str) -> frozenset[str]:
        """``{Y | Y ⇒E+ name}`` (transitive, not reflexive), cached."""
        cached = self._ancestor_cache.get(name)
        if cached is not None:
            return cached
        seen: set[str] = set()
        frontier = list(self._parents.get(name, ()))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._parents.get(current, ()))
        result = frozenset(seen)
        self._ancestor_cache[name] = result
        return result

    def reachable_names(self) -> frozenset[str]:
        """Names reachable from the root (``⇒E*``)."""
        return self.descendants_of(self.root) | {self.root}

    # -- type-projector algebra (Def 2.6) ------------------------------------

    def is_projector(self, names: frozenset[str] | set[str]) -> bool:
        """Whether ``names`` is a type projector: every member must lie on
        a chain from the root whose names are all members too.

        Equivalently: every member is reachable from the root using only
        edges between members."""
        names = frozenset(names)
        if not names:
            return True
        if self.root not in names:
            return False
        unknown = names - self.names()
        if unknown:
            return False
        reachable_within: set[str] = set()
        frontier = [self.root]
        while frontier:
            current = frontier.pop()
            if current in reachable_within:
                continue
            reachable_within.add(current)
            for successor in self._successors.get(current, ()):
                if successor in names and successor not in reachable_within:
                    frontier.append(successor)
        return names <= reachable_within

    def check_projector(self, names: frozenset[str] | set[str]) -> frozenset[str]:
        """Validate and freeze a projector, raising :class:`ProjectorError`
        otherwise."""
        frozen = frozenset(names)
        if not self.is_projector(frozen):
            raise ProjectorError(
                f"{sorted(frozen)} is not chain-closed from root {self.root!r}"
            )
        return frozen

    def projector_closure(self, names: Iterable[str]) -> frozenset[str]:
        """The least projector containing ``names`` and obtained by adding
        ancestors: for each member we add every name on every root chain
        through it.  (Inference never needs this — its outputs are closed
        by construction — but user-assembled projectors do.)"""
        closed: set[str] = set()
        for name in names:
            if name not in self.productions:
                raise GrammarError(f"unknown name {name!r}")
            closed.add(name)
            closed.update(self.ancestors_of(name) & (self.reachable_names()))
        if closed:
            closed.add(self.root)
        return frozenset(closed)

    def union_projectors(self, projectors: Iterable[frozenset[str]]) -> frozenset[str]:
        """Projectors are closed under union (used for bunches of queries)."""
        result: set[str] = set()
        for projector in projectors:
            result |= projector
        return frozenset(result)

    def descendant_closure(self, names: Iterable[str]) -> frozenset[str]:
        """``names ∪ A_E(names, descendant)`` — used by the materialisation
        variant of projector inference (end of Section 4.2)."""
        result: set[str] = set(names)
        for name in list(result):
            result |= self.descendants_of(name)
        return frozenset(result)

    # -- misc -----------------------------------------------------------------

    def text_names(self) -> frozenset[str]:
        return frozenset(
            name for name, production in self.productions.items()
            if isinstance(production, TextProduction)
        )

    def attribute_productions(self) -> frozenset[str]:
        return frozenset(
            name for name, production in self.productions.items()
            if isinstance(production, AttributeProduction)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Grammar(root={self.root!r}, {len(self.productions)} names)"


SHARED_TEXT_NAME = "#text"


def grammar_from_dtd(
    document: DTDDocument,
    root_tag: str,
    per_element_text_names: bool = True,
) -> Grammar:
    """Lower parsed DTD declarations to a local tree grammar rooted at the
    name of ``root_tag``.

    * ``EMPTY``   becomes the regex ``()``;
    * ``(#PCDATA | t1 | ...)*`` becomes ``(tag#text | T1 | ...)*``;
    * ``(#PCDATA)`` becomes ``(tag#text)*``;
    * ``ANY``     becomes ``(tag#text | every element name)*``;
    * children models keep their structure with tags renamed to names.

    ``per_element_text_names`` is the Section 6 precision heuristic
    ("rewrite the DTD so that every name Y -> String occurs exactly once
    in the right hand side of an edge").  Setting it to False uses one
    shared ``#text`` name instead — the pre-heuristic behaviour, exposed
    so the ablation benchmark can measure what the heuristic buys.
    """
    attlists: dict[str, list[AttributeDef]] = {}
    for attlist in document.attlists:
        merged = attlists.setdefault(attlist.tag, [])
        seen = {attr.name for attr in merged}
        for attr in attlist.attributes:
            if attr.name not in seen:  # first declaration wins (XML 1.0)
                merged.append(attr)
                seen.add(attr.name)

    declared_tags = {declaration.tag for declaration in document.elements}
    productions: list[Production] = []
    shared_text_used = False

    for declaration in document.elements:
        tag = declaration.tag
        content = declaration.content
        needs_text = content.allows_text()
        own_text = text_name(tag) if per_element_text_names else SHARED_TEXT_NAME
        if content.kind is ContentKind.EMPTY:
            regex: Regex = Epsilon()
        elif content.kind is ContentKind.ANY:
            alternatives: list[Regex] = [Atom(own_text)]
            alternatives.extend(Atom(other) for other in sorted(declared_tags))
            regex = Star(Alt(alternatives))
        elif content.kind is ContentKind.MIXED:
            alternatives = [Atom(own_text)]
            alternatives.extend(Atom(child) for child in content.mixed_tags)
            regex = Star(Alt(alternatives)) if len(alternatives) > 1 else Star(alternatives[0])
        else:
            assert content.regex is not None
            regex = content.regex  # atoms are tags == names
            _check_referenced_tags(tag, regex, declared_tags)
        attributes = tuple(attlists.get(tag, ()))
        productions.append(ElementProduction(tag, tag, regex, attributes))
        if needs_text:
            if per_element_text_names:
                productions.append(TextProduction(own_text))
            else:
                shared_text_used = True
        for attr in attributes:
            productions.append(AttributeProduction(attribute_name(tag, attr.name), tag, attr.name))

    if shared_text_used:
        productions.append(TextProduction(SHARED_TEXT_NAME))
    if root_tag not in declared_tags:
        raise GrammarError(f"root tag {root_tag!r} is not declared in the DTD")
    return Grammar(root_tag, productions)


def _check_referenced_tags(tag: str, regex: Regex, declared: set[str]) -> None:
    undefined = regex.names() - declared
    if undefined:
        raise GrammarError(
            f"content model of {tag!r} references undeclared element(s) {sorted(undefined)}"
        )


def grammar_from_text(text: str, root_tag: str, per_element_text_names: bool = True) -> Grammar:
    """Convenience: parse DTD text and lower it in one step."""
    from repro.dtd.parser import parse_dtd

    return grammar_from_dtd(parse_dtd(text), root_tag, per_element_text_names)


def grammar_from_productions(root: str, edges: Mapping[str, tuple[str, Regex] | None]) -> Grammar:
    """Build a grammar directly in the paper's notation, for tests and
    examples.  ``edges[Y] = (tag, regex)`` defines ``Y -> tag[regex]``;
    ``edges[Y] = None`` defines ``Y -> String``."""
    productions: list[Production] = []
    for name, edge in edges.items():
        if edge is None:
            productions.append(TextProduction(name))
        else:
            tag, regex = edge
            productions.append(ElementProduction(name, tag, regex))
    return Grammar(root, productions)
