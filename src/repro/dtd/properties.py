"""The Definition 4.3 DTD properties.

Completeness of the static analysis (Theorems 4.4 and 4.7) requires the
DTD to be *\\*-guarded*, *non-recursive* and *parent-unambiguous*.  These
predicates let callers (and the benchmark harness) decide whether the
completeness guarantee applies to a given grammar; soundness never depends
on them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dtd.grammar import ElementProduction, Grammar
from repro.dtd.regex import Alt, Opt, Plus, Regex, Seq, Star


def _contains_union(regex: Regex) -> bool:
    if isinstance(regex, Alt):
        return True
    if isinstance(regex, Seq):
        return any(_contains_union(item) for item in regex.items)
    if isinstance(regex, (Star, Plus, Opt)):
        return _contains_union(regex.inner)
    return False


def _product_factors(regex: Regex) -> list[Regex]:
    """View a regex as a product ``r1, ..., rn`` (flattening nested
    sequences; a non-sequence is a one-factor product)."""
    if isinstance(regex, Seq):
        factors: list[Regex] = []
        for item in regex.items:
            factors.extend(_product_factors(item))
        return factors
    return [regex]


def is_star_guarded_regex(regex: Regex) -> bool:
    """Def 4.3(1) for one production: the regex is a product whose factors
    containing a union are guarded by ``*`` (or ``+``)."""
    for factor in _product_factors(regex):
        if _contains_union(factor) and not isinstance(factor, (Star, Plus)):
            return False
    return True


def is_star_guarded(grammar: Grammar) -> bool:
    """Def 4.3(1): every production's content model is *-guarded."""
    return all(
        is_star_guarded_regex(production.regex)
        for production in grammar.productions.values()
        if isinstance(production, ElementProduction)
    )


def is_recursive(grammar: Grammar) -> bool:
    """Def 4.3(2) negated: some name satisfies ``Y ⇒E+ Y``."""
    return any(name in grammar.descendants_of(name) for name in grammar.names())


def recursive_names(grammar: Grammar) -> frozenset[str]:
    """The names lying on a cycle of ``⇒E``."""
    return frozenset(name for name in grammar.names() if name in grammar.descendants_of(name))


def is_parent_unambiguous(grammar: Grammar) -> bool:
    """Def 4.3(3): for every chain ``c Y Z`` rooted at ``X``, if
    ``c Y c' Z`` is also a rooted chain then ``c'`` is empty.

    Operationally: for every reachable ``Y`` and every direct successor
    ``Z`` of ``Y``, there is no path of length >= 2 from ``Y`` to ``Z``
    (the rooted prefix ``c`` exists for both chains exactly when ``Y`` is
    reachable, so reachability of ``Y`` is the only premise)."""
    for name in grammar.reachable_names():
        successors = grammar.successors_of(name)
        if not successors:
            continue
        via_longer_path: set[str] = set()
        for successor in successors:
            via_longer_path |= grammar.descendants_of(successor)
        if successors & via_longer_path:
            return False
    return True


@dataclass(frozen=True, slots=True)
class GrammarProperties:
    """Bundle of the Def 4.3 predicates for one grammar."""

    star_guarded: bool
    recursive: bool
    parent_unambiguous: bool

    @property
    def completeness_class(self) -> bool:
        """Whether the grammar is in the class for which Theorems 4.4/4.7
        guarantee completeness (given a strongly-specified query)."""
        return self.star_guarded and not self.recursive and self.parent_unambiguous


def analyze_grammar(grammar: Grammar) -> GrammarProperties:
    """Evaluate all Definition 4.3 properties."""
    return GrammarProperties(
        star_guarded=is_star_guarded(grammar),
        recursive=is_recursive(grammar),
        parent_unambiguous=is_parent_unambiguous(grammar),
    )
