"""Benchmark workloads: XMark, XPathMark, the Use Cases DTD corpus, the
Shakespeare play corpus, and random generators for property tests."""

from repro.workloads.shakespeare import (
    SHAKESPEARE_QUERIES,
    generate_play,
    shakespeare_grammar,
)
from repro.workloads.usecases import USE_CASES, classify_corpus, use_case_grammar, xhtml_grammar
from repro.workloads.xpathmark import TABLE1_XPATHMARK, XPATHMARK_QUERIES, xpathmark_query

__all__ = [
    "SHAKESPEARE_QUERIES",
    "TABLE1_XPATHMARK",
    "USE_CASES",
    "XPATHMARK_QUERIES",
    "classify_corpus",
    "generate_play",
    "shakespeare_grammar",
    "use_case_grammar",
    "xhtml_grammar",
    "xpathmark_query",
]
