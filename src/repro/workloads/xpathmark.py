"""XPathMark-style query set (QP01–QP23) over XMark data.

XPathMark [Franceschet, XSym'05] exercises the *whole* axis repertoire
over XMark documents, which is why the paper uses it: its queries are
where backward axes, ``following``/``preceding`` and predicates earn their
keep.  The set below follows XPathMark's A (downward), B (all axes) and
filter sections, numbered QP01.. to match the paper's Table 1 labels.
"""

from __future__ import annotations

XPATHMARK_QUERIES: dict[str, str] = {
    # -- A: downward, increasingly selective paths --------------------------
    "QP01": "/site/closed_auctions/closed_auction/annotation/description/text/keyword",
    "QP02": "//closed_auction//keyword",
    "QP03": "/site/closed_auctions/closed_auction//keyword",
    "QP04": "/site/closed_auctions/closed_auction[annotation/description/text/keyword]/date",
    "QP05": "/site/closed_auctions/closed_auction[descendant::keyword]/date",
    "QP06": "/site/people/person[profile/gender and profile/age]/name",
    "QP07": "/site/people/person[phone or homepage]/name",
    "QP08": "/site/people/person[address and (phone or homepage) and (creditcard or profile)]/name",
    # -- B: the other axes ---------------------------------------------------
    "QP09": "//item[parent::namerica or parent::samerica]/name",
    "QP10": "//keyword/ancestor::listitem/text/keyword",
    "QP11": "/site/open_auctions/open_auction/bidder[following-sibling::bidder]",
    "QP12": "/site/open_auctions/open_auction/bidder[preceding-sibling::bidder]",
    "QP13": "/site/regions/*/item[following::item]/name",
    "QP14": "/site/regions/*/item[preceding::item]/name",
    "QP15": "//person[profile/@income]/name",
    "QP16": "/site/open_auctions/open_auction[bidder and not(bidder/preceding-sibling::bidder)]/interval",
    # -- predicates on values and positions ---------------------------------
    "QP17": "/site/people/person[@id='person0']/name",
    "QP18": "/site/open_auctions/open_auction[bidder[1]/increase = bidder[last()]/increase]/interval",
    "QP19": "/site/closed_auctions/closed_auction[price > 400]/price",
    "QP20": "/site/people/person[profile/age > 60]/name",
    # -- functions ------------------------------------------------------------
    "QP21": "/site/open_auctions/open_auction[count(bidder) > 3]/reserve",
    "QP22": "//person[contains(name, 'Ada')]/emailaddress",
    "QP23": "/site/regions/*/item[position() = 1]/name",
    # -- C/D/E families: comparisons, id() dereferencing, aggregates ---------
    "QP24": "/site/open_auctions/open_auction[initial >= 200]/interval/start",
    "QP25": "//closed_auction[price >= 40][quantity > 1]/date",
    "QP26": "id('person1')/name",
    "QP27": "id('item0')/description//keyword",
    "QP28": "//open_auction[id(seller/@person)/homepage]/initial",
    "QP29": "/site/people/person[not(homepage)][address/country = 'France']/name",
    "QP30": "//item[quantity * 2 >= 4]/name",
    "QP31": "/site/closed_auctions/closed_auction[annotation/happiness >= 9]/price",
    "QP32": "//person[starts-with(emailaddress, 'mailto:person1')]/name",
    "QP33": "/site/open_auctions/open_auction[sum(bidder/increase) > 50]/current",
}

#: The selection shown in the paper's Table 1 (QP columns).
TABLE1_XPATHMARK = tuple(sorted(XPATHMARK_QUERIES))


def xpathmark_query(name: str) -> str:
    return XPATHMARK_QUERIES[name]
