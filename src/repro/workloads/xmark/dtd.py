"""The XMark auction DTD [Schmidt et al., VLDB'02].

This is the schema both benchmarks in the paper's Section 6 run against
(XPathMark queries XMark-generated data too).  The text below follows the
standard ``auction.dtd`` distributed with the XMark generator; the only
liberty taken is dropping the unused NOTATION machinery.
"""

XMARK_DTD = """
<!ELEMENT site (regions, categories, catgraph, people, open_auctions, closed_auctions)>

<!ELEMENT categories (category+)>
<!ELEMENT category (name, description)>
<!ATTLIST category id ID #REQUIRED>
<!ELEMENT name (#PCDATA)>

<!ELEMENT description (text | parlist)>
<!ELEMENT text (#PCDATA | bold | keyword | emph)*>
<!ELEMENT bold (#PCDATA | bold | keyword | emph)*>
<!ELEMENT keyword (#PCDATA | bold | keyword | emph)*>
<!ELEMENT emph (#PCDATA | bold | keyword | emph)*>
<!ELEMENT parlist (listitem)*>
<!ELEMENT listitem (text | parlist)*>

<!ELEMENT catgraph (edge*)>
<!ELEMENT edge EMPTY>
<!ATTLIST edge from IDREF #REQUIRED to IDREF #REQUIRED>

<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT europe (item*)>
<!ELEMENT namerica (item*)>
<!ELEMENT samerica (item*)>

<!ELEMENT item (location, quantity, name, payment, description, shipping, incategory+, mailbox)>
<!ATTLIST item id ID #REQUIRED featured CDATA #IMPLIED>
<!ELEMENT location (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT reserve (#PCDATA)>
<!ELEMENT incategory EMPTY>
<!ATTLIST incategory category IDREF #REQUIRED>
<!ELEMENT mailbox (mail*)>
<!ELEMENT mail (from, to, date, text)>
<!ELEMENT from (#PCDATA)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT date (#PCDATA)>

<!ELEMENT itemref EMPTY>
<!ATTLIST itemref item IDREF #REQUIRED>
<!ELEMENT personref EMPTY>
<!ATTLIST personref person IDREF #REQUIRED>

<!ELEMENT people (person*)>
<!ELEMENT person (name, emailaddress, phone?, address?, homepage?, creditcard?, profile?, watches?)>
<!ATTLIST person id ID #REQUIRED>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT address (street, city, country, province?, zipcode)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT province (#PCDATA)>
<!ELEMENT zipcode (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT homepage (#PCDATA)>
<!ELEMENT creditcard (#PCDATA)>

<!ELEMENT profile (interest*, education?, gender?, business, age?)>
<!ATTLIST profile income CDATA #IMPLIED>
<!ELEMENT interest EMPTY>
<!ATTLIST interest category IDREF #REQUIRED>
<!ELEMENT education (#PCDATA)>
<!ELEMENT gender (#PCDATA)>
<!ELEMENT business (#PCDATA)>
<!ELEMENT age (#PCDATA)>

<!ELEMENT watches (watch*)>
<!ELEMENT watch EMPTY>
<!ATTLIST watch open_auction IDREF #REQUIRED>

<!ELEMENT open_auctions (open_auction*)>
<!ELEMENT open_auction (initial, reserve?, bidder*, current, privacy?, itemref, seller, annotation, quantity, type, interval)>
<!ATTLIST open_auction id ID #REQUIRED>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT current (#PCDATA)>
<!ELEMENT privacy (#PCDATA)>
<!ELEMENT seller EMPTY>
<!ATTLIST seller person IDREF #REQUIRED>
<!ELEMENT bidder (date, time, personref, increase)>
<!ELEMENT time (#PCDATA)>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT annotation (author, description?, happiness)>
<!ELEMENT author EMPTY>
<!ATTLIST author person IDREF #REQUIRED>
<!ELEMENT happiness (#PCDATA)>
<!ELEMENT interval (start, end)>
<!ELEMENT start (#PCDATA)>
<!ELEMENT end (#PCDATA)>
<!ELEMENT type (#PCDATA)>

<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction (seller, buyer, itemref, price, date, quantity, type, annotation)>
<!ELEMENT buyer EMPTY>
<!ATTLIST buyer person IDREF #REQUIRED>
<!ELEMENT price (#PCDATA)>
"""

ROOT_TAG = "site"


def xmark_grammar():
    """The XMark DTD lowered to a local tree grammar, cached per process."""
    global _GRAMMAR
    if _GRAMMAR is None:
        from repro.dtd.grammar import grammar_from_text

        _GRAMMAR = grammar_from_text(XMARK_DTD, ROOT_TAG)
    return _GRAMMAR


_GRAMMAR = None
