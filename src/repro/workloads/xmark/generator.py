"""Deterministic XMark-style document generator.

Produces documents valid with respect to :data:`~repro.workloads.xmark.dtd.XMARK_DTD`
with the statistical shape of real XMark data: the entity counts scale
linearly with the factor (XMark's own proportions: at factor 1.0 XMark
emits 21 750 items / 25 500 persons / 12 000 open and 9 750 closed
auctions for ~100 MB).  Our default factor 0.01 yields ~1 MB, which keeps
benchmarks laptop-scale; pruning ratios are scale-invariant because the
document is statistically self-similar across factors (see DESIGN.md,
"Substitutions").

The signature structural property the paper leans on is preserved:
mixed-content ``<description>`` subtrees (text with nested
bold/keyword/emph and parlists) dominate the byte count (~70% of the
document, Section 6: "XMark documents contain mixed-content <description>
elements which account for about 70% of the total size").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.xmltree.nodes import Document, Element, Text
from repro.xmltree.serializer import node_markup

_WORDS = (
    "gold silver sword honour duteous grave widow sorrow summer winter "
    "passion merchant vessel anchor harbour crown garden whisper shadow "
    "mirror copper marble velvet journey mountain river castle bridge "
    "letter promise stranger fortune destiny virtue courage wisdom folly "
    "serpent eagle falcon stallion banner trumpet feast famine plague "
    "remedy scholar soldier sailor tailor hunter shepherd monarch tyrant"
).split()

_CITIES = ("Paris", "Seoul", "Lisbon", "Bergen", "Quito", "Osaka", "Cairo", "Perth")
_COUNTRIES = ("France", "Korea", "Portugal", "Norway", "Ecuador", "Japan", "Egypt", "Australia")
_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")
# Real XMark skews items towards some continents; mirror that roughly.
_REGION_WEIGHTS = (0.10, 0.20, 0.05, 0.25, 0.30, 0.10)


@dataclass(frozen=True, slots=True)
class XMarkCounts:
    """Entity counts for one scale factor (XMark's factor-1 proportions)."""

    items: int
    persons: int
    open_auctions: int
    closed_auctions: int
    categories: int

    @staticmethod
    def for_factor(factor: float) -> "XMarkCounts":
        return XMarkCounts(
            items=max(6, round(21750 * factor)),
            persons=max(4, round(25500 * factor)),
            open_auctions=max(3, round(12000 * factor)),
            closed_auctions=max(3, round(9750 * factor)),
            categories=max(2, round(1000 * factor)),
        )


class XMarkGenerator:
    """Generator instance; deterministic for a given (factor, seed)."""

    def __init__(self, factor: float = 0.01, seed: int = 42) -> None:
        self.factor = factor
        self.counts = XMarkCounts.for_factor(factor)
        self._rng = random.Random(seed)

    # -- public ------------------------------------------------------------

    def document(self) -> Document:
        return Document(self.site())

    def site(self) -> Element:
        site = Element("site")
        site.append(self._regions())
        site.append(self._categories())
        site.append(self._catgraph())
        site.append(self._people())
        site.append(self._open_auctions())
        site.append(self._closed_auctions())
        return site

    def markup(self) -> Iterator[str]:
        """Stream the document as markup fragments, one entity subtree at
        a time.

        Byte-identical to ``serialize(self.document())``: both paths call
        the same per-entity builders in the same order, so the shared RNG
        is consumed identically, and section wrappers reproduce the
        serializer's empty-element collapse.  Peak memory is one entity
        subtree (an item/person/auction), not the whole document.
        """
        counts = self.counts
        yield "<site>"
        yield "<regions>"
        for region_name, item_ids in zip(_REGIONS, self._region_assignments()):
            yield from self._section(region_name, (self._item(i) for i in item_ids))
        yield "</regions>"
        yield from self._section("categories", (self._category(i) for i in range(counts.categories)))
        yield from self._section("catgraph", (self._edge() for _ in range(counts.categories)))
        yield from self._section("people", (self._person(i) for i in range(counts.persons)))
        yield from self._section(
            "open_auctions", (self._open_auction(i) for i in range(counts.open_auctions))
        )
        yield from self._section(
            "closed_auctions", (self._closed_auction() for _ in range(counts.closed_auctions))
        )
        yield "</site>"

    @staticmethod
    def _section(tag: str, children: Iterable[Element]) -> Iterator[str]:
        """Wrap streamed children in ``tag``, collapsing the empty case to
        ``<tag/>`` exactly like the tree serializer does."""
        opened = False
        for child in children:
            if not opened:
                yield f"<{tag}>"
                opened = True
            yield from node_markup(child)
        yield f"</{tag}>" if opened else f"<{tag}/>"

    # -- text fabric ----------------------------------------------------------

    def _sentence(self, low: int = 6, high: int = 18) -> str:
        rng = self._rng
        return " ".join(rng.choice(_WORDS) for _ in range(rng.randint(low, high)))

    def _rich_text(self, budget: int) -> Element:
        """A mixed-content <text> node with nested bold/keyword/emph."""
        rng = self._rng
        text = Element("text")
        text.append(Text(self._sentence()))
        for _ in range(budget):
            kind = rng.choice(("bold", "keyword", "emph"))
            inline = Element(kind)
            inline.append(Text(self._sentence(2, 6)))
            if rng.random() < 0.25:
                nested = Element(rng.choice(("bold", "keyword", "emph")))
                nested.append(Text(self._sentence(1, 4)))
                inline.append(nested)
            text.append(inline)
            text.append(Text(self._sentence(2, 8)))
        return text

    def _description(self) -> Element:
        """The paper's byte-dominant element: ~70% of document weight."""
        rng = self._rng
        description = Element("description")
        if rng.random() < 0.75:
            description.append(self._rich_text(rng.randint(6, 14)))
        else:
            parlist = Element("parlist")
            for _ in range(rng.randint(1, 3)):
                listitem = Element("listitem")
                if rng.random() < 0.3:
                    inner = Element("parlist")
                    item = Element("listitem")
                    item.append(self._rich_text(1))
                    inner.append(item)
                    listitem.append(inner)
                else:
                    listitem.append(self._rich_text(rng.randint(3, 8)))
                parlist.append(listitem)
            description.append(parlist)
        return description

    @staticmethod
    def _leaf(tag: str, value: str) -> Element:
        element = Element(tag)
        element.append(Text(value))
        return element

    # -- sections ---------------------------------------------------------------

    def _region_assignments(self) -> list[list[int]]:
        """Deterministic partition of item ids across continents."""
        rng = self._rng
        assignments: list[list[int]] = [[] for _ in _REGIONS]
        cumulative = []
        total = 0.0
        for weight in _REGION_WEIGHTS:
            total += weight
            cumulative.append(total)
        for item_id in range(self.counts.items):
            draw = rng.random()
            region_index = next(i for i, edge in enumerate(cumulative) if draw <= edge)
            assignments[region_index].append(item_id)
        return assignments

    def _regions(self) -> Element:
        regions = Element("regions")
        for region_name, item_ids in zip(_REGIONS, self._region_assignments()):
            region = Element(region_name)
            for item_id in item_ids:
                region.append(self._item(item_id))
            regions.append(region)
        return regions

    def _item(self, item_id: int) -> Element:
        rng = self._rng
        item = Element("item", {"id": f"item{item_id}"})
        if rng.random() < 0.1:
            item.attributes["featured"] = "yes"
        item.append(self._leaf("location", rng.choice(_COUNTRIES)))
        item.append(self._leaf("quantity", str(rng.randint(1, 5))))
        item.append(self._leaf("name", self._sentence(2, 4)))
        item.append(self._leaf("payment", rng.choice(("Cash", "Creditcard", "Money order"))))
        item.append(self._description())
        item.append(self._leaf("shipping", rng.choice(("Will ship internationally", "Buyer pays shipping"))))
        for _ in range(rng.randint(1, 3)):
            item.append(Element("incategory", {"category": f"category{rng.randrange(self.counts.categories)}"}))
        mailbox = Element("mailbox")
        for _ in range(rng.randint(0, 2)):
            mail = Element("mail")
            mail.append(self._leaf("from", self._person_name(rng.randrange(self.counts.persons))))
            mail.append(self._leaf("to", self._person_name(rng.randrange(self.counts.persons))))
            mail.append(self._leaf("date", self._date()))
            mail.append(self._rich_text(rng.randint(1, 3)))
            mailbox.append(mail)
        item.append(mailbox)
        return item

    def _category(self, category_id: int) -> Element:
        category = Element("category", {"id": f"category{category_id}"})
        category.append(self._leaf("name", self._sentence(1, 3)))
        category.append(self._description())
        return category

    def _categories(self) -> Element:
        categories = Element("categories")
        for category_id in range(self.counts.categories):
            categories.append(self._category(category_id))
        return categories

    def _edge(self) -> Element:
        rng = self._rng
        return Element(
            "edge",
            {
                "from": f"category{rng.randrange(self.counts.categories)}",
                "to": f"category{rng.randrange(self.counts.categories)}",
            },
        )

    def _catgraph(self) -> Element:
        catgraph = Element("catgraph")
        for _ in range(self.counts.categories):
            catgraph.append(self._edge())
        return catgraph

    @staticmethod
    def _person_name(person_id: int) -> str:
        first = ("Ada", "Brad", "Chen", "Dina", "Egon", "Fatima", "Goran", "Hana")
        last = ("Okafor", "Svensson", "Murakami", "Costa", "Novak", "Achebe", "Laurent", "Kim")
        return f"{first[person_id % len(first)]} {last[(person_id // 8) % len(last)]}"

    def _date(self) -> str:
        rng = self._rng
        return f"{rng.randint(1, 28):02d}/{rng.randint(1, 12):02d}/{rng.randint(1998, 2001)}"

    def _people(self) -> Element:
        people = Element("people")
        for person_id in range(self.counts.persons):
            people.append(self._person(person_id))
        return people

    def _person(self, person_id: int) -> Element:
        rng = self._rng
        person = Element("person", {"id": f"person{person_id}"})
        person.append(self._leaf("name", self._person_name(person_id)))
        person.append(self._leaf("emailaddress", f"mailto:person{person_id}@example.net"))
        if rng.random() < 0.5:
            person.append(self._leaf("phone", f"+{rng.randint(1, 99)} ({rng.randint(10, 999)}) {rng.randint(1000000, 9999999)}"))
        if rng.random() < 0.6:
            address = Element("address")
            address.append(self._leaf("street", f"{rng.randint(1, 99)} {rng.choice(_WORDS).title()} St"))
            address.append(self._leaf("city", rng.choice(_CITIES)))
            address.append(self._leaf("country", rng.choice(_COUNTRIES)))
            if rng.random() < 0.3:
                address.append(self._leaf("province", rng.choice(_WORDS).title()))
            address.append(self._leaf("zipcode", str(rng.randint(10000, 99999))))
            person.append(address)
        if rng.random() < 0.3:
            person.append(self._leaf("homepage", f"http://example.net/~person{person_id}"))
        if rng.random() < 0.4:
            person.append(self._leaf("creditcard", " ".join(str(rng.randint(1000, 9999)) for _ in range(4))))
        if rng.random() < 0.7:
            profile = Element("profile")
            if rng.random() < 0.5:
                profile.attributes["income"] = f"{rng.uniform(9000, 100000):.2f}"
            for _ in range(rng.randint(0, 3)):
                profile.append(Element("interest", {"category": f"category{rng.randrange(self.counts.categories)}"}))
            if rng.random() < 0.5:
                profile.append(self._leaf("education", rng.choice(("High School", "College", "Graduate School", "Other"))))
            if rng.random() < 0.8:
                profile.append(self._leaf("gender", rng.choice(("male", "female"))))
            profile.append(self._leaf("business", rng.choice(("Yes", "No"))))
            if rng.random() < 0.6:
                profile.append(self._leaf("age", str(rng.randint(18, 80))))
            person.append(profile)
        if rng.random() < 0.5:
            watches = Element("watches")
            for _ in range(rng.randint(0, 4)):
                watches.append(Element("watch", {"open_auction": f"open_auction{rng.randrange(self.counts.open_auctions)}"}))
            person.append(watches)
        return person

    def _annotation(self) -> Element:
        rng = self._rng
        annotation = Element("annotation")
        annotation.append(Element("author", {"person": f"person{rng.randrange(self.counts.persons)}"}))
        if rng.random() < 0.7:
            annotation.append(self._description())
        annotation.append(self._leaf("happiness", str(rng.randint(1, 10))))
        return annotation

    def _open_auction(self, auction_id: int) -> Element:
        rng = self._rng
        auction = Element("open_auction", {"id": f"open_auction{auction_id}"})
        initial = rng.uniform(1, 300)
        auction.append(self._leaf("initial", f"{initial:.2f}"))
        if rng.random() < 0.4:
            auction.append(self._leaf("reserve", f"{initial * rng.uniform(1.2, 2.5):.2f}"))
        current = initial
        for _ in range(rng.randint(0, 5)):
            bidder = Element("bidder")
            bidder.append(self._leaf("date", self._date()))
            bidder.append(self._leaf("time", f"{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}:{rng.randint(0, 59):02d}"))
            bidder.append(Element("personref", {"person": f"person{rng.randrange(self.counts.persons)}"}))
            increase = rng.choice((1.5, 3.0, 4.5, 6.0, 12.0, 24.0))
            current += increase
            bidder.append(self._leaf("increase", f"{increase:.2f}"))
            auction.append(bidder)
        auction.append(self._leaf("current", f"{current:.2f}"))
        if rng.random() < 0.3:
            auction.append(self._leaf("privacy", "Yes"))
        auction.append(Element("itemref", {"item": f"item{rng.randrange(self.counts.items)}"}))
        auction.append(Element("seller", {"person": f"person{rng.randrange(self.counts.persons)}"}))
        auction.append(self._annotation())
        auction.append(self._leaf("quantity", str(rng.randint(1, 5))))
        auction.append(self._leaf("type", rng.choice(("Regular", "Featured"))))
        interval = Element("interval")
        interval.append(self._leaf("start", self._date()))
        interval.append(self._leaf("end", self._date()))
        auction.append(interval)
        return auction

    def _open_auctions(self) -> Element:
        auctions = Element("open_auctions")
        for auction_id in range(self.counts.open_auctions):
            auctions.append(self._open_auction(auction_id))
        return auctions

    def _closed_auction(self) -> Element:
        rng = self._rng
        auction = Element("closed_auction")
        auction.append(Element("seller", {"person": f"person{rng.randrange(self.counts.persons)}"}))
        auction.append(Element("buyer", {"person": f"person{rng.randrange(self.counts.persons)}"}))
        auction.append(Element("itemref", {"item": f"item{rng.randrange(self.counts.items)}"}))
        auction.append(self._leaf("price", f"{rng.uniform(5, 500):.2f}"))
        auction.append(self._leaf("date", self._date()))
        auction.append(self._leaf("quantity", str(rng.randint(1, 5))))
        auction.append(self._leaf("type", rng.choice(("Regular", "Featured"))))
        auction.append(self._annotation())
        return auction

    def _closed_auctions(self) -> Element:
        auctions = Element("closed_auctions")
        for _ in range(self.counts.closed_auctions):
            auctions.append(self._closed_auction())
        return auctions


def generate_document(factor: float = 0.01, seed: int = 42) -> Document:
    """Generate an XMark document (factor 0.01 ≈ 0.8 MB serialised)."""
    return XMarkGenerator(factor, seed).document()


#: Flush threshold for streamed generation, matching the serializer's
#: buffered event writer.
_GENERATE_BUFFER_SIZE = 1 << 16


def generate_file(
    path: str, factor: float = 0.01, seed: int = 42, buffer_size: int = _GENERATE_BUFFER_SIZE
) -> int:
    """Generate straight to a file, streaming one entity subtree at a
    time; returns characters written.

    Byte-identical to writing :func:`generate_document` with a
    declaration, but peak memory stays bounded by a single entity plus
    the write buffer, which is what makes factor ≥ 1 (~100 MB documents)
    feasible.
    """
    generator = XMarkGenerator(factor, seed)
    written = 0
    with open(path, "w", encoding="utf-8") as sink:
        written += sink.write('<?xml version="1.0" encoding="UTF-8"?>\n')
        buffered: list[str] = []
        buffered_length = 0
        for piece in generator.markup():
            buffered.append(piece)
            buffered_length += len(piece)
            if buffered_length >= buffer_size:
                written += sink.write("".join(buffered))
                buffered.clear()
                buffered_length = 0
        if buffered:
            written += sink.write("".join(buffered))
    return written


def factor_for_megabytes(megabytes: float) -> float:
    """Rough inverse of document size: factor 1.0 ≈ 80 MB."""
    return megabytes / 80.0
