"""The XMark query set (QM01–QM20), adapted to the FLWR core of Section 5.

Adaptations from the published XMark queries, all noted per query:

* ``document("auction.xml")`` becomes the absolute path root ``/site``
  (the paper evaluates single-document workloads);
* ``order by`` and single-variable ``some/every`` quantifiers are
  supported natively (beyond the paper's formal core); user-defined
  functions and multi-variable quantifiers are expressed with the core
  (the paper makes the same restriction in Section 5);
* results keep the published queries' data needs, which is what drives
  projector shape.

``TABLE1_XMARK`` lists the queries the paper's Table 1 reports.
"""

from __future__ import annotations

XMARK_QUERIES: dict[str, str] = {
    # Q1: return the name of the person with ID person0.
    "QM01": (
        'for $b in /site/people/person '
        'where $b/@id = "person0" '
        'return $b/name/text()'
    ),
    # Q2: initial increases of all open auctions.
    "QM02": (
        "for $b in /site/open_auctions/open_auction "
        "return <increase>{$b/bidder[1]/increase/text()}</increase>"
    ),
    # Q3: auctions whose first bid doubled within the auction.
    "QM03": (
        "for $b in /site/open_auctions/open_auction "
        "where $b/bidder[1]/increase/text() * 2 <= $b/bidder[last()]/increase/text() "
        "return <increase first=\"{$b/bidder[1]/increase/text()}\" "
        "last=\"{$b/bidder[last()]/increase/text()}\"/>"
    ),
    # Q4: quantified condition over bidders (the published query uses a
    # two-variable quantifier with <<; we keep the single-variable core).
    "QM04": (
        'for $b in /site/open_auctions/open_auction '
        'where some $pr in $b/bidder/personref satisfies $pr/@person = "person18" '
        'return <history>{$b/reserve/text()}</history>'
    ),
    # Q5: number of sold items above 40.
    "QM05": (
        "let $k := /site/closed_auctions/closed_auction[price/text() >= 40]/price "
        "return <count>{count($k)}</count>"
    ),
    # Q6: items per region (very selective — the paper's 99.7% pruning).
    "QM06": ("for $b in /site/regions return <n>{count($b//item)}</n>"),
    # Q7: the three-// query the paper discusses for [14]'s pruning cost.
    "QM07": (
        "for $p in /site "
        "return <pieces>{count($p//description) + count($p//annotation) + count($p//emailaddress)}</pieces>"
    ),
    # Q8: id-join — purchases per person.
    "QM08": (
        "for $p in /site/people/person "
        "let $a := for $t in /site/closed_auctions/closed_auction "
        "where $t/buyer/@person = $p/@id return $t "
        'return <item person="{$p/name/text()}">{count($a)}</item>'
    ),
    # Q9: double join persons / auctions / items.
    "QM09": (
        "for $p in /site/people/person "
        "let $a := for $t in /site/closed_auctions/closed_auction "
        "where $p/@id = $t/buyer/@person "
        "return let $n := for $t2 in /site/regions/europe/item "
        "where $t/itemref/@item = $t2/@id return $t2 "
        "return <item>{$n/name/text()}</item> "
        'return <person name="{$p/name/text()}">{$a}</person>'
    ),
    # Q10: grouped materialisation of person profiles (heavy output).
    "QM10": (
        "for $i in /site/people/person/profile/interest/@category "
        "let $p := for $t in /site/people/person "
        "where $t/profile/interest/@category = $i "
        "return <personne>"
        "<statistiques><sexe>{$t/profile/gender/text()}</sexe>"
        "<age>{$t/profile/age/text()}</age>"
        "<education>{$t/profile/education/text()}</education>"
        "<revenu>{$t/profile/@income}</revenu></statistiques>"
        "<coordonnees><nom>{$t/name/text()}</nom>"
        "<rue>{$t/address/street/text()}</rue>"
        "<ville>{$t/address/city/text()}</ville>"
        "<pays>{$t/address/country/text()}</pays>"
        "<email>{$t/emailaddress/text()}</email></coordonnees>"
        "<cartePaiement>{$t/creditcard/text()}</cartePaiement>"
        "</personne> "
        "return <categorie>{<id>{$i}</id>, $p}</categorie>"
    ),
    # Q11: value join initial × income.
    "QM11": (
        "for $p in /site/people/person "
        "let $l := for $i in /site/open_auctions/open_auction/initial "
        "where $p/profile/@income > 5000 * $i/text() return $i "
        'return <items name="{$p/name/text()}">{count($l)}</items>'
    ),
    # Q12: as Q11, restricted to the rich.
    "QM12": (
        "for $p in /site/people/person "
        "let $l := for $i in /site/open_auctions/open_auction/initial "
        "where $p/profile/@income > 5000 * $i/text() return $i "
        "where $p/profile/@income > 50000 "
        'return <items person="{$p/profile/@income}">{count($l)}</items>'
    ),
    # Q13: materialise australian items (name + full description).
    "QM13": (
        "for $i in /site/regions/australia/item "
        'return <item name="{$i/name/text()}">{$i/description}</item>'
    ),
    # Q14: content search over descriptions — the paper's low-pruning case
    # (the query needs the mixed-content bulk of the document).
    "QM14": (
        "for $i in /site//item "
        'where contains(string($i/description), "gold") '
        "return $i/name/text()"
    ),
    # Q15: a long path chain.
    "QM15": (
        "for $a in /site/closed_auctions/closed_auction/annotation/description/parlist/"
        "listitem/parlist/listitem/text/emph/keyword/text() "
        "return <text>{$a}</text>"
    ),
    # Q16: as Q15, returning the auction seller (long path in predicate).
    "QM16": (
        "for $a in /site/closed_auctions/closed_auction "
        "where $a/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword "
        'return <person id="{$a/seller/@person}"/>'
    ),
    # Q17: people without a homepage.
    "QM17": (
        "for $p in /site/people/person "
        "where empty($p/homepage/text()) "
        'return <person name="{$p/name/text()}"/>'
    ),
    # Q18: arithmetic over reserves (the published query maps a local
    # function over them; the data needs are identical).
    "QM18": (
        "for $i in /site/open_auctions/open_auction "
        "return $i/reserve/text() * 2.20371"
    ),
    # Q19: item listing with location, ordered by name.
    "QM19": (
        "for $b in /site/regions//item "
        "let $k := $b/name/text() "
        "order by $k "
        'return <item name="{$k}">{$b/location/text()}</item>'
    ),
    # Q20: income histogram.
    "QM20": (
        "<result>"
        "<preferred>{count(/site/people/person/profile[@income >= 100000])}</preferred>"
        "<standard>{count(/site/people/person/profile[@income < 100000][@income >= 30000])}</standard>"
        "<challenge>{count(/site/people/person/profile[@income < 30000])}</challenge>"
        "<na>{count(/site/people/person[not(profile/@income)])}</na>"
        "</result>"
    ),
}

#: The XMark queries selected in the paper's Table 1.
TABLE1_XMARK = ("QM01", "QM02", "QM03", "QM06", "QM07", "QM08", "QM13", "QM14", "QM18", "QM20")


def xmark_query(name: str) -> str:
    return XMARK_QUERIES[name]
