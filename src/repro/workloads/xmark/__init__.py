"""The XMark benchmark substrate: DTD, generator, queries."""

from repro.workloads.xmark.dtd import ROOT_TAG, XMARK_DTD, xmark_grammar
from repro.workloads.xmark.generator import (
    XMarkCounts,
    XMarkGenerator,
    factor_for_megabytes,
    generate_document,
    generate_file,
)
from repro.workloads.xmark.queries import TABLE1_XMARK, XMARK_QUERIES, xmark_query

__all__ = [
    "ROOT_TAG",
    "TABLE1_XMARK",
    "XMARK_DTD",
    "XMARK_QUERIES",
    "XMarkCounts",
    "XMarkGenerator",
    "factor_for_megabytes",
    "generate_document",
    "generate_file",
    "xmark_grammar",
    "xmark_query",
]
