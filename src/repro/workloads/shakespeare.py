"""A Shakespeare-plays workload (Bosak's classic ``play.dtd``).

A second document corpus beside XMark, with a very different shape: deep
act/scene/speech nesting, no attributes, text-dominant.  Used by tests and
benchmarks to show the pipeline generalises beyond the auction schema.

The DTD follows Jon Bosak's play markup (the fixture every 1990s XML tool
shipped with); the generator emits deterministic pseudo-plays with the
same structural statistics (5 acts, a handful of scenes, alternating
speeches and stage directions).
"""

from __future__ import annotations

import random

from repro.dtd.grammar import Grammar, grammar_from_text
from repro.xmltree.nodes import Document, Element, Text

PLAY_DTD = """
<!ELEMENT PLAY (TITLE, FM?, PERSONAE, SCNDESCR, PLAYSUBT, PROLOGUE?, ACT+, EPILOGUE?)>
<!ELEMENT FM (P+)>
<!ELEMENT P (#PCDATA)>
<!ELEMENT TITLE (#PCDATA)>
<!ELEMENT PERSONAE (TITLE, (PERSONA | PGROUP)+)>
<!ELEMENT PGROUP (PERSONA+, GRPDESCR)>
<!ELEMENT PERSONA (#PCDATA)>
<!ELEMENT GRPDESCR (#PCDATA)>
<!ELEMENT SCNDESCR (#PCDATA)>
<!ELEMENT PLAYSUBT (#PCDATA)>
<!ELEMENT PROLOGUE (TITLE, (STAGEDIR | SPEECH)+)>
<!ELEMENT EPILOGUE (TITLE, (STAGEDIR | SPEECH)+)>
<!ELEMENT ACT (TITLE, PROLOGUE?, SCENE+, EPILOGUE?)>
<!ELEMENT SCENE (TITLE, (SPEECH | STAGEDIR | SUBHEAD)+)>
<!ELEMENT SUBHEAD (#PCDATA)>
<!ELEMENT SPEECH (SPEAKER+, (LINE | STAGEDIR | SUBHEAD)+)>
<!ELEMENT SPEAKER (#PCDATA)>
<!ELEMENT LINE (#PCDATA | STAGEDIR)*>
<!ELEMENT STAGEDIR (#PCDATA)>
"""

ROOT_TAG = "PLAY"

_WORDS = (
    "love night crown grave sword storm ghost blood throne mercy "
    "honour exile folly jest vow quarrel sleep dream oath realm"
).split()

_SPEAKERS = ("HAMLET", "OPHELIA", "DUKE", "FOOL", "MESSENGER", "FIRST WITCH", "CHORUS")


class ShakespeareGenerator:
    """Deterministic pseudo-play generator."""

    def __init__(self, acts: int = 5, scenes_per_act: int = 3, speeches_per_scene: int = 12, seed: int = 1600) -> None:
        self.acts = acts
        self.scenes_per_act = scenes_per_act
        self.speeches_per_scene = speeches_per_scene
        self._rng = random.Random(seed)

    def _line_text(self, low: int = 5, high: int = 9) -> str:
        rng = self._rng
        return " ".join(rng.choice(_WORDS) for _ in range(rng.randint(low, high)))

    @staticmethod
    def _leaf(tag: str, text: str) -> Element:
        element = Element(tag)
        element.append(Text(text))
        return element

    def document(self) -> Document:
        rng = self._rng
        play = Element("PLAY")
        play.append(self._leaf("TITLE", f"The Tragedie of {self._line_text(1, 2).title()}"))
        personae = Element("PERSONAE")
        personae.append(self._leaf("TITLE", "Dramatis Personae"))
        for speaker in _SPEAKERS[:4]:
            personae.append(self._leaf("PERSONA", speaker.title()))
        group = Element("PGROUP")
        for speaker in _SPEAKERS[4:6]:
            group.append(self._leaf("PERSONA", speaker.title()))
        group.append(self._leaf("GRPDESCR", "attendants and spirits"))
        personae.append(group)
        play.append(personae)
        play.append(self._leaf("SCNDESCR", f"SCENE {self._line_text(2, 4)}"))
        play.append(self._leaf("PLAYSUBT", "A PSEUDO-TRAGEDY"))
        for act_number in range(1, self.acts + 1):
            act = Element("ACT")
            act.append(self._leaf("TITLE", f"ACT {act_number}"))
            for scene_number in range(1, self.scenes_per_act + 1):
                scene = Element("SCENE")
                scene.append(self._leaf("TITLE", f"SCENE {scene_number}. {self._line_text(3, 5)}."))
                scene.append(self._leaf("STAGEDIR", f"Enter {rng.choice(_SPEAKERS).title()}"))
                for _ in range(self.speeches_per_scene):
                    if rng.random() < 0.12:
                        scene.append(self._leaf("STAGEDIR", f"Exit {rng.choice(_SPEAKERS).title()}"))
                        continue
                    speech = Element("SPEECH")
                    speech.append(self._leaf("SPEAKER", rng.choice(_SPEAKERS)))
                    if rng.random() < 0.1:
                        speech.append(self._leaf("SPEAKER", rng.choice(_SPEAKERS)))
                    for _ in range(rng.randint(1, 6)):
                        line = Element("LINE")
                        line.append(Text(self._line_text()))
                        if rng.random() < 0.08:
                            line.append(self._leaf("STAGEDIR", "Aside"))
                            line.append(Text(self._line_text(2, 4)))
                        speech.append(line)
                    scene.append(speech)
                act.append(scene)
            play.append(act)
        return Document(play)


_GRAMMAR: Grammar | None = None


def shakespeare_grammar() -> Grammar:
    global _GRAMMAR
    if _GRAMMAR is None:
        _GRAMMAR = grammar_from_text(PLAY_DTD, ROOT_TAG)
    return _GRAMMAR


def generate_play(acts: int = 5, seed: int = 1600) -> Document:
    return ShakespeareGenerator(acts=acts, seed=seed).document()


#: A query set over plays (XPath), exercising value predicates and
#: backward axes on a text-heavy corpus.
SHAKESPEARE_QUERIES: dict[str, str] = {
    "speakers": "//SPEAKER",
    "hamlet-lines": "//SPEECH[SPEAKER = 'HAMLET']/LINE",
    "act-titles": "/PLAY/ACT/TITLE",
    "stagedirs-in-lines": "//LINE/STAGEDIR",
    "scenes-with-witches": "//SCENE[SPEECH/SPEAKER = 'FIRST WITCH']/TITLE",
    "speech-of-stagedir": "//STAGEDIR/ancestor::SPEECH/SPEAKER",
    "multi-speaker": "//SPEECH[count(SPEAKER) > 1]",
    "personae": "/PLAY/PERSONAE//PERSONA",
}
