"""The XML Query Use Cases DTD corpus (Section 4.1's survey).

The paper motivates the Definition 4.3 restrictions with a survey of the
ten DTDs in the W3C XML Query Use Cases [3]: "seven are both non-recursive
and \\*-guarded, one is only \\*-guarded, one is only non-recursive, and
just one does not satisfy either property"; five of the ten are
parent-unambiguous.  This module reconstructs the corpus following the Use
Cases' documented schemas (W3C, "XML Query Use Cases", 1.9.4 etc.), so the
classification experiment (``benchmarks/bench_usecases.py``) can reproduce
those counts.

It also ships an XHTML-flavoured DTD (~45 elements, heavily recursive)
for the paper's "large DTDs (e.g. XHTML)" analysis-overhead experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dtd.grammar import Grammar, grammar_from_text
from repro.dtd.properties import GrammarProperties, analyze_grammar


@dataclass(frozen=True, slots=True)
class UseCaseDTD:
    name: str
    root: str
    dtd: str
    description: str


USE_CASES: tuple[UseCaseDTD, ...] = (
    UseCaseDTD(
        "XMP",
        "bib",
        """
        <!ELEMENT bib (book*)>
        <!ELEMENT book (title, (author+ | editor+), publisher, price)>
        <!ATTLIST book year CDATA #REQUIRED>
        <!ELEMENT author (last, first)>
        <!ELEMENT editor (last, first, affiliation)>
        <!ELEMENT title (#PCDATA)>
        <!ELEMENT last (#PCDATA)>
        <!ELEMENT first (#PCDATA)>
        <!ELEMENT affiliation (#PCDATA)>
        <!ELEMENT publisher (#PCDATA)>
        <!ELEMENT price (#PCDATA)>
        """,
        "bibliography: the unstarred union (author+ | editor+) breaks *-guardedness",
    ),
    UseCaseDTD(
        "TREE",
        "book",
        """
        <!ELEMENT book (title, (p | section)*)>
        <!ELEMENT section (title, (p | section)*)>
        <!ELEMENT title (#PCDATA)>
        <!ELEMENT p (#PCDATA)>
        """,
        "recursive sections; every union is starred",
    ),
    UseCaseDTD(
        "SEQ",
        "report",
        """
        <!ELEMENT report (section*)>
        <!ELEMENT section (section.title, section.content)>
        <!ELEMENT section.title (#PCDATA)>
        <!ELEMENT section.content (#PCDATA | anesthesia | prep | incision | observation | action)*>
        <!ELEMENT anesthesia (#PCDATA)>
        <!ELEMENT prep (#PCDATA | action)*>
        <!ELEMENT incision (#PCDATA | geography | instrument)*>
        <!ELEMENT observation (#PCDATA)>
        <!ELEMENT action (#PCDATA | instrument)*>
        <!ELEMENT geography (#PCDATA)>
        <!ELEMENT instrument (#PCDATA)>
        """,
        "surgical report; mixed content everywhere (starred), non-recursive",
    ),
    UseCaseDTD(
        "R",
        "auction-site",
        """
        <!ELEMENT auction-site (users, items, bids)>
        <!ELEMENT users (user_tuple*)>
        <!ELEMENT user_tuple (userid, name, rating?)>
        <!ELEMENT items (item_tuple*)>
        <!ELEMENT item_tuple (itemno, description, offered_by, start_date?, end_date?, reserve_price?)>
        <!ELEMENT bids (bid_tuple*)>
        <!ELEMENT bid_tuple (userid, itemno, bid, bid_date)>
        <!ELEMENT userid (#PCDATA)>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT rating (#PCDATA)>
        <!ELEMENT itemno (#PCDATA)>
        <!ELEMENT description (#PCDATA)>
        <!ELEMENT offered_by (#PCDATA)>
        <!ELEMENT start_date (#PCDATA)>
        <!ELEMENT end_date (#PCDATA)>
        <!ELEMENT reserve_price (#PCDATA)>
        <!ELEMENT bid (#PCDATA)>
        <!ELEMENT bid_date (#PCDATA)>
        """,
        "relational projection of an auction database; flat, unambiguous",
    ),
    UseCaseDTD(
        "SGML",
        "sgmldoc",
        """
        <!ELEMENT sgmldoc (title, chapter+)>
        <!ELEMENT chapter (chapter.title, intro?, topic*)>
        <!ELEMENT topic (topic.title, intro?)>
        <!ELEMENT intro (para+)>
        <!ELEMENT para (#PCDATA)>
        <!ELEMENT title (#PCDATA)>
        <!ELEMENT chapter.title (#PCDATA)>
        <!ELEMENT topic.title (#PCDATA)>
        """,
        "SGML conference paper; intro under both chapter and topic (parent-ambiguous)",
    ),
    UseCaseDTD(
        "STRING",
        "news",
        """
        <!ELEMENT news (news_item*)>
        <!ELEMENT news_item (title, content, date, author?, news_agent)>
        <!ELEMENT content (par | figure)*>
        <!ELEMENT par (#PCDATA)>
        <!ELEMENT figure (image, caption?)>
        <!ELEMENT image EMPTY>
        <!ATTLIST image source CDATA #REQUIRED>
        <!ELEMENT caption (#PCDATA)>
        <!ELEMENT title (#PCDATA)>
        <!ELEMENT date (#PCDATA)>
        <!ELEMENT author (#PCDATA)>
        <!ELEMENT news_agent (#PCDATA)>
        """,
        "news corpus for full-text predicates; starred unions only",
    ),
    UseCaseDTD(
        "NS",
        "catalog",
        """
        <!ELEMENT catalog (record*)>
        <!ELEMENT record (ident, descriptor, pricing)>
        <!ELEMENT ident (#PCDATA)>
        <!ELEMENT descriptor (keywords?, summary?)>
        <!ELEMENT keywords (#PCDATA)>
        <!ELEMENT summary (#PCDATA)>
        <!ELEMENT pricing (retail, wholesale?)>
        <!ELEMENT retail (#PCDATA)>
        <!ELEMENT wholesale (#PCDATA)>
        """,
        "namespaced catalog records (namespaces elided); flat",
    ),
    UseCaseDTD(
        "PARTS",
        "partlist",
        """
        <!ELEMENT partlist (part*)>
        <!ELEMENT part ((maker | assembly)?, part*)>
        <!ATTLIST part partid CDATA #REQUIRED name CDATA #REQUIRED>
        <!ELEMENT maker (#PCDATA)>
        <!ELEMENT assembly (#PCDATA)>
        """,
        "recursive part hierarchy with an optional origin marker: recursive "
        "AND not *-guarded — the corpus' 'neither' entry",
    ),
    UseCaseDTD(
        "REF",
        "census",
        """
        <!ELEMENT census (person*)>
        <!ELEMENT person (name, job?, (spouse | parent1)*)>
        <!ELEMENT spouse (name)>
        <!ELEMENT parent1 (name)>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT job (#PCDATA)>
        """,
        "id/idref census: starred relation union; name under three parents "
        "(parent-ambiguous)",
    ),
    UseCaseDTD(
        "TEXT",
        "company-profile",
        """
        <!ELEMENT company-profile (name, ticker?, headquarters, overview)>
        <!ELEMENT overview (heading, paragraph+)>
        <!ELEMENT heading (#PCDATA)>
        <!ELEMENT paragraph (#PCDATA)>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT ticker (#PCDATA)>
        <!ELEMENT headquarters (#PCDATA)>
        """,
        "company profiles for text search; flat and unambiguous",
    ),
)


#: An XHTML-flavoured DTD — large and heavily recursive — for the
#: "analysis time on large DTDs" overhead experiment of Section 6.
XHTML_LIKE_DTD = """
<!ENTITY % inline "a | span | em | strong | code | img | br | sub | sup | q | abbr | cite | kbd | samp | var | small | b | i">
<!ENTITY % block "p | div | ul | ol | dl | pre | blockquote | table | h1 | h2 | h3 | h4 | h5 | h6 | hr | form | address">
<!ELEMENT html (head, body)>
<!ELEMENT head (title, (meta | link | style | script | base)*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT meta EMPTY>
<!ATTLIST meta name CDATA #IMPLIED content CDATA #IMPLIED>
<!ELEMENT link EMPTY>
<!ATTLIST link rel CDATA #IMPLIED href CDATA #IMPLIED>
<!ELEMENT style (#PCDATA)>
<!ELEMENT script (#PCDATA)>
<!ELEMENT base EMPTY>
<!ATTLIST base href CDATA #REQUIRED>
<!ELEMENT body (%block;)*>
<!ATTLIST body class CDATA #IMPLIED id CDATA #IMPLIED>
<!ELEMENT div (#PCDATA | %inline; | %block;)*>
<!ATTLIST div class CDATA #IMPLIED id CDATA #IMPLIED>
<!ELEMENT p (#PCDATA | %inline;)*>
<!ELEMENT h1 (#PCDATA | %inline;)*>
<!ELEMENT h2 (#PCDATA | %inline;)*>
<!ELEMENT h3 (#PCDATA | %inline;)*>
<!ELEMENT h4 (#PCDATA | %inline;)*>
<!ELEMENT h5 (#PCDATA | %inline;)*>
<!ELEMENT h6 (#PCDATA | %inline;)*>
<!ELEMENT ul (li+)>
<!ELEMENT ol (li+)>
<!ELEMENT li (#PCDATA | %inline; | %block;)*>
<!ELEMENT dl (dt | dd)+>
<!ELEMENT dt (#PCDATA | %inline;)*>
<!ELEMENT dd (#PCDATA | %inline; | %block;)*>
<!ELEMENT pre (#PCDATA | a | span | code)*>
<!ELEMENT blockquote (%block;)*>
<!ELEMENT hr EMPTY>
<!ELEMENT address (#PCDATA | %inline;)*>
<!ELEMENT a (#PCDATA | span | em | strong | code | img | br)*>
<!ATTLIST a href CDATA #IMPLIED name CDATA #IMPLIED>
<!ELEMENT span (#PCDATA | %inline;)*>
<!ELEMENT em (#PCDATA | %inline;)*>
<!ELEMENT strong (#PCDATA | %inline;)*>
<!ELEMENT code (#PCDATA | %inline;)*>
<!ELEMENT q (#PCDATA | %inline;)*>
<!ELEMENT abbr (#PCDATA)>
<!ELEMENT cite (#PCDATA | %inline;)*>
<!ELEMENT kbd (#PCDATA | %inline;)*>
<!ELEMENT samp (#PCDATA | %inline;)*>
<!ELEMENT var (#PCDATA | %inline;)*>
<!ELEMENT small (#PCDATA | %inline;)*>
<!ELEMENT b (#PCDATA | %inline;)*>
<!ELEMENT i (#PCDATA | %inline;)*>
<!ELEMENT sub (#PCDATA | %inline;)*>
<!ELEMENT sup (#PCDATA | %inline;)*>
<!ELEMENT img EMPTY>
<!ATTLIST img src CDATA #REQUIRED alt CDATA #IMPLIED>
<!ELEMENT br EMPTY>
<!ELEMENT table (caption?, tr+)>
<!ELEMENT caption (#PCDATA | %inline;)*>
<!ELEMENT tr (th | td)+>
<!ELEMENT th (#PCDATA | %inline; | %block;)*>
<!ELEMENT td (#PCDATA | %inline; | %block;)*>
<!ELEMENT form (%block;)*>
<!ATTLIST form action CDATA #REQUIRED method CDATA #IMPLIED>
"""


def use_case_grammar(name: str) -> Grammar:
    """Lower one Use Case DTD by name."""
    for case in USE_CASES:
        if case.name == name:
            return grammar_from_text(case.dtd, case.root)
    raise KeyError(name)


def xhtml_grammar() -> Grammar:
    return grammar_from_text(XHTML_LIKE_DTD, "html")


def classify_corpus() -> dict[str, GrammarProperties]:
    """Def 4.3 classification of the whole corpus (the §4.1 survey)."""
    return {
        case.name: analyze_grammar(grammar_from_text(case.dtd, case.root))
        for case in USE_CASES
    }
