"""Random grammars, documents and paths for property-based testing.

The soundness theorems quantify over *all* valid documents and paths;
the test suite approximates that with seeded random sampling (driven by
hypothesis where the shrinking is useful, plain ``random.Random``
otherwise).  Everything here is deterministic in the seed.
"""

from __future__ import annotations

import random

from repro.dtd.grammar import (
    ElementProduction,
    Grammar,
    TextProduction,
    text_name,
)
from repro.dtd.regex import Alt, Atom, Epsilon, Opt, Plus, Regex, Seq, Star
from repro.dtd.validator import Interpretation
from repro.xmltree.nodes import Document, Element, Text
from repro.xpath.ast import Axis, KindTest, NameTest
from repro.xpath.xpathl import LStep, PathL, SimplePath


def random_grammar(
    seed: int,
    max_names: int = 8,
    star_guarded_only: bool = False,
    allow_recursion: bool = False,
) -> Grammar:
    """A random local tree grammar rooted at ``n0``.

    By default productions only reference strictly higher-numbered names,
    making the grammar non-recursive; ``allow_recursion`` adds star-guarded
    back edges (so finite documents always exist).
    """
    rng = random.Random(seed)
    count = rng.randint(2, max_names)
    names = [f"n{i}" for i in range(count)]
    productions: list = []
    for index, name in enumerate(names):
        forward = names[index + 1 :]
        has_text = rng.random() < 0.4 or not forward
        children: list[Regex] = []
        if forward:
            for _ in range(rng.randint(0, min(3, len(forward)))):
                child = rng.choice(forward)
                children.append(_decorate(rng, Atom(child), star_guarded_only))
        if allow_recursion and index > 0 and rng.random() < 0.3:
            # A back edge, always starred so documents stay finite.
            children.append(Star(Atom(rng.choice(names[: index + 1]))))
        if has_text:
            children.append(Star(Atom(text_name(name))))
        if not children:
            regex: Regex = Epsilon()
        elif len(children) == 1:
            regex = children[0]
        elif rng.random() < 0.3 and not star_guarded_only:
            regex = Alt(children)
        elif rng.random() < 0.3:
            regex = Star(Alt(children))
        else:
            regex = Seq(children)
        productions.append(ElementProduction(name, name, regex))
        if has_text:
            productions.append(TextProduction(text_name(name)))
    return Grammar("n0", productions)


def _decorate(rng: random.Random, regex: Regex, star_guarded_only: bool) -> Regex:
    roll = rng.random()
    if roll < 0.25:
        return Star(regex)
    if roll < 0.4:
        return Plus(regex)
    if roll < 0.6 and not star_guarded_only:
        return Opt(regex)
    return regex


def random_valid_document(
    grammar: Grammar, seed: int, max_depth: int = 24, max_nodes: int = 400
) -> Document:
    """Sample a document valid w.r.t. ``grammar`` by walking production
    regexes and sampling each combinator.  Two brakes keep recursive
    grammars finite *and small*: beyond ``max_depth`` sampling prefers
    nullable branches (bounds depth), and beyond ``max_nodes`` it does so
    everywhere (bounds width — unbraked, branching^depth explodes)."""
    rng = random.Random(seed)
    budget = [max_nodes]

    def build(name: str, depth: int) -> Element | Text:
        budget[0] -= 1
        production = grammar.production(name)
        if isinstance(production, TextProduction):
            return Text(f"t{rng.randint(0, 99)}")
        assert isinstance(production, ElementProduction)
        element = Element(production.tag)
        shallow = depth >= max_depth or budget[0] <= 0
        for child_name in _sample_regex(rng, production.regex, shallow):
            element.append(build(child_name, depth + 1))
        return element

    root = build(grammar.root, 0)
    assert isinstance(root, Element)
    return Document(root)


def _sample_regex(rng: random.Random, regex: Regex, shallow: bool) -> list[str]:
    if isinstance(regex, Epsilon):
        return []
    if isinstance(regex, Atom):
        return [regex.name]
    if isinstance(regex, Seq):
        result: list[str] = []
        for item in regex.items:
            result.extend(_sample_regex(rng, item, shallow))
        return result
    if isinstance(regex, Alt):
        choices = list(regex.items)
        if shallow:
            # Prefer nullable branches near the depth bound.
            nullable = [item for item in choices if item.nullable()]
            if nullable:
                choices = nullable
        return _sample_regex(rng, rng.choice(choices), shallow)
    if isinstance(regex, Star):
        repeats = 0 if shallow else rng.randint(0, 2)
        result = []
        for _ in range(repeats):
            result.extend(_sample_regex(rng, regex.inner, shallow))
        return result
    if isinstance(regex, Plus):
        repeats = 1 if shallow else rng.randint(1, 2)
        result = []
        for _ in range(repeats):
            result.extend(_sample_regex(rng, regex.inner, shallow))
        return result
    if isinstance(regex, Opt):
        if shallow or rng.random() < 0.5:
            return []
        return _sample_regex(rng, regex.inner, shallow)
    raise TypeError(f"unknown regex node {regex!r}")


def random_single_type_grammar(seed: int, max_names: int = 8):
    """A random *single-type* grammar (XML Schema class): like
    :func:`random_grammar` but tags are drawn from a small pool so
    distinct names regularly share a tag (local elements), while the
    single-type restriction (no two same-tag names in one content model)
    is enforced by construction."""
    from repro.dtd.singletype import SingleTypeGrammar

    rng = random.Random(seed)
    count = rng.randint(3, max_names)
    names = [f"n{i}" for i in range(count)]
    # Tag pool half the size of the name pool forces sharing.
    tags = [f"t{i}" for i in range(max(2, count // 2))]
    assigned = {name: rng.choice(tags) for name in names}
    assigned[names[0]] = "root"
    productions: list = []
    for index, name in enumerate(names):
        forward = names[index + 1 :]
        has_text = rng.random() < 0.4 or not forward
        children: list[Regex] = []
        used_tags: set[str] = set()
        if forward:
            for _ in range(rng.randint(0, min(3, len(forward)))):
                child = rng.choice(forward)
                if assigned[child] in used_tags:
                    continue  # single-type: one name per tag per model
                used_tags.add(assigned[child])
                children.append(_decorate(rng, Atom(child), False))
        if has_text:
            children.append(Star(Atom(text_name(name))))
        if not children:
            regex: Regex = Epsilon()
        elif len(children) == 1:
            regex = children[0]
        else:
            regex = Seq(children)
        productions.append(ElementProduction(name, assigned[name], regex))
        if has_text:
            productions.append(TextProduction(text_name(name)))
    return SingleTypeGrammar(names[0], productions)


_PATH_AXES = (
    Axis.CHILD,
    Axis.DESCENDANT,
    Axis.PARENT,
    Axis.ANCESTOR,
    Axis.SELF,
    Axis.DESCENDANT_OR_SELF,
    Axis.ANCESTOR_OR_SELF,
)


def random_pathl(grammar: Grammar, seed: int, max_steps: int = 4, with_conditions: bool = True) -> PathL:
    """A random XPathℓ path whose name tests are drawn from the grammar's
    tags (so paths have a fighting chance of selecting something)."""
    rng = random.Random(seed)
    tags = sorted(
        production.tag
        for production in grammar.productions.values()
        if isinstance(production, ElementProduction)
    )
    steps = [_random_step(rng, tags, with_conditions)]
    for _ in range(rng.randint(0, max_steps - 1)):
        steps.append(_random_step(rng, tags, with_conditions))
    return PathL(tuple(steps))


def _random_step(rng: random.Random, tags: list[str], with_conditions: bool) -> LStep:
    axis = rng.choice(_PATH_AXES)
    roll = rng.random()
    if roll < 0.45 and tags:
        test = NameTest(rng.choice(tags))
    elif roll < 0.6:
        test = KindTest("text")
    else:
        test = KindTest("node")
    condition = None
    if with_conditions and rng.random() < 0.3:
        disjuncts = []
        for _ in range(rng.randint(1, 2)):
            length = rng.randint(1, 2)
            simple_steps = []
            for _ in range(length):
                saxis = rng.choice((Axis.CHILD, Axis.DESCENDANT, Axis.PARENT, Axis.SELF))
                if rng.random() < 0.5 and tags:
                    stest = NameTest(rng.choice(tags))
                else:
                    stest = KindTest("node")
                simple_steps.append(LStep(saxis, stest))
            disjuncts.append(SimplePath(tuple(simple_steps)))
        condition = tuple(disjuncts)
    return LStep(axis, test, condition)


def random_interpretation(grammar: Grammar, document: Document) -> Interpretation:
    """Validate and return ℑ (sampled documents are valid by construction,
    so this never fails)."""
    from repro.dtd.validator import validate

    return validate(document, grammar)


def random_extract_spec(grammar: Grammar, seed: int):
    """A random :class:`~repro.extract.spec.ExtractSpec` over ``grammar``.

    The row path follows a random parent-child chain of element tags
    from the root; each field is a short row-relative chain ending in
    ``text()`` or a string-value step.  Random grammars declare no
    attributes, so ``@attr`` fields never arise here — the attribute
    path is covered by the fixture-based extract tests instead.

    Empty results are deliberately in scope: a chain the sampled
    document never instantiates must yield zero rows (or NULL fields)
    identically on every extraction path.
    """
    from repro.extract.spec import ExtractSpec

    rng = random.Random(seed)

    def element_children(name: str) -> list[str]:
        return sorted(
            child for child in grammar.children_of(name)
            if grammar.tag_of(child) is not None
        )

    chain = [grammar.root]
    for _ in range(rng.randint(0, 2)):
        options = element_children(chain[-1])
        if not options:
            break
        chain.append(rng.choice(options))
    rows = "/" + "/".join(grammar.tag_of(name) or name for name in chain)

    fields: dict[str, str] = {}
    for index in range(rng.randint(1, 3)):
        steps: list[str] = []
        name = chain[-1]
        for _ in range(rng.randint(0, 2)):
            options = element_children(name)
            if not options:
                break
            name = rng.choice(options)
            steps.append(grammar.tag_of(name) or name)
        if steps and rng.random() < 0.45:
            path = "/".join(steps)  # string value of the element
        else:
            path = "/".join(steps + ["text()"])
        fields[f"f{index}"] = path
    null = rng.choice([None, "", "NULL"])
    return ExtractSpec(rows=rows, fields=fields, null=null)
