"""Query-language detection shared by the CLI and the query engine.

Both front ends accept XPath and XQuery through a single ``--query`` /
``run()`` entry point and must route each string to the right parser.
The old heuristic treated any query containing the substring
``" return "`` as XQuery, which misrouted plain XPath like
``//listitem[text()=" return me"]`` (the keyword lives inside a string
literal) or ``//section/ return `` spellings of a *name test* called
``return``.  The check here is token-aware instead: keywords are only
recognised outside string literals, at name-token boundaries, and in
positions where an expression just ended (after a name, a closing
bracket, or a literal) — exactly where XPath could not put a name test.
"""

from __future__ import annotations

#: Characters that may appear inside an XML name (pragmatic ASCII set —
#: matches the scanner's fast path in :mod:`repro.xmltree.lexer`).
_NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-:"
)

#: Keywords that, in expression-end position, can only be FLWOR clauses.
_CLAUSE_KEYWORDS = ("return", "where", "order by", "group by")

#: Leading tokens that unambiguously start an XQuery main module.
_XQUERY_PREFIXES = (
    "for $",
    "let $",
    "some $",
    "every $",
    "if (",
    "if(",
    "<",
    "declare ",
    "xquery ",
    "element ",
)


def looks_like_xquery(query: str) -> bool:
    """Heuristically classify a query string as XQuery (vs XPath)."""
    stripped = query.lstrip()
    if stripped.startswith(_XQUERY_PREFIXES):
        return True
    return _has_clause_keyword(query)


def _has_clause_keyword(query: str) -> bool:
    """Is a FLWOR clause keyword present outside string literals, at a
    position where XPath could not parse it as a name test?"""
    length = len(query)
    index = 0
    while index < length:
        char = query[index]
        if char == '"' or char == "'":
            closing = query.find(char, index + 1)
            if closing == -1:
                return False  # unterminated literal: nothing more to see
            index = closing + 1
            continue
        for keyword in _CLAUSE_KEYWORDS:
            if query.startswith(keyword, index) and _is_clause_at(
                query, index, len(keyword)
            ):
                return True
        index += 1
    return False


def _is_clause_at(query: str, index: int, keyword_length: int) -> bool:
    # Must be a whole token: not glued to name characters on either side
    # (`//well-return`, `$returned`).
    if index > 0 and query[index - 1] in _NAME_CHARS:
        return False
    end = index + keyword_length
    if end < len(query) and query[end] in _NAME_CHARS:
        return False
    # What ended just before decides the reading.  After `/`, `@`, `::`
    # or `$` the token is a name test / variable name (`//return`,
    # `@where`, `child::return`, `$return`); after a name, a closing
    # bracket, a literal, or `.` it can only be a clause keyword
    # (`$b/title return ...`, `a[1] where ...`).
    position = index - 1
    while position >= 0 and query[position] in " \t\r\n":
        position -= 1
    if position < 0:
        # A leading clause keyword is not a complete query in either
        # language; leave classification to the prefix checks.
        return False
    previous = query[position]
    if previous in "/@:$":
        return False
    return previous in _NAME_CHARS or previous in ")]\"'"
