"""The unified grammar-loading API: one :func:`load_grammar` per source.

Grammars historically came from three ad-hoc places — ``grammar_from_text``
/ ``grammar_from_dtd`` for DTDs, :mod:`repro.dtd.dataguide` for
DTD-less documents, and :func:`repro.workloads.xmark.xmark_grammar` for
the benchmark schema.  This facade collapses them behind one
keyword-consistent entry point, mirroring what :func:`repro.prune` did
for the per-source prune functions::

    from repro import load_grammar

    grammar = load_grammar("auction.dtd", root="site")      # DTD file
    grammar = load_grammar(DTD_TEXT, root="bib")            # DTD text
    grammar = load_grammar("auction.xml", format="xml")     # dataguide
    grammar = load_grammar("xmark")                         # built-in

``format`` selects the loader:

* ``"dtd"`` — ``source`` is DTD text or a path to a DTD file; ``root``
  names the root element (omitted: the first declared element);
* ``"xml"`` — ``source`` is an XML document (text, path, or open
  stream); its dataguide summary becomes the grammar (no DTD needed);
* ``"xmark"`` — the built-in XMark benchmark grammar (``source`` is
  ignored and may be the string ``"xmark"``);
* ``"auto"`` (default) — ``"xmark"`` selects the benchmark grammar, a
  ``.dtd`` path or text starting with a DTD declaration selects
  ``"dtd"``, anything else selects ``"xml"``.

The old spellings remain importable from their submodules; the
package-level re-exports (``repro.grammar_from_text`` and friends) are
DeprecationWarning shims, per the PR 2 facade pattern.
"""

from __future__ import annotations

import os
from typing import IO

from repro.dtd.grammar import Grammar
from repro.errors import ReproError

__all__ = ["load_grammar"]

FORMATS = ("auto", "dtd", "xml", "xmark")

_DTD_MARKERS = ("<!ELEMENT", "<!ATTLIST", "<!ENTITY", "<!--")


def _looks_like_dtd(text: str) -> bool:
    return text.lstrip().startswith(_DTD_MARKERS)


def _detect(source: "str | os.PathLike[str] | IO[str]") -> str:
    if isinstance(source, str):
        if source == "xmark":
            return "xmark"
        if _looks_like_dtd(source):
            return "dtd"
        if not source.lstrip().startswith("<") and source.endswith(".dtd"):
            return "dtd"
        return "xml"
    if isinstance(source, os.PathLike):
        return "dtd" if os.fspath(source).endswith(".dtd") else "xml"
    return "xml"  # open stream: document content


def _dtd_text(source: "str | os.PathLike[str] | IO[str]") -> str:
    if hasattr(source, "read"):
        return source.read()
    text = os.fspath(source) if isinstance(source, os.PathLike) else source
    if _looks_like_dtd(text):
        return text
    with open(text, "r", encoding="utf-8") as handle:
        return handle.read()


def _load_dtd(source, root: str | None) -> Grammar:
    from repro.dtd.grammar import grammar_from_dtd
    from repro.dtd.parser import parse_dtd

    document = parse_dtd(_dtd_text(source))
    if root is None:
        tags = document.element_tags()
        if not tags:
            raise ReproError("the DTD declares no elements")
        root = tags[0]
    return grammar_from_dtd(document, root)


def _load_xml(source, root: str | None) -> Grammar:
    from repro.dtd.dataguide import DataguideBuilder
    from repro.xmltree.parser import parse_events

    builder = DataguideBuilder()
    if isinstance(source, str) and not source.lstrip().startswith("<"):
        from repro.dtd.dataguide import grammar_from_file

        return grammar_from_file(source, root)
    if isinstance(source, os.PathLike):
        from repro.dtd.dataguide import grammar_from_file

        return grammar_from_file(os.fspath(source), root)
    builder.add_events(parse_events(source))
    return builder.grammar(root)


def load_grammar(
    source: "str | os.PathLike[str] | IO[str]",
    format: str = "auto",
    *,
    root: str | None = None,
) -> Grammar:
    """Load a :class:`~repro.dtd.grammar.Grammar` from ``source``.

    See the module docstring for the format dispatch table.  ``root``
    names the grammar's root element; for DTDs it defaults to the first
    declared element, for documents to the document root.
    """
    if format not in FORMATS:
        raise ReproError(
            f"unknown grammar format {format!r} (expected one of {FORMATS})"
        )
    if format == "auto":
        format = _detect(source)
    if format == "xmark":
        from repro.workloads.xmark import xmark_grammar

        return xmark_grammar()
    if format == "dtd":
        return _load_dtd(source, root)
    return _load_xml(source, root)
