"""The unified grammar-loading API: one :func:`load_grammar` per source.

Grammars historically came from three ad-hoc places — ``grammar_from_text``
/ ``grammar_from_dtd`` for DTDs, :mod:`repro.dtd.dataguide` for
DTD-less documents, and :func:`repro.workloads.xmark.xmark_grammar` for
the benchmark schema.  This facade collapses them behind one
keyword-consistent entry point, mirroring what :func:`repro.prune` did
for the per-source prune functions::

    from repro import load_grammar

    grammar = load_grammar("auction.dtd", root="site")      # DTD file
    grammar = load_grammar(DTD_TEXT, root="bib")            # DTD text
    grammar = load_grammar("library.xsd")                   # XML Schema
    grammar = load_grammar("auction.xml", format="xml")     # dataguide
    grammar = load_grammar("xmark")                         # built-in
    grammar = load_grammar("corpus/*.xml", infer=True,      # inference
                           on_stray="copy")

``format`` selects the loader:

* ``"dtd"`` — ``source`` is DTD text or a path to a DTD file; ``root``
  names the root element (omitted: the first declared element);
* ``"xsd"`` — ``source`` is XML Schema text or a path to an ``.xsd``
  file, compiled by :mod:`repro.schema.xsd` (``root`` names the root
  element tag; omitted: the first global element);
* ``"xml"`` — ``source`` is an XML document (text, path, or open
  stream); its dataguide summary becomes the grammar (no DTD needed);
* ``"xmark"`` — the built-in XMark benchmark grammar (``source`` is
  ignored and may be the string ``"xmark"``);
* ``"auto"`` (default) — ``"xmark"`` selects the benchmark grammar, a
  ``.dtd`` path or text starting with a DTD declaration selects
  ``"dtd"``, an ``.xsd`` path or a document whose root element is
  ``xs:schema``/``schema`` selects ``"xsd"`` (an XSD is itself XML, so
  this sniff must run before the generic XML branch), anything else
  selects ``"xml"``.

``infer=True`` switches to first-class schemaless inference
(:func:`repro.schema.infer.infer_grammar`): ``source`` is then a corpus
sample — markup, a path, a glob, a directory, or an iterable of those —
and the result is an :class:`~repro.schema.infer.InferredGrammar`
carrying the ``on_stray`` escape-hatch policy (``"error"`` refuses
documents that stray from the inferred grammar, ``"copy"`` passes them
through verbatim; pruning a stray would be unsound, Theorem 4.5).

The old spellings remain importable from their submodules; the
package-level re-exports (``repro.grammar_from_text`` and friends) are
DeprecationWarning shims, per the PR 2 facade pattern.
"""

from __future__ import annotations

import os
from typing import IO, Iterable

from repro.dtd.grammar import Grammar
from repro.errors import ReproError

__all__ = ["load_grammar"]

FORMATS = ("auto", "dtd", "xsd", "xml", "xmark")

_DTD_MARKERS = ("<!ELEMENT", "<!ATTLIST", "<!ENTITY", "<!--")


def _looks_like_dtd(text: str) -> bool:
    return text.lstrip().startswith(_DTD_MARKERS)


def _detect(source: "str | os.PathLike[str] | IO[str]") -> str:
    from repro.schema.xsd import looks_like_xsd

    if isinstance(source, str):
        if source == "xmark":
            return "xmark"
        if _looks_like_dtd(source):
            return "dtd"
        if source.lstrip().startswith("<"):
            # Inline markup.  An XSD is itself an XML document, so the
            # schema sniff must come before the generic XML branch or
            # the schema would be summarised as a sample document.
            return "xsd" if looks_like_xsd(source) else "xml"
        if source.endswith(".dtd"):
            return "dtd"
        if source.endswith(".xsd"):
            return "xsd"
        return "xml"
    if isinstance(source, os.PathLike):
        path = os.fspath(source)
        if path.endswith(".dtd"):
            return "dtd"
        if path.endswith(".xsd"):
            return "xsd"
        return "xml"
    return "xml"  # open stream: document content


def _dtd_text(source: "str | os.PathLike[str] | IO[str]") -> str:
    if hasattr(source, "read"):
        return source.read()
    text = os.fspath(source) if isinstance(source, os.PathLike) else source
    if _looks_like_dtd(text):
        return text
    with open(text, "r", encoding="utf-8") as handle:
        return handle.read()


def _load_dtd(source, root: str | None) -> Grammar:
    from repro.dtd.grammar import grammar_from_dtd
    from repro.dtd.parser import parse_dtd

    document = parse_dtd(_dtd_text(source))
    if root is None:
        tags = document.element_tags()
        if not tags:
            raise ReproError("the DTD declares no elements")
        root = tags[0]
    return grammar_from_dtd(document, root)


def _load_xsd(source, root: str | None) -> Grammar:
    from repro.schema.xsd import grammar_from_xsd

    if hasattr(source, "read"):
        return grammar_from_xsd(source.read(), root)
    text = os.fspath(source) if isinstance(source, os.PathLike) else source
    if text.lstrip().startswith("<"):
        return grammar_from_xsd(text, root)
    with open(text, "r", encoding="utf-8") as handle:
        return grammar_from_xsd(handle.read(), root)


def _load_xml(source, root: str | None) -> Grammar:
    from repro.dtd.dataguide import DataguideBuilder
    from repro.xmltree.parser import parse_events

    builder = DataguideBuilder()
    if isinstance(source, str) and not source.lstrip().startswith("<"):
        from repro.dtd.dataguide import grammar_from_file

        return grammar_from_file(source, root)
    if isinstance(source, os.PathLike):
        from repro.dtd.dataguide import grammar_from_file

        return grammar_from_file(os.fspath(source), root)
    builder.add_events(parse_events(source))
    return builder.grammar(root)


def load_grammar(
    source: "str | os.PathLike[str] | IO[str] | Iterable[str]",
    format: str = "auto",
    *,
    root: str | None = None,
    infer: bool = False,
    on_stray: str = "error",
) -> Grammar:
    """Load a :class:`~repro.dtd.grammar.Grammar` from ``source``.

    See the module docstring for the format dispatch table.  ``root``
    names the grammar's root element; for DTDs it defaults to the first
    declared element, for XSDs to the first global element, for
    documents to the document root.  ``infer=True`` selects schemaless
    inference over a corpus sample (``format`` must then be left at
    ``"auto"``); ``on_stray`` only applies to inferred grammars.
    """
    if infer:
        from repro.schema.infer import infer_grammar

        if format != "auto":
            raise ReproError(
                "infer=True chooses its own loader; leave format='auto'"
            )
        return infer_grammar(source, root=root, on_stray=on_stray)  # type: ignore[arg-type]
    if format not in FORMATS:
        raise ReproError(
            f"unknown grammar format {format!r} (expected one of {FORMATS})"
        )
    if format == "auto":
        format = _detect(source)  # type: ignore[arg-type]
    if format == "xmark":
        from repro.workloads.xmark import xmark_grammar

        return xmark_grammar()
    if format == "dtd":
        return _load_dtd(source, root)
    if format == "xsd":
        return _load_xsd(source, root)
    return _load_xml(source, root)
