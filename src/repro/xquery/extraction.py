"""Path extraction from XQuery — the function ``E`` of Figure 3.

``E(q, Γ, m)`` walks a query collecting the XPathℓ paths that denote its
data needs.  ``Γ`` tracks for/let variable bindings to the paths that
define them; ``m`` flags whether ``q`` computes a (partial) result that
must be *materialised* — in which case its paths are extended with
``descendant-or-self::node`` (lines 6, 8, 10 of the figure).

The union of the projectors inferred for the extracted paths is a sound
projector for the query (Section 5); :func:`repro.analyze` (with
``language="xquery"`` or auto-detection) wires this up.

Same deliberate refinement as in :mod:`repro.xpath.approximation`: paths
whose *string value* feeds a comparison, an arithmetic operator or a
string function are materialised even at ``m = 0`` — extracting the bare
path would allow the projector to prune the very text the operator reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import AnalysisError
from repro.xpath import ast as xp
from repro.xpath.approximation import approximate_query
from repro.xpath.functions import function_needs_subtree
from repro.xpath.xpathl import DOS_NODE, LStep, PathL
from repro.xquery.ast import (
    AttributeValue,
    ElementConstructor,
    EmptySequence,
    ForExpr,
    IfExpr,
    LetExpr,
    OrderByExpr,
    QExpr,
    QuantifiedExpr,
    Sequence,
)
from repro.xquery.parser import parse_xquery


class BindingKind(Enum):
    FOR = "for"
    LET = "let"


@dataclass(frozen=True, slots=True)
class Binding:
    kind: BindingKind
    paths: tuple[PathL, ...]


Gamma = dict[str, Binding]


def _with_subtree(path: PathL) -> PathL:
    """Append ``descendant-or-self::node`` unless redundant (already
    there, or the path ends at an attribute or text node)."""
    if not path.steps:
        return PathL((DOS_NODE,))
    last = path.steps[-1]
    if last.axis is xp.Axis.ATTRIBUTE:
        return path
    if isinstance(last.test, xp.KindTest) and last.test.kind == "text":
        return path
    if (
        last.axis is xp.Axis.DESCENDANT_OR_SELF
        and isinstance(last.test, xp.KindTest)
        and last.test.kind == "node"
        and last.condition is None
    ):
        return path
    return path.append(DOS_NODE)


class PathExtractor:
    """One extraction run; use :func:`extract_paths`."""

    def __init__(self) -> None:
        self.collected: dict[tuple, PathL] = {}

    # -- collection helpers ---------------------------------------------------

    def _add(self, path: PathL) -> None:
        self.collected.setdefault(path.steps, path)

    def _add_all(self, paths) -> list[PathL]:
        result = list(paths)
        for path in result:
            self._add(path)
        return result

    # -- E(q, Γ, m) ------------------------------------------------------------

    def extract(self, query: QExpr, gamma: Gamma, materialize: bool) -> list[PathL]:
        if isinstance(query, EmptySequence):
            return []
        if isinstance(query, Sequence):
            paths: list[PathL] = []
            for item in query.items:
                paths += self.extract(item, gamma, materialize)
            return paths
        if isinstance(query, ElementConstructor):
            # Line 5: constructing output adds the for-paths in scope.
            paths = self._for_paths(gamma)
            for _, value in query.attributes:
                paths += self._extract_attribute(value, gamma)
            for part in query.content:
                if not isinstance(part, str):
                    paths += self.extract(part, gamma, True)
            return self._add_all(paths)
        if isinstance(query, IfExpr):
            # Line 15 (branches are materialised, both binding kinds added).
            paths = self.extract(query.condition, gamma, False)
            paths += self.extract(query.then_branch, gamma, True)
            paths += self.extract(query.else_branch, gamma, True)
            paths += [path for binding in gamma.values() for path in binding.paths]
            return self._add_all(paths)
        if isinstance(query, ForExpr):
            # Line 16.
            source_paths = self.extract(query.source, gamma, False)
            inner = dict(gamma)
            inner[query.variable] = Binding(BindingKind.FOR, tuple(source_paths))
            return self._add_all(source_paths + self.extract(query.body, inner, materialize))
        if isinstance(query, LetExpr):
            # Line 17.
            value_paths = self.extract(query.value, gamma, False)
            inner = dict(gamma)
            inner[query.variable] = Binding(BindingKind.LET, tuple(value_paths))
            return self._add_all(value_paths + self.extract(query.body, inner, materialize))
        if isinstance(query, QuantifiedExpr):
            # Like a for whose body is a condition (existence only).
            source_paths = self.extract(query.source, gamma, False)
            inner = dict(gamma)
            inner[query.variable] = Binding(BindingKind.FOR, tuple(source_paths))
            return self._add_all(source_paths + self.extract(query.condition, inner, False))
        if isinstance(query, OrderByExpr):
            return self._extract_order_by(query, gamma, materialize)
        if isinstance(query, xp.Expr):
            return self._add_all(self._extract_xpath(query, gamma, materialize))
        raise AnalysisError(f"cannot extract paths from {query!r}")

    def _extract_order_by(self, query: OrderByExpr, gamma: Gamma, materialize: bool) -> list[PathL]:
        paths = self.extract(query.source, gamma, False)
        inner = dict(gamma)
        inner[query.variable] = Binding(BindingKind.FOR, tuple(paths))
        for name, value in query.lets:
            value_paths = self.extract(value, inner, False)
            paths += value_paths
            inner[name] = Binding(BindingKind.LET, tuple(value_paths))
        if query.condition is not None:
            paths += self.extract(query.condition, inner, False)
        # Sort keys are read as *values*: materialise them.
        paths += [_with_subtree(path) for path in self.extract(query.key, inner, False)]
        paths += self.extract(query.body, inner, materialize)
        return self._add_all(paths)

    def _for_paths(self, gamma: Gamma) -> list[PathL]:
        return [
            path
            for binding in gamma.values()
            if binding.kind is BindingKind.FOR
            for path in binding.paths
        ]

    def _extract_attribute(self, value: AttributeValue, gamma: Gamma) -> list[PathL]:
        paths: list[PathL] = []
        for part in value.parts:
            if isinstance(part, str):
                continue
            # Attribute content reads string values: materialise.
            paths += [_with_subtree(path) for path in self.extract(part, gamma, False)]
        return paths

    # -- the Exp cases (lines 6-14) -----------------------------------------------

    def _extract_xpath(self, expr: xp.Expr, gamma: Gamma, materialize: bool) -> list[PathL]:
        if isinstance(expr, xp.VariableRef):
            # Lines 6/7.
            paths = list(self._binding(expr.name, gamma).paths)
            return [_with_subtree(path) for path in paths] if materialize else paths
        if isinstance(expr, xp.LocationPath):
            # Lines 8/9 (+11/12 via the approximation machinery).
            return self._extract_location(expr, None, gamma, materialize)
        if isinstance(expr, xp.PathExpr):
            # Line 10: x/P.
            return self._extract_location(
                xp.LocationPath(expr.steps, absolute=False), expr.source, gamma, materialize
            )
        if isinstance(expr, xp.FilterExpr):
            paths = self._extract_xpath(expr.primary, gamma, materialize)
            extra: list[PathL] = []
            for predicate in expr.predicates:
                extra += self._predicate_paths(predicate, paths, gamma)
            return paths + extra
        if isinstance(expr, (xp.OrExpr, xp.AndExpr)):
            # Boolean connectives: existence only (line 13 with op ∈ {or, and}).
            return self.extract(expr.left, gamma, False) + self.extract(expr.right, gamma, False)
        if isinstance(expr, xp.BinaryExpr):
            # Line 13.  Value comparisons and arithmetic read string
            # values → materialise path operands.
            reads_values = expr.op not in ("is", "<<", ">>")
            return self._extract_operand(expr.left, gamma, reads_values) + self._extract_operand(
                expr.right, gamma, reads_values
            )
        if isinstance(expr, xp.UnaryMinus):
            return self._extract_operand(expr.operand, gamma, True)
        if isinstance(expr, xp.UnionExpr):
            return self.extract(expr.left, gamma, materialize) + self.extract(
                expr.right, gamma, materialize
            )
        if isinstance(expr, xp.FunctionCall):
            # Line 14: each argument suffixed per F(f, i).
            paths: list[PathL] = []
            if expr.name == "id":
                # The ID map reads every element's id attribute.
                paths.append(PathL((DOS_NODE, LStep(xp.Axis.ATTRIBUTE, xp.NameTest("id")))))
            for index, arg in enumerate(expr.args):
                paths += self._extract_operand(arg, gamma, function_needs_subtree(expr.name, index))
            return paths
        if isinstance(expr, (xp.Literal, xp.Number)):
            # Lines 2/3: AExp.
            return self._for_paths(gamma) if materialize else []
        raise AnalysisError(f"cannot extract paths from expression {expr}")

    def _extract_operand(self, expr: xp.Expr, gamma: Gamma, reads_values: bool) -> list[PathL]:
        """Extraction for an operand whose string value may be read: path
        and variable operands get the subtree suffix."""
        if reads_values and isinstance(
            expr, (xp.LocationPath, xp.PathExpr, xp.VariableRef, xp.FilterExpr)
        ):
            return [_with_subtree(path) for path in self.extract(expr, gamma, False)]
        return self.extract(expr, gamma, False)

    def _extract_location(
        self,
        location: xp.LocationPath,
        source: xp.Expr | None,
        gamma: Gamma,
        materialize: bool,
    ) -> list[PathL]:
        approximation = approximate_query(location)
        paths: list[PathL] = []
        # Prefixes (steps, absolute): the document root, or the paths
        # binding the source variable.
        if source is None:
            prefixes: list[tuple[tuple[LStep, ...], bool]] = [((), approximation.main.absolute)]
        elif isinstance(source, xp.VariableRef):
            prefixes = [
                (prefix.steps, prefix.absolute)
                for prefix in self._binding(source.name, gamma).paths
            ]
        else:
            # (expr)/path with a computed source: extract the source on its
            # own and fall back to an unanchored (root-prefixed) suffix —
            # conservative but sound.
            paths += self.extract(source, gamma, False)
            prefixes = [((DOS_NODE,), False)]
        for prefix_steps, prefix_absolute in prefixes:
            combined = PathL(tuple(prefix_steps) + approximation.main.steps, prefix_absolute)
            paths.append(_with_subtree(combined) if materialize else combined)
        paths.extend(approximation.absolute_paths)
        # Variables inside predicates: their values are read by the
        # predicate, so their defining paths are materialised.
        for name in _predicate_variables(location):
            paths += [_with_subtree(path) for path in self._binding(name, gamma).paths]
        return paths

    def _predicate_paths(self, predicate: xp.Expr, bases: list[PathL], gamma: Gamma) -> list[PathL]:
        """Data needs of a filter predicate, anchored at each base path."""
        from repro.xpath.approximation import PredicateApproximator

        approximator = PredicateApproximator()
        simple_paths = approximator.extract(predicate)
        paths: list[PathL] = list(approximator.absolute_paths)
        for base in bases:
            for sub in simple_paths:
                paths.append(PathL(base.steps + sub.steps))
        for name in sorted(_expression_variables(predicate)):
            paths += [_with_subtree(path) for path in self._binding(name, gamma).paths]
        return paths

    def _binding(self, name: str, gamma: Gamma) -> Binding:
        try:
            return gamma[name]
        except KeyError:
            raise AnalysisError(
                f"free variable ${name}: persistent roots must be bound before analysis"
            ) from None


def _predicate_variables(location: xp.LocationPath) -> list[str]:
    names: set[str] = set()
    for step in location.steps:
        for predicate in step.predicates:
            names |= _expression_variables(predicate)
    return sorted(names)


def _expression_variables(expr: xp.Expr) -> set[str]:
    from repro.xquery.ast import _xpath_free_variables

    return set(_xpath_free_variables(expr))


def extract_paths(query: "str | QExpr") -> list[PathL]:
    """Figure 3 entry point: ``E(q, ∅, 1)`` — all data-need paths of a
    top-level query, deduplicated, in first-seen order."""
    expr = parse_xquery(query) if isinstance(query, str) else query
    extractor = PathExtractor()
    extractor.extract(expr, {}, True)
    return list(extractor.collected.values())
