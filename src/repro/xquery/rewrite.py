"""The Section 5 pre-extraction rewriting heuristic.

The paper's key rewrite turns::

    for $y in Q/descendant-or-self::node return if C($y) then q else ()

into::

    for $y in Q/descendant-or-self::node[C(self::node)] return q

whenever ``C`` refers only to ``$y`` and uses no external functions.
Without it, a path ending in ``descendant-or-self::node`` is extracted and
pruning is annulled; with it, the predicate is pushed into the path and
the projector inference can use it.  (This is also where the paper shows
Marian & Siméon's approach degenerating: their extractor cannot carry the
predicate at all.)

We apply the generalised form: the rewrite is valid for *any* ``for``
binding source that is a path (filtering at the source equals filtering in
the body when the else-branch is empty and ``C`` is independent of the
iteration, i.e. position()/last()-free).
"""

from __future__ import annotations

from repro.xpath import ast as xp
from repro.xquery.ast import (
    AttributeValue,
    ElementConstructor,
    EmptySequence,
    ForExpr,
    IfExpr,
    LetExpr,
    OrderByExpr,
    QExpr,
    QuantifiedExpr,
    Sequence,
)


def rewrite_query(query: QExpr) -> QExpr:
    """Apply the heuristic bottom-up over the whole query."""
    if isinstance(query, Sequence):
        return Sequence(tuple(rewrite_query(item) for item in query.items))
    if isinstance(query, ElementConstructor):
        attributes = tuple(
            (name, AttributeValue(tuple(
                part if isinstance(part, str) else rewrite_query(part) for part in value.parts
            )))
            for name, value in query.attributes
        )
        content = tuple(
            part if isinstance(part, str) else rewrite_query(part) for part in query.content
        )
        return ElementConstructor(query.tag, attributes, content)
    if isinstance(query, IfExpr):
        return IfExpr(
            rewrite_query(query.condition),
            rewrite_query(query.then_branch),
            rewrite_query(query.else_branch),
        )
    if isinstance(query, LetExpr):
        return LetExpr(query.variable, rewrite_query(query.value), rewrite_query(query.body))
    if isinstance(query, ForExpr):
        body = rewrite_query(query.body)
        source = rewrite_query(query.source)
        rewritten = _try_push_condition(query.variable, source, body)
        if rewritten is not None:
            return rewritten
        return ForExpr(query.variable, source, body)
    if isinstance(query, QuantifiedExpr):
        return QuantifiedExpr(
            query.every,
            query.variable,
            rewrite_query(query.source),
            rewrite_query(query.condition),
        )
    if isinstance(query, OrderByExpr):
        return OrderByExpr(
            query.variable,
            rewrite_query(query.source),
            tuple((name, rewrite_query(value)) for name, value in query.lets),
            rewrite_query(query.condition) if query.condition is not None else None,
            rewrite_query(query.key),
            query.descending,
            rewrite_query(query.body),
        )
    return query


def _try_push_condition(variable: str, source: QExpr, body: QExpr) -> ForExpr | None:
    if not isinstance(body, IfExpr) or not isinstance(body.else_branch, EmptySequence):
        return None
    condition = body.condition
    if not isinstance(condition, xp.Expr):
        return None
    predicate = _as_self_rooted_predicate(condition, variable)
    if predicate is None:
        return None
    filtered = _with_predicate(source, predicate)
    if filtered is None:
        return None
    return ForExpr(variable, filtered, rewrite_query(body.then_branch))


def _with_predicate(source: QExpr, predicate: xp.Expr) -> QExpr | None:
    """Attach ``[predicate]`` to the last step of a path source."""
    if isinstance(source, xp.LocationPath) and source.steps:
        last = source.steps[-1]
        new_last = xp.Step(last.axis, last.test, last.predicates + (predicate,))
        return xp.LocationPath(source.steps[:-1] + (new_last,), source.absolute)
    if isinstance(source, xp.PathExpr) and source.steps:
        last = source.steps[-1]
        new_last = xp.Step(last.axis, last.test, last.predicates + (predicate,))
        return xp.PathExpr(source.source, source.steps[:-1] + (new_last,))
    return None


def _as_self_rooted_predicate(expr: xp.Expr, variable: str) -> xp.Expr | None:
    """``C($y)`` → ``C(self::node)``: substitute the variable by a
    self-rooted path.  Returns None when the condition cannot be expressed
    as an XPath predicate over the bound node: other variables, relative
    paths not rooted at ``$y``, or positional functions (whose meaning
    changes when moved into a predicate)."""
    if isinstance(expr, xp.VariableRef):
        if expr.name != variable:
            return None
        return xp.LocationPath((xp.Step(xp.Axis.SELF, xp.KindTest("node")),), absolute=False)
    if isinstance(expr, xp.PathExpr):
        if not (isinstance(expr.source, xp.VariableRef) and expr.source.name == variable):
            return None
        steps = _substitute_in_steps(expr.steps, variable)
        if steps is None:
            return None
        return xp.LocationPath(steps, absolute=False)
    if isinstance(expr, xp.LocationPath):
        if not expr.absolute:
            # A relative path at query level has no context node; it cannot
            # appear in a well-formed query, so bail out.
            return None
        steps = _substitute_in_steps(expr.steps, variable)
        if steps is None:
            return None
        return xp.LocationPath(steps, absolute=True)
    if isinstance(expr, xp.OrExpr):
        left = _as_self_rooted_predicate(expr.left, variable)
        right = _as_self_rooted_predicate(expr.right, variable)
        if left is None or right is None:
            return None
        return xp.OrExpr(left, right)
    if isinstance(expr, xp.AndExpr):
        left = _as_self_rooted_predicate(expr.left, variable)
        right = _as_self_rooted_predicate(expr.right, variable)
        if left is None or right is None:
            return None
        return xp.AndExpr(left, right)
    if isinstance(expr, xp.BinaryExpr):
        left = _as_self_rooted_predicate(expr.left, variable)
        right = _as_self_rooted_predicate(expr.right, variable)
        if left is None or right is None:
            return None
        return xp.BinaryExpr(expr.op, left, right)
    if isinstance(expr, xp.UnaryMinus):
        operand = _as_self_rooted_predicate(expr.operand, variable)
        return xp.UnaryMinus(operand) if operand is not None else None
    if isinstance(expr, xp.FunctionCall):
        if expr.name in ("position", "last"):
            return None
        args = []
        for arg in expr.args:
            converted = _as_self_rooted_predicate(arg, variable)
            if converted is None:
                return None
            args.append(converted)
        return xp.FunctionCall(expr.name, tuple(args))
    if isinstance(expr, (xp.Literal, xp.Number)):
        return expr
    return None


def _substitute_in_steps(steps: tuple[xp.Step, ...], variable: str) -> tuple[xp.Step, ...] | None:
    """Steps hanging off ``$y`` keep their own predicates — those are
    ordinary context-rooted XPath — provided they are variable-free (a
    nested ``$y`` would refer to a *different* context after pushing)."""
    from repro.xquery.ast import _xpath_free_variables

    for step in steps:
        for predicate in step.predicates:
            if _xpath_free_variables(predicate):
                return None
    return steps
