"""XQuery FLWR core (Section 5): parser, evaluator, path extraction.

The projector pipeline for XQuery::

    q  --rewrite_query-->  q'  --extract_paths (Fig. 3)-->  {P1..Pn}
       --infer projector per Pi, union-->  π
"""

from repro.xquery.ast import (
    AttributeValue,
    ElementConstructor,
    EmptySequence,
    ForExpr,
    IfExpr,
    LetExpr,
    OrderByExpr,
    QExpr,
    QuantifiedExpr,
    Sequence,
    free_variables,
)
from repro.xquery.evaluator import (
    XQueryEvaluator,
    effective_boolean,
    evaluate_xquery,
    serialize_sequence,
)
from repro.xquery.extraction import extract_paths
from repro.xquery.parser import parse_xquery
from repro.xquery.rewrite import rewrite_query

__all__ = [
    "AttributeValue",
    "ElementConstructor",
    "EmptySequence",
    "ForExpr",
    "IfExpr",
    "LetExpr",
    "OrderByExpr",
    "QExpr",
    "QuantifiedExpr",
    "Sequence",
    "XQueryEvaluator",
    "effective_boolean",
    "evaluate_xquery",
    "extract_paths",
    "free_variables",
    "parse_xquery",
    "rewrite_query",
    "serialize_sequence",
]
