"""Evaluator for the XQuery FLWR core.

Sequences are Python lists of items; an item is a tree node, an attribute
node, or an atomic value (str/float/bool).  Plain-expression islands are
delegated to the XPath evaluator with the current variable bindings — the
same engine that runs standalone XPath, so original-vs-pruned comparisons
exercise one code path.

Element constructors copy their content (XQuery semantics): constructed
trees are fresh nodes detached from the source document.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import XQueryEvaluationError
from repro.xmltree.nodes import Document, Element, Node, Text
from repro.xmltree.serializer import node_markup
from repro.xpath import ast as xp
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.values import AttributeNode, string_value, to_boolean, to_string
from repro.xquery.ast import (
    AttributeValue,
    ElementConstructor,
    EmptySequence,
    ForExpr,
    IfExpr,
    LetExpr,
    OrderByExpr,
    QExpr,
    QuantifiedExpr,
    Sequence,
)
from repro.xquery.parser import parse_xquery

Item = "Node | AttributeNode | str | float | bool"


class XQueryEvaluator:
    """Evaluator bound to one document."""

    def __init__(self, document: Document) -> None:
        self.document = document
        self._xpath = XPathEvaluator(document)

    # -- public ------------------------------------------------------------

    def evaluate(self, query: "str | QExpr") -> list:
        expr = parse_xquery(query) if isinstance(query, str) else query
        return self._eval(expr, {})

    def evaluate_serialized(self, query: "str | QExpr") -> str:
        """Evaluate and serialise the result sequence — the stable form
        used to compare runs on original vs pruned documents."""
        return serialize_sequence(self.evaluate(query))

    @property
    def nodes_touched(self) -> int:
        return self._xpath.nodes_touched

    # -- dispatch -----------------------------------------------------------

    def _eval(self, expr: QExpr, bindings: dict[str, list]) -> list:
        if isinstance(expr, EmptySequence):
            return []
        if isinstance(expr, Sequence):
            result: list = []
            for item in expr.items:
                result.extend(self._eval(item, bindings))
            return result
        if isinstance(expr, IfExpr):
            if effective_boolean(self._eval(expr.condition, bindings)):
                return self._eval(expr.then_branch, bindings)
            return self._eval(expr.else_branch, bindings)
        if isinstance(expr, ForExpr):
            source = self._eval(expr.source, bindings)
            result = []
            for item in source:
                inner = dict(bindings)
                inner[expr.variable] = [item]
                result.extend(self._eval(expr.body, inner))
            return result
        if isinstance(expr, LetExpr):
            inner = dict(bindings)
            inner[expr.variable] = self._eval(expr.value, bindings)
            return self._eval(expr.body, inner)
        if isinstance(expr, QuantifiedExpr):
            source = self._eval(expr.source, bindings)
            holds = (all if expr.every else any)(
                effective_boolean(
                    self._eval(expr.condition, {**bindings, expr.variable: [item]})
                )
                for item in source
            )
            return [holds]
        if isinstance(expr, OrderByExpr):
            return self._eval_order_by(expr, bindings)
        if isinstance(expr, ElementConstructor):
            return [self._construct(expr, bindings)]
        if isinstance(expr, xp.Expr):
            return self._eval_xpath(expr, bindings)
        raise XQueryEvaluationError(f"cannot evaluate {expr!r}")

    def _eval_order_by(self, expr: OrderByExpr, bindings: dict[str, list]) -> list:
        keyed: list[tuple, dict] = []
        for item in self._eval(expr.source, bindings):
            inner = dict(bindings)
            inner[expr.variable] = [item]
            for name, value in expr.lets:
                inner[name] = self._eval(value, inner)
            if expr.condition is not None and not effective_boolean(
                self._eval(expr.condition, inner)
            ):
                continue
            key_items = self._eval(expr.key, inner)
            keyed.append((_sort_key(key_items), inner))
        keyed.sort(key=lambda pair: pair[0], reverse=expr.descending)
        result: list = []
        for _, inner in keyed:
            result.extend(self._eval(expr.body, inner))
        return result

    def _eval_xpath(self, expr: xp.Expr, bindings: dict[str, list]) -> list:
        evaluator = self._xpath
        saved = evaluator.variables
        evaluator.variables = {name: value for name, value in bindings.items()}
        try:
            value = evaluator.evaluate(expr)
        finally:
            evaluator.variables = saved
        if isinstance(value, list):
            return value
        return [value]

    # -- construction ----------------------------------------------------------

    def _construct(self, constructor: ElementConstructor, bindings: dict[str, list]) -> Element:
        element = Element(constructor.tag)
        for name, value in constructor.attributes:
            element.attributes[name] = self._attribute_text(value, bindings)
        pending_atomics: list[str] = []

        def flush_atomics() -> None:
            if pending_atomics:
                element.append(Text(" ".join(pending_atomics)))
                pending_atomics.clear()

        for part in constructor.content:
            if isinstance(part, str):
                flush_atomics()
                element.append(Text(part))
                continue
            for item in self._eval(part, bindings):
                if isinstance(item, (Element, Text)):
                    flush_atomics()
                    element.append(copy_node(item))
                elif isinstance(item, AttributeNode):
                    pending_atomics.append(item.value)
                else:
                    pending_atomics.append(to_string(item))
        flush_atomics()
        return element

    def _attribute_text(self, value: AttributeValue, bindings: dict[str, list]) -> str:
        pieces: list[str] = []
        for part in value.parts:
            if isinstance(part, str):
                pieces.append(part)
            else:
                items = self._eval(part, bindings)
                pieces.append(" ".join(_item_string(item) for item in items))
        return "".join(pieces)


def _item_string(item) -> str:
    if isinstance(item, (Element, Text)):
        return string_value(item)
    if isinstance(item, AttributeNode):
        return item.value
    return to_string(item)


def _sort_key(items: list) -> tuple:
    """An order-by sort key: numeric when the value parses as a number
    (the common XMark case), string otherwise; empty sequences sort
    first (XQuery's 'empty least')."""
    if not items:
        return (0, 0.0, "")
    text = _item_string(items[0])
    try:
        return (1, float(text), "")
    except ValueError:
        return (2, 0.0, text)


def effective_boolean(sequence: list) -> bool:
    """The XQuery effective boolean value of a sequence."""
    if not sequence:
        return False
    first = sequence[0]
    if isinstance(first, (Element, Text, AttributeNode)):
        return True
    if len(sequence) > 1:
        raise XQueryEvaluationError("effective boolean value of a multi-item atomic sequence")
    return to_boolean(first)


def copy_node(node: Node) -> Node:
    """Deep-copy a subtree (constructed results own their content)."""
    if isinstance(node, Text):
        return Text(node.value)
    assert isinstance(node, Element)
    fresh = Element(node.tag, dict(node.attributes))
    stack: list[tuple[Element, Element]] = [(node, fresh)]
    while stack:
        original, duplicate = stack.pop()
        for child in original.children:
            if isinstance(child, Text):
                duplicate.append(Text(child.value))
            else:
                assert isinstance(child, Element)
                twin = Element(child.tag, dict(child.attributes))
                duplicate.append(twin)
                stack.append((child, twin))
    return fresh


def serialize_sequence(items: Iterable) -> str:
    """Stable textual form of a result sequence."""
    pieces: list[str] = []
    for item in items:
        if isinstance(item, (Element, Text)):
            pieces.append("".join(node_markup(item)))
        elif isinstance(item, AttributeNode):
            pieces.append(f'{item.name}="{item.value}"')
        else:
            pieces.append(to_string(item))
    return " ".join(pieces)


def evaluate_xquery(document: Document, query: "str | QExpr") -> list:
    """One-shot evaluation."""
    return XQueryEvaluator(document).evaluate(query)
