"""Parser for the XQuery FLWR core.

Structure-bearing forms (FLWOR, ``if``, element constructors, sequences)
are parsed character-level; plain expression islands are delimited by
keyword/bracket scanning and handed to the XPath parser, whose AST is
shared (Section 5's ``Exp``/``Q`` productions *are* XPath).

Supported surface syntax::

    for $x in Expr (, $y in Expr)* (where Expr)? return Expr
    let $x := Expr (where Expr)? return Expr
    if (Expr) then Expr else Expr
    <tag a="v{Expr}">text{Expr}text</tag>
    ( Expr, Expr, ... )        ()        Expr

plus everything the XPath parser accepts (variable-rooted paths,
comparisons, the function library).  ``where`` desugars to ``if`` with an
empty else-branch, which is exactly the form the Section 5 rewriting
heuristic targets.  XQuery comments ``(: ... :)`` are stripped.
"""

from __future__ import annotations

from repro.errors import XQuerySyntaxError
from repro.xmltree.lexer import is_name_char, is_name_start
from repro.xpath.parser import parse_xpath
from repro.xquery.ast import (
    AttributeValue,
    ElementConstructor,
    EmptySequence,
    ForExpr,
    IfExpr,
    LetExpr,
    QExpr,
    Sequence,
)

_KEYWORDS_STOPPING_EXPR = frozenset(
    (
        "return", "where", "then", "else", "in", "let", "for",
        "satisfies", "order", "at", "ascending", "descending",
    )
)


def _starts_keyword(text: str) -> bool:
    """Whether ``text`` (already lstripped) begins with a stop keyword."""
    for keyword in _KEYWORDS_STOPPING_EXPR:
        if text.startswith(keyword):
            end = len(keyword)
            if end >= len(text) or not (text[end].isalnum() or text[end] in "_-."):
                return True
    return False


def strip_comments(text: str) -> str:
    """Remove (possibly nested) ``(: ... :)`` comments."""
    pieces: list[str] = []
    position = 0
    depth = 0
    length = len(text)
    while position < length:
        if text.startswith("(:", position):
            depth += 1
            position += 2
        elif depth and text.startswith(":)", position):
            depth -= 1
            position += 2
        elif depth:
            position += 1
        else:
            pieces.append(text[position])
            position += 1
    if depth:
        raise XQuerySyntaxError("unterminated XQuery comment")
    return "".join(pieces)


class XQueryParser:
    def __init__(self, text: str) -> None:
        self.text = strip_comments(text)
        self.position = 0

    # -- low-level helpers --------------------------------------------------

    def _skip_ws(self) -> None:
        while self.position < len(self.text) and self.text[self.position] in " \t\r\n":
            self.position += 1

    def _at_word(self, word: str) -> bool:
        """Whether ``word`` starts here as a whole identifier."""
        text, pos = self.text, self.position
        if not text.startswith(word, pos):
            return False
        end = pos + len(word)
        if end < len(text) and (is_name_char(text[end]) or text[end] == ":"):
            return False
        if pos > 0 and is_name_char(text[pos - 1]):
            return False
        return True

    def _expect_word(self, word: str) -> None:
        self._skip_ws()
        if not self._at_word(word):
            raise self._error(f"expected {word!r}")
        self.position += len(word)

    def _expect_char(self, char: str) -> None:
        self._skip_ws()
        if self.position >= len(self.text) or self.text[self.position] != char:
            raise self._error(f"expected {char!r}")
        self.position += 1

    def _error(self, message: str) -> XQuerySyntaxError:
        context = self.text[self.position : self.position + 32]
        return XQuerySyntaxError(f"{message} at offset {self.position} (near {context!r})")

    def _read_variable(self) -> str:
        self._skip_ws()
        self._expect_char("$")
        start = self.position
        if start >= len(self.text) or not is_name_start(self.text[start]):
            raise self._error("expected a variable name")
        while self.position < len(self.text) and is_name_char(self.text[self.position]):
            self.position += 1
        return self.text[start : self.position]

    def _read_tag_name(self) -> str:
        start = self.position
        if start >= len(self.text) or not is_name_start(self.text[start]):
            raise self._error("expected an element name")
        while self.position < len(self.text) and is_name_char(self.text[self.position]):
            self.position += 1
        return self.text[start : self.position]

    # -- entry point ----------------------------------------------------------

    def parse(self) -> QExpr:
        expr = self.parse_sequence()
        self._skip_ws()
        if self.position < len(self.text):
            raise self._error("trailing input")
        return expr

    def parse_sequence(self) -> QExpr:
        items = [self.parse_single()]
        while True:
            self._skip_ws()
            if self.position < len(self.text) and self.text[self.position] == ",":
                self.position += 1
                items.append(self.parse_single())
            else:
                break
        if len(items) == 1:
            return items[0]
        return Sequence(tuple(items))

    # -- single expressions -------------------------------------------------------

    def parse_single(self) -> QExpr:
        self._skip_ws()
        if self._at_word("for"):
            return self._parse_for()
        if self._at_word("let"):
            return self._parse_let()
        if self._at_word("if"):
            return self._parse_if()
        if self._at_word("some") or self._at_word("every"):
            return self._parse_quantified()
        if self.position < len(self.text) and self.text[self.position] == "<" and self._looks_like_constructor():
            return self._parse_constructor()
        if self.text.startswith("()", self.position):
            self.position += 2
            return EmptySequence()
        if self.position < len(self.text) and self.text[self.position] == "(" and self._paren_contains_query():
            self._expect_char("(")
            inner = self.parse_sequence()
            self._expect_char(")")
            return inner
        return self._parse_xpath_island()

    def _looks_like_constructor(self) -> bool:
        # '<' begins a constructor only when followed by a name start
        # (otherwise it is a comparison operator — but a comparison never
        # *starts* an expression, so '<name' here is always a constructor).
        nxt = self.text[self.position + 1 : self.position + 2]
        return bool(nxt) and is_name_start(nxt)

    def _paren_contains_query(self) -> bool:
        """A parenthesised group is parsed as an XQuery sequence only when
        it directly contains FLWOR/if/constructor syntax; otherwise the
        whole group (with any operator continuation: ``(a|b)/c``) is an
        XPath island."""
        depth = 0
        position = self.position
        text = self.text
        while position < len(text):
            char = text[position]
            if char in "'\"":
                closing = text.find(char, position + 1)
                if closing == -1:
                    return False
                position = closing + 1
                continue
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0:
                    # Continuation after the group => XPath island.
                    rest = text[position + 1 :].lstrip()
                    return not rest or rest[0] in "),}" or _starts_keyword(rest)
            elif char == "<" and position + 1 < len(text) and is_name_start(text[position + 1]):
                return True
            elif depth >= 1:
                for keyword in ("for", "let", "if", "return"):
                    if text.startswith(keyword, position):
                        end = position + len(keyword)
                        before_ok = position == 0 or not is_name_char(text[position - 1])
                        after_ok = end >= len(text) or not (is_name_char(text[end]))
                        if before_ok and after_ok:
                            return True
            position += 1
        return False

    def _parse_for(self) -> QExpr:
        return self._parse_flwor()

    def _parse_let(self) -> QExpr:
        return self._parse_flwor()

    def _parse_flwor(self) -> QExpr:
        """FLWOR: (for | let)+ clauses in any interleaving, an optional
        where, and the return."""
        clauses: list[tuple[str, str, QExpr]] = []
        while True:
            self._skip_ws()
            if self._at_word("for"):
                self._expect_word("for")
                while True:
                    variable = self._read_variable()
                    self._expect_word("in")
                    clauses.append(("for", variable, self.parse_single()))
                    self._skip_ws()
                    if self.position < len(self.text) and self.text[self.position] == ",":
                        self.position += 1
                        continue
                    break
            elif self._at_word("let"):
                self._expect_word("let")
                while True:
                    variable = self._read_variable()
                    self._skip_ws()
                    if self.text.startswith(":=", self.position):
                        self.position += 2
                    else:
                        raise self._error("expected ':=' in let clause")
                    clauses.append(("let", variable, self.parse_single()))
                    self._skip_ws()
                    if self.position < len(self.text) and self.text[self.position] == ",":
                        self.position += 1
                        continue
                    break
            else:
                break
        if not clauses:
            raise self._error("expected a for or let clause")
        condition = None
        self._skip_ws()
        if self._at_word("where"):
            self._expect_word("where")
            condition = self.parse_single()
        self._skip_ws()
        if self._at_word("order"):
            return self._finish_order_by(clauses, condition)
        self._expect_word("return")
        body = self.parse_single()
        if condition is not None:
            body = IfExpr(condition, body, EmptySequence())
        for kind, variable, expr in reversed(clauses):
            if kind == "for":
                body = ForExpr(variable, expr, body)
            else:
                body = LetExpr(variable, expr, body)
        return body

    def _finish_order_by(self, clauses, condition) -> QExpr:
        """``order by`` — supported for the common shape of one leading
        ``for`` clause followed by ``let`` clauses (XMark Q19 etc.)."""
        from repro.xquery.ast import OrderByExpr

        self._expect_word("order")
        self._expect_word("by")
        key = self.parse_single()
        descending = False
        self._skip_ws()
        if self._at_word("descending"):
            self._expect_word("descending")
            descending = True
        elif self._at_word("ascending"):
            self._expect_word("ascending")
        self._expect_word("return")
        body = self.parse_single()
        if not clauses or clauses[0][0] != "for" or any(k == "for" for k, _, _ in clauses[1:]):
            raise self._error(
                "order by is supported for FLWORs with one leading for clause"
            )
        _, variable, source = clauses[0]
        lets = tuple((name, value) for kind, name, value in clauses[1:])
        return OrderByExpr(variable, source, lets, condition, key, descending, body)

    def _parse_quantified(self) -> QExpr:
        from repro.xquery.ast import QuantifiedExpr

        every = self._at_word("every")
        self._expect_word("every" if every else "some")
        variable = self._read_variable()
        self._expect_word("in")
        source = self.parse_single()
        self._expect_word("satisfies")
        condition = self.parse_single()
        return QuantifiedExpr(every, variable, source, condition)

    def _parse_if(self) -> QExpr:
        self._expect_word("if")
        self._expect_char("(")
        condition = self.parse_sequence()
        self._expect_char(")")
        self._expect_word("then")
        then_branch = self.parse_single()
        self._expect_word("else")
        else_branch = self.parse_single()
        return IfExpr(condition, then_branch, else_branch)

    # -- element constructors --------------------------------------------------------

    def _parse_constructor(self) -> ElementConstructor:
        self._expect_char("<")
        tag = self._read_tag_name()
        attributes: list[tuple[str, AttributeValue]] = []
        while True:
            self._skip_ws()
            if self.text.startswith("/>", self.position):
                self.position += 2
                return ElementConstructor(tag, tuple(attributes), ())
            if self.position < len(self.text) and self.text[self.position] == ">":
                self.position += 1
                break
            name = self._read_tag_name()
            self._expect_char("=")
            self._skip_ws()
            attributes.append((name, self._parse_attribute_value()))
        content = self._parse_constructor_content(tag)
        return ElementConstructor(tag, tuple(attributes), tuple(content))

    def _parse_attribute_value(self) -> AttributeValue:
        if self.position >= len(self.text) or self.text[self.position] not in "'\"":
            raise self._error("expected a quoted attribute value")
        quote = self.text[self.position]
        self.position += 1
        parts: list = []
        literal: list[str] = []
        while True:
            if self.position >= len(self.text):
                raise self._error("unterminated attribute value")
            char = self.text[self.position]
            if char == quote:
                self.position += 1
                if literal:
                    parts.append("".join(literal))
                return AttributeValue(tuple(parts))
            if char == "{":
                if literal:
                    parts.append("".join(literal))
                    literal = []
                self.position += 1
                parts.append(self.parse_sequence())
                self._expect_char("}")
            else:
                literal.append(char)
                self.position += 1

    def _parse_constructor_content(self, tag: str) -> list:
        content: list = []
        literal: list[str] = []

        def flush() -> None:
            if literal:
                text = "".join(literal)
                if text.strip():
                    content.append(text)
                literal.clear()

        while True:
            if self.position >= len(self.text):
                raise self._error(f"unterminated <{tag}> constructor")
            char = self.text[self.position]
            if char == "{":
                flush()
                self.position += 1
                content.append(self.parse_sequence())
                self._expect_char("}")
            elif self.text.startswith(f"</", self.position):
                flush()
                self.position += 2
                closing = self._read_tag_name()
                if closing != tag:
                    raise self._error(f"mismatched </{closing}>, expected </{tag}>")
                self._expect_char(">")
                return content
            elif char == "<":
                flush()
                content.append(self._parse_constructor())
            else:
                literal.append(char)
                self.position += 1

    # -- XPath islands -----------------------------------------------------------------

    def _parse_xpath_island(self) -> QExpr:
        chunk = self._scan_expression_chunk()
        if not chunk.strip():
            raise self._error("expected an expression")
        try:
            return parse_xpath(chunk)
        except Exception as exc:
            raise XQuerySyntaxError(f"in XPath fragment {chunk!r}: {exc}") from exc

    def _scan_expression_chunk(self) -> str:
        """Consume a maximal plain-XPath region: up to an unbalanced
        closing bracket, a top-level comma/brace, or a stopping keyword."""
        text = self.text
        start = self.position
        depth = 0
        position = start
        while position < len(text):
            char = text[position]
            if char in "'\"":
                closing = text.find(char, position + 1)
                if closing == -1:
                    raise self._error("unterminated string literal")
                position = closing + 1
                continue
            if char in "([":
                depth += 1
            elif char in ")]":
                if depth == 0:
                    break
                depth -= 1
            elif depth == 0:
                if char in ",}{":
                    break
                if char == "<" and position + 1 < len(text) and is_name_start(text[position + 1]):
                    # '<' starting a constructor can only follow an
                    # operator; inside an island it is always comparison,
                    # except at the very start (handled by parse_single).
                    pass
                if is_name_start(char) and (position == start or not is_name_char(text[position - 1])):
                    for keyword in _KEYWORDS_STOPPING_EXPR:
                        if text.startswith(keyword, position):
                            end = position + len(keyword)
                            if end >= len(text) or not is_name_char(text[end]):
                                # Word operators that *continue* an
                                # expression are not stops ('in' is: FLWOR
                                # handles bindings before islands).
                                if keyword not in ("and", "or", "div", "mod"):
                                    self.position = position
                                    return text[start:position]
            position += 1
        self.position = position
        return text[start:position]


def parse_xquery(text: str) -> QExpr:
    """Parse an XQuery FLWR-core query."""
    parser = XQueryParser(text)
    return parser.parse()
