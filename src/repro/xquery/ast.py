"""AST for the XQuery FLWR core of Section 5.

The grammar (paper, Section 5)::

    q ::= () | AExp | q, q | <tag>q</tag> | x | Q | x/Q | /Q
        | if Exp then q else q
        | for x in q return q
        | let x := q return q

Plain expressions (paths, comparisons, function calls, literals,
variables) reuse the XPath AST (:mod:`repro.xpath.ast`) — a ``VariableRef``
or variable-rooted ``PathExpr`` is exactly the paper's ``x`` / ``x/Q``.
Only the XQuery-specific forms get nodes here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.xpath import ast as xp

QExpr = Union[
    xp.Expr,
    "EmptySequence",
    "Sequence",
    "ElementConstructor",
    "IfExpr",
    "ForExpr",
    "LetExpr",
    "QuantifiedExpr",
    "OrderByExpr",
]


@dataclass(frozen=True, slots=True)
class EmptySequence:
    """``()``."""

    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True, slots=True)
class Sequence:
    """``q1, q2, ...``."""

    items: tuple[QExpr, ...]

    def __str__(self) -> str:
        return "(" + ", ".join(str(item) for item in self.items) + ")"


@dataclass(frozen=True, slots=True)
class AttributeValue:
    """A constructor attribute value: literal text mixed with enclosed
    expressions, e.g. ``name="{$p/name} esq."``."""

    parts: tuple[Union[str, QExpr], ...]

    def __str__(self) -> str:
        rendered = []
        for part in self.parts:
            rendered.append(part if isinstance(part, str) else "{" + str(part) + "}")
        return "".join(rendered)


@dataclass(frozen=True, slots=True)
class ElementConstructor:
    """``<tag attr="...">content</tag>``; content interleaves literal text
    (str) and enclosed expressions (QExpr)."""

    tag: str
    attributes: tuple[tuple[str, AttributeValue], ...] = ()
    content: tuple[Union[str, QExpr], ...] = ()

    def __str__(self) -> str:
        attrs = "".join(f' {name}="{value}"' for name, value in self.attributes)
        body = "".join(
            part if isinstance(part, str) else "{" + str(part) + "}" for part in self.content
        )
        return f"<{self.tag}{attrs}>{body}</{self.tag}>"


@dataclass(frozen=True, slots=True)
class IfExpr:
    """``if (cond) then q1 else q2``."""

    condition: QExpr
    then_branch: QExpr
    else_branch: QExpr

    def __str__(self) -> str:
        return f"if ({self.condition}) then {self.then_branch} else {self.else_branch}"


@dataclass(frozen=True, slots=True)
class ForExpr:
    """``for $var in source return body`` (where-clauses are desugared to
    an ``if`` in the body by the parser)."""

    variable: str
    source: QExpr
    body: QExpr

    def __str__(self) -> str:
        return f"for ${self.variable} in {self.source} return {self.body}"


@dataclass(frozen=True, slots=True)
class LetExpr:
    """``let $var := value return body``."""

    variable: str
    value: QExpr
    body: QExpr

    def __str__(self) -> str:
        return f"let ${self.variable} := {self.value} return {self.body}"


@dataclass(frozen=True, slots=True)
class QuantifiedExpr:
    """``some $var in source satisfies condition`` (or ``every``)."""

    every: bool
    variable: str
    source: QExpr
    condition: QExpr

    def __str__(self) -> str:
        kind = "every" if self.every else "some"
        return f"{kind} ${self.variable} in {self.source} satisfies {self.condition}"


@dataclass(frozen=True, slots=True)
class OrderByExpr:
    """A single-``for`` FLWOR with an ``order by`` clause::

        for $var in source (let $v := e)* (where cond)?
        order by key (descending)? return body

    ``lets`` are per-iteration bindings evaluated before the condition and
    the key.
    """

    variable: str
    source: QExpr
    lets: tuple[tuple[str, QExpr], ...]
    condition: QExpr | None
    key: QExpr
    descending: bool
    body: QExpr

    def __str__(self) -> str:
        lets = "".join(f" let ${name} := {value}" for name, value in self.lets)
        where = f" where {self.condition}" if self.condition is not None else ""
        order = f" order by {self.key}" + (" descending" if self.descending else "")
        return f"for ${self.variable} in {self.source}{lets}{where}{order} return {self.body}"


def free_variables(expr: QExpr) -> frozenset[str]:
    """Variables occurring free in a query expression."""
    if isinstance(expr, EmptySequence):
        return frozenset()
    if isinstance(expr, Sequence):
        result: frozenset[str] = frozenset()
        for item in expr.items:
            result |= free_variables(item)
        return result
    if isinstance(expr, ElementConstructor):
        result = frozenset()
        for _, value in expr.attributes:
            for part in value.parts:
                if not isinstance(part, str):
                    result |= free_variables(part)
        for part in expr.content:
            if not isinstance(part, str):
                result |= free_variables(part)
        return result
    if isinstance(expr, IfExpr):
        return (
            free_variables(expr.condition)
            | free_variables(expr.then_branch)
            | free_variables(expr.else_branch)
        )
    if isinstance(expr, ForExpr):
        return free_variables(expr.source) | (free_variables(expr.body) - {expr.variable})
    if isinstance(expr, LetExpr):
        return free_variables(expr.value) | (free_variables(expr.body) - {expr.variable})
    if isinstance(expr, QuantifiedExpr):
        return free_variables(expr.source) | (free_variables(expr.condition) - {expr.variable})
    if isinstance(expr, OrderByExpr):
        bound = {expr.variable}
        result = free_variables(expr.source)
        for name, value in expr.lets:
            result |= free_variables(value) - bound
            bound.add(name)
        if expr.condition is not None:
            result |= free_variables(expr.condition) - bound
        result |= free_variables(expr.key) - bound
        result |= free_variables(expr.body) - bound
        return result
    return _xpath_free_variables(expr)


def _xpath_free_variables(expr: xp.Expr) -> frozenset[str]:
    if isinstance(expr, xp.VariableRef):
        return frozenset((expr.name,))
    if isinstance(expr, xp.LocationPath):
        result: frozenset[str] = frozenset()
        for step in expr.steps:
            for predicate in step.predicates:
                result |= _xpath_free_variables(predicate)
        return result
    if isinstance(expr, xp.PathExpr):
        result = _xpath_free_variables(expr.source)
        for step in expr.steps:
            for predicate in step.predicates:
                result |= _xpath_free_variables(predicate)
        return result
    if isinstance(expr, xp.FilterExpr):
        result = _xpath_free_variables(expr.primary)
        for predicate in expr.predicates:
            result |= _xpath_free_variables(predicate)
        return result
    if isinstance(expr, (xp.OrExpr, xp.AndExpr)):
        return _xpath_free_variables(expr.left) | _xpath_free_variables(expr.right)
    if isinstance(expr, (xp.BinaryExpr, xp.UnionExpr)):
        return _xpath_free_variables(expr.left) | _xpath_free_variables(expr.right)
    if isinstance(expr, xp.UnaryMinus):
        return _xpath_free_variables(expr.operand)
    if isinstance(expr, xp.FunctionCall):
        result = frozenset()
        for arg in expr.args:
            result |= _xpath_free_variables(arg)
        return result
    return frozenset()
