"""Resource governance: bounds on what one parse/prune pass may consume.

The paper's pruning pass is "bufferless" on well-behaved inputs, but a
service pruning documents from untrusted sources must also survive hostile
ones — pathological nesting, multi-megabyte attribute values, unbalanced
tags, truncated or endless streams — without unbounded memory or hangs.
This module is the configuration surface for that hardening:

* :class:`Limits` — an immutable bundle of bounds (max element depth, max
  token size, max input/output size, wall-clock deadline).  Three named
  profiles ship with the library: :meth:`Limits.default` (generous bounds
  that only pathological inputs trip — what :class:`repro.api.PruneOptions`
  uses when no limits are given), :meth:`Limits.strict` (service-grade
  bounds for untrusted input) and :meth:`Limits.off` (no bounds — the
  pre-limits behaviour, bit for bit).
* :class:`LimitGuard` — the per-pass runtime enforcing a :class:`Limits`:
  the scanner, parser and both pruners call into it at token and element
  boundaries; violations raise the structured
  :class:`~repro.errors.LimitExceeded` / :class:`~repro.errors.DeadlineExceeded`
  errors, never a crash or a hang.

Sizes are measured in *characters* of decoded text, matching the
scanner's ``chars_consumed`` accounting (exact UTF-8 byte counts would
require re-encoding every token; character counts bound the same quantity
and are free).  A guard is created per pass — the deadline clock starts
when the pass starts — and is ``None`` when every bound is off, so the
unlimited path costs nothing.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass

from repro.errors import DeadlineExceeded, LimitExceeded

__all__ = ["DEFAULT_LIMITS", "OFF_LIMITS", "STRICT_LIMITS", "LimitGuard", "Limits"]


@dataclass(slots=True, frozen=True)
class Limits:
    """Bounds for one parse/prune pass; ``None`` disables a bound.

    * ``max_depth`` — maximum element nesting depth (kept *or* pruned:
      bulk-skipped subtrees count too, so a hostile document cannot hide
      pathological nesting inside a discarded region);
    * ``max_token_bytes`` — maximum size of one lexical token: a tag with
      its attributes, one text run, a comment, a CDATA section;
    * ``max_input_bytes`` / ``max_output_bytes`` — total input consumed /
      output produced by the pass;
    * ``deadline`` — wall-clock seconds the pass may run for.
    """

    max_depth: int | None = None
    max_token_bytes: int | None = None
    max_input_bytes: int | None = None
    max_output_bytes: int | None = None
    deadline: float | None = None

    @property
    def unbounded(self) -> bool:
        """True when every bound is off (no guard needs to run)."""
        return (
            self.max_depth is None
            and self.max_token_bytes is None
            and self.max_input_bytes is None
            and self.max_output_bytes is None
            and self.deadline is None
        )

    def replace(self, **overrides) -> "Limits":
        """A copy with the given bounds replaced."""
        return dataclasses.replace(self, **overrides)

    def guard(self) -> "LimitGuard | None":
        """A fresh runtime guard for one pass (``None`` when unbounded —
        callers skip every check with a single ``is None`` test)."""
        return None if self.unbounded else LimitGuard(self)

    def intersect(self, other: "Limits") -> "Limits":
        """The tighter of each bound — how the projection service clamps
        a client-requested :class:`Limits` to its own profile (a client
        may tighten the server's bounds, never relax them)."""
        def tighter(a, b):
            if a is None:
                return b
            if b is None:
                return a
            return min(a, b)

        return Limits(
            max_depth=tighter(self.max_depth, other.max_depth),
            max_token_bytes=tighter(self.max_token_bytes, other.max_token_bytes),
            max_input_bytes=tighter(self.max_input_bytes, other.max_input_bytes),
            max_output_bytes=tighter(self.max_output_bytes, other.max_output_bytes),
            deadline=tighter(self.deadline, other.deadline),
        )

    # -- wire form (the service protocol ships limits as JSON) ------------

    def as_dict(self) -> dict:
        """JSON-safe form: only the bounds that are set."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
            if getattr(self, field.name) is not None
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Limits":
        """Rebuild from :meth:`as_dict` output (unknown keys rejected)."""
        names = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown limits field(s): {sorted(unknown)}")
        return cls(**data)

    # -- named profiles ---------------------------------------------------

    @classmethod
    def off(cls) -> "Limits":
        return OFF_LIMITS

    @classmethod
    def default(cls) -> "Limits":
        return DEFAULT_LIMITS

    @classmethod
    def strict(cls) -> "Limits":
        return STRICT_LIMITS

    @classmethod
    def profile(cls, name: str) -> "Limits":
        """Look up a named profile (``"strict"``, ``"default"``, ``"off"``)."""
        try:
            return _PROFILES[name]
        except KeyError:
            raise ValueError(
                f"unknown limits profile {name!r} "
                f"(expected one of {sorted(_PROFILES)})"
            ) from None


#: No bounds at all: byte-identical to the pre-limits pipeline.
OFF_LIMITS = Limits()

#: What :class:`repro.api.PruneOptions` applies when no limits are given.
#: Generous enough that only pathological documents trip it: real-world
#: XML rarely nests past a few hundred levels (the pipeline is iterative,
#: so depth costs linear memory, not stack), and a 16M-character token is
#: far beyond any sane tag, attribute or comment.
DEFAULT_LIMITS = Limits(max_depth=10_000, max_token_bytes=16 << 20)

#: Service-grade bounds for documents from untrusted sources.
STRICT_LIMITS = Limits(
    max_depth=128,
    max_token_bytes=1 << 20,
    max_input_bytes=256 << 20,
    max_output_bytes=256 << 20,
    deadline=30.0,
)

_PROFILES = {"off": OFF_LIMITS, "default": DEFAULT_LIMITS, "strict": STRICT_LIMITS}


def resolve_limits(limits: "Limits | str | None") -> Limits:
    """Normalise a limits spec: ``None`` means the default profile, a
    string names a profile, a :class:`Limits` passes through."""
    if limits is None:
        return DEFAULT_LIMITS
    if isinstance(limits, str):
        return Limits.profile(limits)
    return limits


class LimitGuard:
    """Runtime enforcement of one :class:`Limits` for one pass.

    Hot-loop discipline: every check is a couple of attribute loads and an
    integer compare; the deadline is only consulted on buffer refills and
    every :data:`TICK_EVERY` structural tokens (string sources never
    refill, so the tick path is what bounds their wall clock).
    """

    TICK_EVERY = 512

    __slots__ = (
        "limits",
        "max_depth",
        "max_token",
        "max_input",
        "max_output",
        "deadline_at",
        "_input",
        "_output",
        "_ticks",
    )

    def __init__(self, limits: Limits) -> None:
        self.limits = limits
        self.max_depth = limits.max_depth
        self.max_token = limits.max_token_bytes
        self.max_input = limits.max_input_bytes
        self.max_output = limits.max_output_bytes
        self.deadline_at = (
            time.monotonic() + limits.deadline if limits.deadline is not None else None
        )
        self._input = 0
        self._output = 0
        self._ticks = 0

    # -- wall clock -------------------------------------------------------

    def check_deadline(self) -> None:
        if self.deadline_at is not None and time.monotonic() > self.deadline_at:
            raise DeadlineExceeded(self.limits.deadline)

    def tick(self) -> None:
        """Cheap periodic deadline check for token-granularity loops."""
        if self.deadline_at is None:
            return
        self._ticks += 1
        if self._ticks >= self.TICK_EVERY:
            self._ticks = 0
            self.check_deadline()

    # -- sizes ------------------------------------------------------------

    def add_input(self, chars: int) -> None:
        """Account for ``chars`` characters read from the source (called
        per chunk refill, and once up front for string sources)."""
        self._input += chars
        if self.max_input is not None and self._input > self.max_input:
            raise LimitExceeded("input_bytes", self._input, self.max_input)
        self.check_deadline()

    def add_output(self, chars: int) -> None:
        """Account for ``chars`` characters written to the sink."""
        self._output += chars
        if self.max_output is not None and self._output > self.max_output:
            raise LimitExceeded("output_bytes", self._output, self.max_output)

    def check_token(self, chars: int) -> None:
        if self.max_token is not None and chars > self.max_token:
            raise LimitExceeded("token_bytes", chars, self.max_token)

    def check_depth(self, depth: int) -> None:
        if self.max_depth is not None and depth > self.max_depth:
            raise LimitExceeded("depth", depth, self.max_depth)

    def rewind(self) -> None:
        """Reset the size counters for a fallback re-run of the same pass
        (the deadline keeps running: wall clock is per *call*, and a
        retry must not double the time budget)."""
        self._input = 0
        self._output = 0
