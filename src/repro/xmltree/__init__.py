"""XML substrate: data model, streaming parser, builder and serializer.

This package is self-contained (no external XML library): it implements the
XQuery data model fragment of the paper's Section 2.1 together with the
plumbing every other subsystem uses — the DTD validator, the XPath/XQuery
evaluators, the static analysis and, centrally, the streaming pruner.
"""

from repro.xmltree.builder import (
    TreeBuilder,
    build_tree,
    parse_document,
    parse_document_with_doctype,
)
from repro.xmltree.events import (
    Characters,
    Comment,
    Doctype,
    EndDocument,
    EndElement,
    Event,
    ProcessingInstruction,
    StartDocument,
    StartElement,
)
from repro.xmltree.nodes import Document, Element, Node, Text, is_projection_of
from repro.xmltree.parser import parse_events
from repro.xmltree.serializer import serialize, write_document, write_events

__all__ = [
    "Characters",
    "Comment",
    "Doctype",
    "Document",
    "Element",
    "EndDocument",
    "EndElement",
    "Event",
    "Node",
    "ProcessingInstruction",
    "StartDocument",
    "StartElement",
    "Text",
    "TreeBuilder",
    "build_tree",
    "is_projection_of",
    "parse_document",
    "parse_document_with_doctype",
    "parse_events",
    "serialize",
    "write_document",
    "write_events",
]
