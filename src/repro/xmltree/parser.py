"""Streaming XML parser: characters in, :mod:`~repro.xmltree.events` out.

The parser implements the well-formedness subset of XML 1.0 that the
paper's data model needs: elements, attributes, character data, CDATA
sections, comments, processing instructions, an XML declaration, a DOCTYPE
declaration (whose internal subset is captured verbatim for the DTD
parser), and the five predefined entities plus numeric character
references.

It is a generator: ``parse_events(source)`` yields events as the input is
consumed, reading the source in bounded chunks.  Consumers that need a tree
use :func:`repro.xmltree.builder.build_tree`; consumers that need constant
memory (the streaming pruner) work directly on the event stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.errors import XMLSyntaxError

if TYPE_CHECKING:  # pragma: no cover
    from repro.limits import LimitGuard
from repro.xmltree.events import (
    Characters,
    Comment,
    Doctype,
    EndDocument,
    EndElement,
    Event,
    ProcessingInstruction,
    StartDocument,
    StartElement,
)
from repro.xmltree.lexer import Scanner, Source

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "apos": "'",
    "quot": '"',
}


def expand_entities(raw: str, scanner: Scanner | None = None) -> str:
    """Expand predefined and numeric character references in ``raw``."""
    if "&" not in raw:
        return raw
    pieces: list[str] = []
    position = 0
    while True:
        amp = raw.find("&", position)
        if amp == -1:
            pieces.append(raw[position:])
            return "".join(pieces)
        pieces.append(raw[position:amp])
        semi = raw.find(";", amp + 1)
        if semi == -1:
            raise _entity_error(f"unterminated entity reference near {raw[amp:amp+12]!r}", scanner)
        name = raw[amp + 1 : semi]
        pieces.append(_expand_one(name, scanner))
        position = semi + 1


def expand_entity(name: str, scanner: Scanner | None = None) -> str:
    """Expand one entity/character reference name (without ``&``/``;``)."""
    return _expand_one(name, scanner)


def _expand_one(name: str, scanner: Scanner | None) -> str:
    if name.startswith("#x") or name.startswith("#X"):
        try:
            return chr(int(name[2:], 16))
        except ValueError:
            raise _entity_error(f"bad character reference &{name};", scanner) from None
    if name.startswith("#"):
        try:
            return chr(int(name[1:]))
        except ValueError:
            raise _entity_error(f"bad character reference &{name};", scanner) from None
    try:
        return _PREDEFINED_ENTITIES[name]
    except KeyError:
        raise _entity_error(f"unknown entity &{name};", scanner) from None


def _entity_error(message: str, scanner: Scanner | None) -> XMLSyntaxError:
    if scanner is not None:
        return scanner.error(message)
    return XMLSyntaxError(message)


class EventParser:
    """Pull parser over a :class:`Scanner`.

    Use via the module-level :func:`parse_events` in most cases.
    """

    def __init__(
        self,
        source: "Source | Scanner",
        chunk_size: int = 1 << 16,
        guard: "LimitGuard | None" = None,
    ) -> None:
        if isinstance(source, Scanner):
            self._scanner = source
            self._guard = guard if guard is not None else source.guard
        else:
            self._scanner = Scanner(source, chunk_size, guard=guard)
            self._guard = guard
        self._open_tags: list[str] = []
        self._seen_root = False

    # -- main loop --------------------------------------------------------

    def events(self) -> Iterator[Event]:
        scanner = self._scanner
        guard = self._guard
        yield self._parse_prolog()
        while True:
            if guard is not None:
                guard.tick()
            if not self._open_tags:
                scanner.skip_whitespace()
                if scanner.at_eof():
                    break
            elif scanner.at_eof():
                raise scanner.error(f"unclosed element <{self._open_tags[-1]}>")
            if scanner.peek() != "<":
                yield from self._parse_text()
                continue
            event = self._parse_markup()
            if event is not None:
                yield event
            if not self._open_tags and self._seen_root and self._at_trailer_end():
                break
        if self._open_tags:
            raise scanner.error(f"unclosed element <{self._open_tags[-1]}>")
        if not self._seen_root:
            raise scanner.error("document has no root element")
        yield EndDocument()

    def _at_trailer_end(self) -> bool:
        self._scanner.skip_whitespace()
        return self._scanner.at_eof()

    # -- prolog ------------------------------------------------------------

    def _parse_prolog(self) -> StartDocument:
        scanner = self._scanner
        version, encoding, standalone = "1.0", None, None
        if scanner.startswith("<?xml") and scanner.peek_at(5) in " \t\r\n?":
            scanner.expect("<?xml")
            declaration = scanner.read_until("?>", "XML declaration")
            attrs = _parse_pseudo_attributes(declaration, scanner)
            version = attrs.get("version", "1.0")
            encoding = attrs.get("encoding")
            if "standalone" in attrs:
                standalone = attrs["standalone"] == "yes"
        return StartDocument(version=version, encoding=encoding, standalone=standalone)

    def _parse_doctype(self) -> Doctype:
        scanner = self._scanner
        scanner.expect("DOCTYPE", "doctype declaration")
        scanner.skip_whitespace()
        name = scanner.read_name("doctype name")
        scanner.skip_whitespace()
        system_id = public_id = internal = None
        if scanner.startswith("SYSTEM"):
            scanner.expect("SYSTEM")
            scanner.skip_whitespace()
            system_id = self._parse_quoted("system identifier")
            scanner.skip_whitespace()
        elif scanner.startswith("PUBLIC"):
            scanner.expect("PUBLIC")
            scanner.skip_whitespace()
            public_id = self._parse_quoted("public identifier")
            scanner.skip_whitespace()
            system_id = self._parse_quoted("system identifier")
            scanner.skip_whitespace()
        if scanner.peek() == "[":
            scanner.advance()
            internal = scanner.read_until("]", "doctype internal subset")
            scanner.skip_whitespace()
        scanner.expect(">", "doctype declaration")
        return Doctype(name=name, system_id=system_id, public_id=public_id, internal_subset=internal)

    def _parse_quoted(self, context: str) -> str:
        scanner = self._scanner
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error(f"expected quoted {context}")
        scanner.advance()
        return scanner.read_until(quote, context)

    # -- markup ------------------------------------------------------------

    def _parse_markup(self) -> Event | None:
        scanner = self._scanner
        scanner.expect("<")
        char = scanner.peek()
        if char == "!":
            scanner.advance()
            if scanner.try_consume("--"):
                text = scanner.read_until("-->", "comment")
                if "--" in text:
                    raise scanner.error("'--' not allowed inside a comment")
                return Comment(text)
            if scanner.try_consume("[CDATA["):
                if not self._open_tags:
                    raise scanner.error("CDATA section outside the root element")
                text = scanner.read_until("]]>", "CDATA section")
                return Characters(text)
            if scanner.startswith("DOCTYPE"):
                if self._seen_root:
                    raise scanner.error("DOCTYPE after the root element")
                return self._parse_doctype()
            raise scanner.error("unrecognised markup declaration")
        if char == "?":
            scanner.advance()
            target = scanner.read_name("processing-instruction target")
            data = scanner.read_until("?>", "processing instruction").lstrip()
            return ProcessingInstruction(target, data)
        if char == "/":
            scanner.advance()
            tag = scanner.read_name("closing tag")
            scanner.skip_whitespace()
            scanner.expect(">", f"</{tag}>")
            if not self._open_tags:
                raise scanner.error(f"closing tag </{tag}> with no open element")
            expected = self._open_tags.pop()
            if expected != tag:
                raise scanner.error(f"mismatched closing tag </{tag}>, expected </{expected}>")
            return EndElement(tag)
        return self._parse_start_tag()

    def _parse_start_tag(self) -> Event:
        scanner = self._scanner
        if self._seen_root and not self._open_tags:
            raise scanner.error("multiple root elements")
        tag = scanner.read_name("element name")
        attributes: dict[str, str] = {}
        while True:
            scanner.skip_whitespace()
            char = scanner.peek()
            if char == ">":
                scanner.advance()
                self._seen_root = True
                self._open_tags.append(tag)
                if self._guard is not None:
                    self._guard.check_depth(len(self._open_tags))
                return StartElement(tag, attributes)
            if char == "/":
                scanner.advance()
                scanner.expect(">", f"<{tag}/>")
                self._seen_root = True
                # An empty-element tag is surfaced as Start followed by End
                # so downstream consumers see a uniform stream.
                return _EmptyElement(tag, attributes)
            name = scanner.read_name("attribute name")
            scanner.skip_whitespace()
            scanner.expect("=", f"attribute {name}")
            scanner.skip_whitespace()
            value = expand_entities(self._parse_quoted(f"attribute {name}"), scanner)
            if name in attributes:
                raise scanner.error(f"duplicate attribute {name!r} on <{tag}>")
            attributes[name] = value

    # -- character data -------------------------------------------------------

    def _parse_text(self) -> Iterator[Event]:
        scanner = self._scanner
        pieces: list[str] = []
        while True:
            pieces.append(scanner.read_until_any("<&"))
            char = scanner.peek()
            if char == "" or char == "<":
                break
            scanner.advance()  # '&'
            name = scanner.read_until(";", "entity reference")
            pieces.append(_expand_one(name, scanner))
        text = "".join(pieces)
        if not self._open_tags:
            if text.strip():
                raise scanner.error("character data outside the root element")
            return
        if text:
            yield Characters(text)


class _EmptyElement(StartElement):
    """Marker subclass: a start event that must be immediately followed by
    its end event.  :func:`parse_events` flattens it."""


def parse_events(
    source: "Source | Scanner",
    chunk_size: int = 1 << 16,
    guard: "LimitGuard | None" = None,
) -> Iterator[Event]:
    """Parse ``source`` (a string, text-mode file object, or prepared
    :class:`Scanner`) into a stream of events.  Empty-element tags yield a
    Start/End pair.  ``guard`` (see :mod:`repro.limits`) bounds depth,
    token size, input size and wall clock."""
    parser = EventParser(source, chunk_size, guard=guard)
    for event in parser.events():
        if isinstance(event, _EmptyElement):
            yield StartElement(event.tag, event.attributes)
            yield EndElement(event.tag)
        else:
            yield event


def _parse_pseudo_attributes(text: str, scanner: Scanner) -> dict[str, str]:
    """Parse ``name="value"`` pairs inside an XML declaration."""
    attrs: dict[str, str] = {}
    position = 0
    length = len(text)
    while True:
        while position < length and text[position] in " \t\r\n":
            position += 1
        if position >= length:
            return attrs
        equals = text.find("=", position)
        if equals == -1:
            raise scanner.error("malformed XML declaration")
        name = text[position:equals].strip()
        position = equals + 1
        while position < length and text[position] in " \t\r\n":
            position += 1
        if position >= length or text[position] not in "'\"":
            raise scanner.error("malformed XML declaration")
        quote = text[position]
        closing = text.find(quote, position + 1)
        if closing == -1:
            raise scanner.error("malformed XML declaration")
        attrs[name] = text[position + 1 : closing]
        position = closing + 1
