"""Tree construction from the event stream."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.errors import XMLSyntaxError

if TYPE_CHECKING:  # pragma: no cover
    from repro.limits import LimitGuard, Limits
from repro.obs import get_tracer
from repro.xmltree.events import (
    Characters,
    Doctype,
    EndElement,
    Event,
    StartElement,
)
from repro.xmltree.lexer import Scanner, Source
from repro.xmltree.nodes import Document, Element, Text
from repro.xmltree.parser import parse_events


class TreeBuilder:
    """Fold an event stream into a :class:`Document`.

    Adjacent character events are merged into a single text node, and —
    matching the paper's data model, where leaves are either strings or
    empty trees — purely inter-element whitespace can optionally be dropped
    (``strip_whitespace=True``), which is what the XMark tooling does.
    Comments and processing instructions are not part of the data model and
    are skipped.
    """

    def __init__(
        self,
        strip_whitespace: bool = False,
        guard: "LimitGuard | None" = None,
    ) -> None:
        self._strip_whitespace = strip_whitespace
        self._guard = guard
        self._stack: list[Element] = []
        self._root: Element | None = None
        self._text_pieces: list[str] = []
        self.doctype: Doctype | None = None

    def feed(self, event: Event) -> None:
        if isinstance(event, StartElement):
            self._flush_text()
            element = Element(event.tag, event.attributes)
            if self._stack:
                self._stack[-1].append(element)
            elif self._root is None:
                self._root = element
            else:
                raise XMLSyntaxError("multiple root elements")
            self._stack.append(element)
            if self._guard is not None:
                # Guards fed events by an already-guarded parser check
                # twice (harmless); this is for direct event-stream input.
                self._guard.check_depth(len(self._stack))
                self._guard.tick()
        elif isinstance(event, EndElement):
            self._flush_text()
            self._stack.pop()
        elif isinstance(event, Characters):
            if self._stack:
                self._text_pieces.append(event.text)
        elif isinstance(event, Doctype):
            self.doctype = event
        # StartDocument / EndDocument / Comment / PI carry no tree content.

    def _flush_text(self) -> None:
        if not self._text_pieces:
            return
        text = "".join(self._text_pieces)
        self._text_pieces.clear()
        if self._strip_whitespace and not text.strip():
            return
        self._stack[-1].append(Text(text))

    def document(self) -> Document:
        if self._root is None:
            raise XMLSyntaxError("no root element was built")
        if self._stack:
            raise XMLSyntaxError(f"unclosed element <{self._stack[-1].tag}>")
        return Document(self._root)


def build_tree(
    events: Iterable[Event],
    strip_whitespace: bool = False,
    guard: "LimitGuard | None" = None,
) -> Document:
    """Build a document from an already-parsed event stream."""
    builder = TreeBuilder(strip_whitespace=strip_whitespace, guard=guard)
    for event in events:
        builder.feed(event)
    return builder.document()


def parse_document(
    source: Source,
    strip_whitespace: bool = False,
    limits: "Limits | None" = None,
) -> Document:
    """Parse XML text (or a text-mode file object) into a document.

    ``limits`` (a :class:`repro.limits.Limits`) bounds depth, token size,
    input size and wall clock for the whole parse; ``None`` parses
    unguarded (tree building has no default limits — the pruning facade
    is the untrusted-input surface).

    When tracing is enabled (:mod:`repro.obs`) the parse reports a
    ``"parse"`` span counting events (tokens), characters consumed, and
    nodes built; the disabled path is untouched.
    """
    guard = limits.guard() if limits is not None else None
    tracer = get_tracer()
    if not tracer.enabled:
        return build_tree(
            parse_events(source, guard=guard), strip_whitespace=strip_whitespace
        )
    with tracer.span("parse") as span:
        scanner = Scanner(source, guard=guard)
        builder = TreeBuilder(strip_whitespace=strip_whitespace)
        events = 0
        for event in parse_events(scanner):
            events += 1
            builder.feed(event)
        document = builder.document()
        span.count("events", events)
        span.count("chars", scanner.chars_consumed)
        span.count("nodes", document.size())
    return document


def parse_document_with_doctype(
    source: Source, strip_whitespace: bool = False
) -> tuple[Document, Doctype | None]:
    """Like :func:`parse_document` but also return the DOCTYPE event, whose
    ``internal_subset`` feeds the DTD parser for inline DTDs."""
    builder = TreeBuilder(strip_whitespace=strip_whitespace)
    for event in parse_events(source):
        builder.feed(event)
    return builder.document(), builder.doctype
