"""XML serialization: documents or event streams back to markup text.

The streaming pruner composes ``parse_events → prune_events → write_events``
to rewrite a file with constant memory, so the serializer has both a tree
entry point (:func:`serialize`) and an event entry point
(:func:`write_events`).
"""

from __future__ import annotations

from typing import IO, Iterable, Iterator

from repro.xmltree.events import (
    Characters,
    Comment,
    EndElement,
    Event,
    ProcessingInstruction,
    StartElement,
)
from repro.xmltree.nodes import Document, Element, Node, Text


def escape_text(value: str) -> str:
    """Escape character data."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape an attribute value for double-quoted output."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
    )


def _start_tag(tag: str, attributes: dict[str, str], empty: bool) -> str:
    if attributes:
        attrs = "".join(f' {name}="{escape_attribute(value)}"' for name, value in attributes.items())
    else:
        attrs = ""
    return f"<{tag}{attrs}/>" if empty else f"<{tag}{attrs}>"


def node_markup(node: Node) -> Iterator[str]:
    """Yield markup fragments for a subtree, iteratively."""
    # Work list holds either nodes to open or closing-tag strings.
    work: list[Node | str] = [node]
    while work:
        item = work.pop()
        if isinstance(item, str):
            yield item
            continue
        if isinstance(item, Text):
            yield escape_text(item.value)
            continue
        assert isinstance(item, Element)
        if not item.children:
            yield _start_tag(item.tag, item.attributes, empty=True)
            continue
        yield _start_tag(item.tag, item.attributes, empty=False)
        work.append(f"</{item.tag}>")
        work.extend(reversed(item.children))


def serialize(document: Document | Node, declaration: bool = False) -> str:
    """Serialize a document (or bare subtree) to a string."""
    root = document.root if isinstance(document, Document) else document
    pieces: list[str] = []
    if declaration:
        pieces.append('<?xml version="1.0" encoding="UTF-8"?>\n')
    pieces.extend(node_markup(root))
    return "".join(pieces)


def write_document(document: Document, sink: IO[str], declaration: bool = True) -> int:
    """Write a document to a text sink; returns characters written."""
    written = 0
    if declaration:
        written += sink.write('<?xml version="1.0" encoding="UTF-8"?>\n')
    for piece in node_markup(document.root):
        written += sink.write(piece)
    return written


def event_markup(events: Iterable[Event]) -> Iterator[str]:
    """Convert an event stream to markup fragments.

    One event of lookahead collapses content-free Start/End pairs into
    empty-element tags, so the streamed output is byte-identical to the
    tree serializer's.
    """
    pending: StartElement | None = None
    for event in events:
        if pending is not None:
            if isinstance(event, EndElement) and event.tag == pending.tag:
                yield _start_tag(pending.tag, pending.attributes, empty=True)
                pending = None
                continue
            yield _start_tag(pending.tag, pending.attributes, empty=False)
            pending = None
        if isinstance(event, StartElement):
            pending = event
        elif isinstance(event, EndElement):
            yield f"</{event.tag}>"
        elif isinstance(event, Characters):
            yield escape_text(event.text)
        elif isinstance(event, Comment):
            yield f"<!--{event.text}-->"
        elif isinstance(event, ProcessingInstruction):
            data = f" {event.data}" if event.data else ""
            yield f"<?{event.target}{data}?>"
        # StartDocument / EndDocument / Doctype produce no output here.
    if pending is not None:
        yield _start_tag(pending.tag, pending.attributes, empty=False)


#: Flush threshold for buffered event writing: many small fragments are
#: joined into one string before hitting the sink, so the per-write cost
#: of text-mode file objects is paid once per ~64 KiB, not once per tag.
WRITE_BUFFER_SIZE = 1 << 16


def write_events(
    events: Iterable[Event],
    sink: IO[str],
    declaration: bool = True,
    buffer_size: int = WRITE_BUFFER_SIZE,
) -> int:
    """Stream an event sequence to a text sink (buffered); returns
    characters written."""
    written = 0
    if declaration:
        written += sink.write('<?xml version="1.0" encoding="UTF-8"?>\n')
    buffered: list[str] = []
    buffered_length = 0
    for piece in event_markup(events):
        buffered.append(piece)
        buffered_length += len(piece)
        if buffered_length >= buffer_size:
            written += sink.write("".join(buffered))
            buffered.clear()
            buffered_length = 0
    if buffered:
        written += sink.write("".join(buffered))
    return written
