"""Buffered character scanner used by the streaming XML parser.

The scanner reads from a string or any text-mode file object in fixed-size
chunks, so the parser built on top of it is genuinely streaming: memory
consumption is bounded by the chunk size plus the longest single token
(tag, comment, text run), never by document size.  This property is what
lets the pruner process arbitrarily large documents (Section 6 of the
paper: "on our 512MB machine we were able to efficiently prune arbitrary
large documents").
"""

from __future__ import annotations

from typing import IO, TYPE_CHECKING, Union

from repro.errors import XMLSyntaxError

if TYPE_CHECKING:  # pragma: no cover
    from repro.limits import LimitGuard

Source = Union[str, IO[str]]

DEFAULT_CHUNK_SIZE = 1 << 16

# Characters allowed to start / continue an XML name.  We implement the
# pragmatic ASCII-centric subset plus full non-ASCII passthrough, which
# covers every document the benchmarks generate and real-world DTDs.
_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-")
# All ASCII name characters, for the scanner's bulk fast path.
_NAME_CHARS_FAST = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:.-"
)


def is_name_start(char: str) -> bool:
    return char.isalpha() or char in _NAME_START_EXTRA or ord(char) > 127


def is_name_char(char: str) -> bool:
    return char.isalnum() or char in _NAME_EXTRA or ord(char) > 127


class Scanner:
    """Incremental look-ahead scanner with line/column tracking.

    The public protocol used by the parser:

    * :meth:`peek` / :meth:`advance` — single-character look-ahead;
    * :meth:`startswith` / :meth:`expect` — multi-character look-ahead;
    * :meth:`read_until` — consume up to (not including) a delimiter,
      loading more input as needed;
    * :meth:`read_name`, :meth:`skip_whitespace` — token helpers.
    """

    __slots__ = ("_source", "_buffer", "_position", "_eof", "_chunk_size", "_line", "_line_start_offset", "_consumed", "_guard")

    def __init__(
        self,
        source: Source,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        guard: "LimitGuard | None" = None,
    ) -> None:
        self._guard = guard
        if isinstance(source, str):
            self._source: IO[str] | None = None
            self._buffer = source
            self._eof = True
            # A string source is "read" in one piece: account for it up
            # front so max_input_bytes trips before any scanning begins.
            if guard is not None:
                guard.add_input(len(source))
        else:
            self._source = source
            self._buffer = ""
            self._eof = False
        self._position = 0
        self._chunk_size = chunk_size
        self._line = 1
        # Offset (in total consumed characters) where the current line began;
        # used to derive a column number for error messages.
        self._line_start_offset = 0
        self._consumed = 0  # characters dropped by buffer compaction

    @property
    def guard(self) -> "LimitGuard | None":
        """The resource guard this scanner reports to (see
        :mod:`repro.limits`); consumers built on the scanner share it."""
        return self._guard

    # -- diagnostics -----------------------------------------------------

    @property
    def line(self) -> int:
        return self._line

    @property
    def column(self) -> int:
        return self._consumed + self._position - self._line_start_offset + 1

    @property
    def chars_consumed(self) -> int:
        """Characters consumed so far — the ``bytes``-ish quantity the
        observability layer reports for parse/prune spans (exact UTF-8
        byte counts would require re-encoding; character counts track the
        same curve and are free)."""
        return self._consumed + self._position

    def error(self, message: str) -> XMLSyntaxError:
        return XMLSyntaxError(message, self._line, self.column)

    # -- buffer management ----------------------------------------------

    def _fill(self, needed: int) -> None:
        """Ensure at least ``needed`` characters are available after the
        current position, unless EOF intervenes."""
        if self._eof:
            return
        assert self._source is not None
        if self._position and self._position >= len(self._buffer):
            # Fully-consumed buffer: drop it before refilling so the
            # ``+=`` below binds the fresh chunk directly (CPython returns
            # the chunk itself when concatenating onto ``""``) instead of
            # copying the dead prefix along with it.  Diagnostics only
            # depend on ``consumed + position``, which is preserved.
            self._consumed += self._position
            self._buffer = ""
            self._position = 0
        while len(self._buffer) - self._position < needed:
            chunk = self._source.read(self._chunk_size)
            if not chunk:
                self._eof = True
                return
            if self._guard is not None:
                # Per-refill: input-size accounting plus the deadline
                # check (streams can be endless; every chunk is a chance
                # to stop).
                self._guard.add_input(len(chunk))
            self._buffer += chunk

    def _compact(self) -> None:
        """Drop already-consumed characters so the buffer stays small."""
        if self._position > self._chunk_size:
            self._consumed += self._position
            self._buffer = self._buffer[self._position :]
            self._position = 0

    def _count_newlines(self, text: str) -> None:
        newlines = text.count("\n")
        if newlines:
            self._line += newlines
            # Column restarts after the last newline in the consumed text.
            last = text.rfind("\n")
            self._line_start_offset = self._consumed + self._position + last + 1

    # -- single character protocol ----------------------------------------

    def at_eof(self) -> bool:
        self._fill(1)
        return self._position >= len(self._buffer)

    def peek(self) -> str:
        """The next character, or '' at end of input."""
        self._fill(1)
        if self._position >= len(self._buffer):
            return ""
        return self._buffer[self._position]

    def peek_at(self, offset: int) -> str:
        self._fill(offset + 1)
        index = self._position + offset
        if index >= len(self._buffer):
            return ""
        return self._buffer[index]

    def advance(self) -> str:
        """Consume and return the next character ('' at end of input)."""
        self._fill(1)
        if self._position >= len(self._buffer):
            return ""
        char = self._buffer[self._position]
        self._position += 1
        if char == "\n":
            self._line += 1
            self._line_start_offset = self._consumed + self._position
        self._compact()
        return char

    # -- multi character protocol ------------------------------------------

    def startswith(self, prefix: str) -> bool:
        self._fill(len(prefix))
        return self._buffer.startswith(prefix, self._position)

    def try_consume(self, prefix: str) -> bool:
        """Consume ``prefix`` if present, returning whether it was."""
        if self.startswith(prefix):
            self._count_newlines(prefix)
            self._position += len(prefix)
            self._compact()
            return True
        return False

    def expect(self, prefix: str, context: str = "") -> None:
        if not self.try_consume(prefix):
            where = f" in {context}" if context else ""
            found = self._buffer[self._position : self._position + 12]
            raise self.error(f"expected {prefix!r}{where}, found {found!r}")

    def read_until(self, delimiter: str, context: str = "") -> str:
        """Consume and return everything up to ``delimiter``; the delimiter
        itself is consumed but not returned."""
        pieces: list[str] = []
        total = 0
        guard = self._guard
        while True:
            index = self._buffer.find(delimiter, self._position)
            if index != -1:
                text = self._buffer[self._position : index]
                if guard is not None:
                    guard.check_token(total + len(text))
                self._count_newlines(text + delimiter)
                self._position = index + len(delimiter)
                self._compact()
                pieces.append(text)
                return "".join(pieces)
            if self._eof:
                where = f" in {context}" if context else ""
                raise self.error(f"unexpected end of input looking for {delimiter!r}{where}")
            # Keep a delimiter-sized tail in case it straddles a chunk edge.
            keep = len(delimiter) - 1
            cut = max(self._position, len(self._buffer) - keep)
            text = self._buffer[self._position : cut]
            if text:
                self._count_newlines(text)
                pieces.append(text)
                self._position = cut
                if guard is not None:
                    # In-loop check: bound the accumulation itself, not
                    # just the joined result — a stream source must not
                    # buffer an over-limit token before refusing it.
                    total += len(text)
                    guard.check_token(total)
            # Progress is measured in absolute stream offset: _fill may
            # drop the consumed prefix (and _compact shifts it), so the
            # buffer length alone can stay equal while new data arrived.
            before = self._consumed + len(self._buffer)
            self._fill(len(self._buffer) - self._position + self._chunk_size)
            self._compact()
            if self._consumed + len(self._buffer) == before and self._eof:
                where = f" in {context}" if context else ""
                raise self.error(f"unexpected end of input looking for {delimiter!r}{where}")

    def read_until_any(self, delimiters: str) -> str:
        """Consume and return everything up to (not including) the nearest
        of ``delimiters``; stops at end of input.  Bulk operation — this is
        the hot path for character data."""
        pieces: list[str] = []
        total = 0
        guard = self._guard
        while True:
            best = -1
            for delimiter in delimiters:
                index = self._buffer.find(delimiter, self._position)
                if index != -1 and (best == -1 or index < best):
                    best = index
            if best != -1:
                text = self._buffer[self._position : best]
                if guard is not None:
                    guard.check_token(total + len(text))
                self._count_newlines(text)
                self._position = best
                self._compact()
                pieces.append(text)
                return "".join(pieces)
            text = self._buffer[self._position :]
            if text:
                self._count_newlines(text)
                pieces.append(text)
                self._position = len(self._buffer)
                if guard is not None:
                    total += len(text)
                    guard.check_token(total)
            if self._eof:
                return "".join(pieces)
            before = len(self._buffer)
            self._fill(self._chunk_size)
            self._compact()
            if len(self._buffer) - self._position == 0 and self._eof:
                return "".join(pieces)

    def skip_until(self, delimiter: str, context: str = "") -> None:
        """:meth:`read_until` without materialising the skipped text — the
        bulk path used when pruning discards a region wholesale."""
        while True:
            index = self._buffer.find(delimiter, self._position)
            if index != -1:
                self._count_newlines(self._buffer[self._position : index] + delimiter)
                self._position = index + len(delimiter)
                self._compact()
                return
            if self._eof:
                where = f" in {context}" if context else ""
                raise self.error(f"unexpected end of input looking for {delimiter!r}{where}")
            # Keep a delimiter-sized tail in case it straddles a chunk edge.
            keep = len(delimiter) - 1
            cut = max(self._position, len(self._buffer) - keep)
            text = self._buffer[self._position : cut]
            if text:
                self._count_newlines(text)
                self._position = cut
            # Absolute-offset progress check (see read_until).
            before = self._consumed + len(self._buffer)
            self._fill(len(self._buffer) - self._position + self._chunk_size)
            self._compact()
            if self._consumed + len(self._buffer) == before and self._eof:
                where = f" in {context}" if context else ""
                raise self.error(f"unexpected end of input looking for {delimiter!r}{where}")

    def skip_until_any(self, delimiters: str) -> bool:
        """:meth:`read_until_any` without materialising the skipped text;
        returns whether any characters were consumed.  Stops at end of
        input."""
        skipped = False
        while True:
            best = -1
            for delimiter in delimiters:
                index = self._buffer.find(delimiter, self._position)
                if index != -1 and (best == -1 or index < best):
                    best = index
            if best != -1:
                if best > self._position:
                    self._count_newlines(self._buffer[self._position : best])
                    self._position = best
                    skipped = True
                self._compact()
                return skipped
            if len(self._buffer) > self._position:
                self._count_newlines(self._buffer[self._position :])
                self._position = len(self._buffer)
                skipped = True
            if self._eof:
                return skipped
            before = len(self._buffer)
            self._fill(self._chunk_size)
            self._compact()
            if len(self._buffer) - self._position == 0 and self._eof:
                return skipped

    def skip_text_open(self) -> tuple[bool, bool, str]:
        """Bulk helper for the fused pruner's skip loop: consume one
        character-data stretch up to the next ``<`` or ``&``.  Returns
        ``(saw_text, opened, char)`` — *opened* means a ``<`` was
        consumed and *char* is the (unconsumed) character after it;
        otherwise *char* is ``'&'`` (stopped at an entity reference, not
        consumed) or ``''`` (end of input)."""
        skipped = False
        while True:
            buffer = self._buffer
            position = self._position
            lt = buffer.find("<", position)
            amp = buffer.find("&", position)
            if amp != -1 and (lt == -1 or amp < lt):
                if amp > position:
                    self._count_newlines(buffer[position:amp])
                    self._position = amp
                    skipped = True
                    self._compact()
                return skipped, False, "&"
            if lt != -1:
                if lt > position:
                    self._count_newlines(buffer[position:lt])
                    skipped = True
                self._position = lt + 1
                self._fill(1)
                self._compact()
                buffer = self._buffer
                if self._position < len(buffer):
                    return skipped, True, buffer[self._position]
                return skipped, True, ""
            if len(buffer) > position:
                self._count_newlines(buffer[position:])
                self._position = len(buffer)
                skipped = True
            if self._eof:
                return skipped, False, ""
            self._fill(self._chunk_size)
            self._compact()
            if len(self._buffer) - self._position == 0 and self._eof:
                return skipped, False, ""

    def read_tag_content(self, context: str = "tag") -> str:
        """Consume up to and including the next *unquoted* ``>``,
        returning the text before it.  ``>`` inside a quoted attribute
        value does not terminate the tag.  Bulk operation — the fused
        pruner reads whole tags this way instead of char-by-char."""
        pieces: list[str] = []
        quote = ""
        total = 0
        guard = self._guard
        while True:
            buffer = self._buffer
            position = self._position
            if quote:
                index = buffer.find(quote, position)
                if index != -1:
                    text = buffer[position : index + 1]
                    self._count_newlines(text)
                    self._position = index + 1
                    pieces.append(text)
                    if guard is not None:
                        total += len(text)
                        guard.check_token(total)
                    quote = ""
                    continue
            else:
                gt = buffer.find(">", position)
                if gt != -1:
                    # Quote searches are bounded by the tag end.
                    dq = buffer.find('"', position, gt)
                    sq = buffer.find("'", position, gt)
                else:
                    dq = buffer.find('"', position)
                    sq = buffer.find("'", position)
                nearest_quote = dq if sq == -1 else sq if dq == -1 else min(dq, sq)
                if nearest_quote != -1:
                    text = buffer[position : nearest_quote + 1]
                    self._count_newlines(text)
                    self._position = nearest_quote + 1
                    pieces.append(text)
                    if guard is not None:
                        total += len(text)
                        guard.check_token(total)
                    quote = buffer[nearest_quote]
                    continue
                if gt != -1:
                    text = buffer[position:gt]
                    if guard is not None:
                        guard.check_token(total + len(text))
                    self._count_newlines(text)
                    self._position = gt + 1
                    self._compact()
                    pieces.append(text)
                    return "".join(pieces)
            text = buffer[position:]
            if text:
                self._count_newlines(text)
                pieces.append(text)
                self._position = len(buffer)
                if guard is not None:
                    total += len(text)
                    guard.check_token(total)
            if self._eof:
                where = f" in {context}" if context else ""
                raise self.error(f"unexpected end of input looking for '>'{where}")
            # Absolute-offset progress check (see read_until).
            before = self._consumed + len(self._buffer)
            self._fill(self._chunk_size)
            self._compact()
            if self._consumed + len(self._buffer) == before and self._eof:
                where = f" in {context}" if context else ""
                raise self.error(f"unexpected end of input looking for '>'{where}")

    def read_while(self, predicate) -> str:
        """Consume the longest prefix whose characters satisfy ``predicate``."""
        pieces: list[str] = []
        while True:
            char = self.peek()
            if not char or not predicate(char):
                return "".join(pieces)
            pieces.append(self.advance())

    # -- XML token helpers ---------------------------------------------------

    def skip_whitespace(self) -> None:
        while True:
            self._fill(1)
            buffer = self._buffer
            position = self._position
            end = len(buffer)
            start = position
            while position < end and buffer[position] in " \t\r\n":
                position += 1
            if position > start:
                self._count_newlines(buffer[start:position])
                self._position = position
                self._compact()
            if position < end or self._eof:
                return

    def read_name(self, context: str = "name") -> str:
        """Bulk name scan (names never straddle chunk edges unnoticed: the
        buffer is refilled until a non-name character or EOF is in view)."""
        self._fill(1)
        buffer = self._buffer
        position = self._position
        if position >= len(buffer) or not is_name_start(buffer[position]):
            found = buffer[position] if position < len(buffer) else ""
            raise self.error(f"expected {context}, found {found!r}")
        end = position + 1
        while True:
            length = len(buffer)
            while end < length:
                char = buffer[end]
                if char in _NAME_CHARS_FAST or (ord(char) > 127 and is_name_char(char)):
                    end += 1
                else:
                    break
            if end < length or self._eof:
                break
            self._fill(end - self._position + 1)
            if len(self._buffer) == length:
                break
            buffer = self._buffer
        if self._guard is not None:
            self._guard.check_token(end - position)
        name = buffer[position:end]
        self._position = end  # names contain no newlines
        self._compact()
        return name
