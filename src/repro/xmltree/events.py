"""SAX-like event stream vocabulary.

The streaming parser (:mod:`repro.xmltree.parser`) emits a flat sequence of
these events; the tree builder, the serializer, the validator and — most
importantly — the streaming pruner (:mod:`repro.projection.streaming`) all
consume the same stream.  This is what makes pruning "a single bufferless
one-pass traversal of the parsed document" (Section 1.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Event:
    """Base class for parse events."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class StartDocument(Event):
    """Start of the document.  ``standalone``/``encoding`` come from the
    XML declaration when present."""

    version: str = "1.0"
    encoding: str | None = None
    standalone: bool | None = None


@dataclass(frozen=True, slots=True)
class EndDocument(Event):
    """End of the document."""


@dataclass(frozen=True, slots=True)
class Doctype(Event):
    """``<!DOCTYPE name SYSTEM "uri" [internal subset]>``.

    ``internal_subset`` is the *raw text* between ``[`` and ``]`` so the
    DTD parser can consume inline DTDs without re-reading the file.
    """

    name: str
    system_id: str | None = None
    public_id: str | None = None
    internal_subset: str | None = None


@dataclass(frozen=True, slots=True)
class StartElement(Event):
    """``<tag attr="v" ...>`` (or the opening half of ``<tag/>``)."""

    tag: str
    attributes: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class EndElement(Event):
    """``</tag>`` (an empty-element tag emits Start then End)."""

    tag: str


@dataclass(frozen=True, slots=True)
class Characters(Event):
    """Text content, after entity expansion and CDATA unwrapping."""

    text: str


@dataclass(frozen=True, slots=True)
class Comment(Event):
    """``<!-- ... -->``."""

    text: str


@dataclass(frozen=True, slots=True)
class ProcessingInstruction(Event):
    """``<?target data?>``."""

    target: str
    data: str
