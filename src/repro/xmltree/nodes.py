"""In-memory XML data model.

This is the paper's data model (Section 2.1): an ordered forest of labelled
ordered trees where every node carries a unique identifier.  We extend the
formal model with attributes (the paper's implementation does too, see
Section 6) while keeping the tree/forest algebra intact.

Two node kinds exist, matching the grammar ``t ::= s_i | l_i[f]``:

* :class:`Element` — a labelled node ``l_i[f]`` with a tag, attributes and
  an ordered list of children;
* :class:`Text` — a string leaf ``s_i``.

A :class:`Document` wraps a single root element and owns the id space.
Identifiers are assigned in document order (preorder), which makes
document-order comparisons a simple integer comparison *within one
document*.  Identifiers are never reused: pruning a document produces a new
document whose nodes keep their original ids, so query answers on the
original and the pruned document can be compared by id (this is exactly the
statement of Theorem 4.5).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional


class Node:
    """Common behaviour of element and text nodes.

    Nodes are created detached; :class:`Document` (or an explicit call to
    :meth:`Element.append`) wires up parent pointers.  After a document has
    been frozen via :meth:`Document.renumber`, ids are stable and in
    document order.
    """

    __slots__ = ("node_id", "parent")

    def __init__(self) -> None:
        self.node_id: int = -1
        self.parent: Optional[Element] = None

    # -- navigation helpers shared by both node kinds ------------------

    def ancestors(self) -> Iterator["Element"]:
        """Yield proper ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def ancestors_or_self(self) -> Iterator["Node"]:
        """Yield self then proper ancestors, nearest first."""
        yield self
        yield from self.ancestors()

    def root(self) -> "Node":
        """Return the topmost node reachable through parent pointers."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def siblings_before(self) -> Iterator["Node"]:
        """Yield preceding siblings in reverse document order."""
        if self.parent is None:
            return
        children = self.parent.children
        index = children.index(self)
        for position in range(index - 1, -1, -1):
            yield children[position]

    def siblings_after(self) -> Iterator["Node"]:
        """Yield following siblings in document order."""
        if self.parent is None:
            return
        children = self.parent.children
        index = children.index(self)
        for position in range(index + 1, len(children)):
            yield children[position]

    def self_and_descendants(self) -> Iterator["Node"]:
        """Yield this node then all descendants, in document order."""
        yield self
        yield from self.descendants()

    def descendants(self) -> Iterator["Node"]:
        """Yield proper descendants in document order (empty for text)."""
        return iter(())

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here (self included)."""
        return sum(1 for _ in self.self_and_descendants())

    def text_value(self) -> str:
        """The string value: concatenation of descendant text nodes."""
        raise NotImplementedError

    def is_element(self) -> bool:
        return isinstance(self, Element)

    def is_text(self) -> bool:
        return isinstance(self, Text)


class Text(Node):
    """A text leaf ``s_i``."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        super().__init__()
        self.value = value

    def text_value(self) -> str:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = self.value if len(self.value) <= 24 else self.value[:21] + "..."
        return f"Text({preview!r}, id={self.node_id})"


class Element(Node):
    """A labelled tree node ``l_i[f]`` with attributes.

    Attributes are an ordered mapping ``name -> value``.  Children is a
    plain list; mutate it only through :meth:`append` / :meth:`extend` so
    parent pointers stay consistent.
    """

    __slots__ = ("tag", "attributes", "children")

    def __init__(
        self,
        tag: str,
        attributes: Optional[dict[str, str]] = None,
        children: Optional[Iterable[Node]] = None,
    ) -> None:
        super().__init__()
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes) if attributes else {}
        self.children: list[Node] = []
        if children is not None:
            self.extend(children)

    # -- construction ---------------------------------------------------

    def append(self, child: Node) -> Node:
        """Append ``child`` and set its parent pointer.  Returns it."""
        child.parent = self
        self.children.append(child)
        return child

    def extend(self, children: Iterable[Node]) -> None:
        for child in children:
            self.append(child)

    # -- navigation -----------------------------------------------------

    def descendants(self) -> Iterator[Node]:
        """Proper descendants in document order, iteratively (no recursion
        limit issues on deep documents)."""
        stack: list[Node] = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, Element):
                stack.extend(reversed(node.children))

    def child_elements(self) -> Iterator["Element"]:
        for child in self.children:
            if isinstance(child, Element):
                yield child

    def find_children(self, tag: str) -> Iterator["Element"]:
        """Child elements with the given tag, in document order."""
        for child in self.children:
            if isinstance(child, Element) and child.tag == tag:
                yield child

    def first_child(self, tag: str) -> Optional["Element"]:
        return next(self.find_children(tag), None)

    def text_value(self) -> str:
        parts: list[str] = []
        for node in self.descendants():
            if isinstance(node, Text):
                parts.append(node.value)
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Element(<{self.tag}>, id={self.node_id}, children={len(self.children)})"


class Document:
    """A well-formed tree (Def 2.2): the root element plus the id space.

    ``nodes_by_id`` indexes every node by identifier; this realises the
    paper's ``f @ i`` lookup.  Identifiers are assigned in preorder by
    :meth:`renumber`, so ``a.node_id < b.node_id`` iff ``a`` precedes ``b``
    in document order.
    """

    __slots__ = ("root", "nodes_by_id")

    def __init__(self, root: Element, renumber: bool = True) -> None:
        self.root = root
        self.nodes_by_id: dict[int, Node] = {}
        if renumber:
            self.renumber()
        else:
            self.reindex()

    # -- id management ----------------------------------------------------

    def renumber(self) -> None:
        """Assign fresh preorder identifiers to every node and rebuild the
        id index.  Call after structural surgery that created new nodes."""
        self.nodes_by_id.clear()
        for next_id, node in enumerate(self.root.self_and_descendants()):
            node.node_id = next_id
            self.nodes_by_id[next_id] = node

    def reindex(self) -> None:
        """Rebuild the id index keeping existing identifiers (used for
        pruned documents, whose nodes keep the ids of the original)."""
        self.nodes_by_id.clear()
        for node in self.root.self_and_descendants():
            if node.node_id < 0:
                raise ValueError("reindex() requires every node to have an id")
            if node.node_id in self.nodes_by_id:
                raise ValueError(f"duplicate node id {node.node_id}")
            self.nodes_by_id[node.node_id] = node

    # -- accessors ---------------------------------------------------------

    def node(self, node_id: int) -> Node:
        """The paper's ``t @ i``: the unique subtree rooted at ``i``."""
        return self.nodes_by_id[node_id]

    def ids(self) -> set[int]:
        """``Ids(t)``: all identifiers occurring in the document."""
        return set(self.nodes_by_id)

    def size(self) -> int:
        """Total number of nodes."""
        return len(self.nodes_by_id)

    def iter(self) -> Iterator[Node]:
        """All nodes in document order."""
        return self.root.self_and_descendants()

    def elements(self) -> Iterator[Element]:
        for node in self.iter():
            if isinstance(node, Element):
                yield node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Document(<{self.root.tag}>, {self.size()} nodes)"


def is_projection_of(smaller: Node, larger: Node) -> bool:
    """Decide the paper's projection order ``smaller ≼ larger`` (Def 2.1).

    ``smaller`` is a projection of ``larger`` when it can be obtained by
    replacing some subforests of ``larger`` with the empty forest.  We
    check structurally: tags/texts must match and the child list of
    ``smaller`` must be an ordered subsequence of ``larger``'s children
    each related by ``≼``.  Node ids are compared when both sides carry
    real ids (>= 0), which is the case for pruned documents.
    """
    if smaller.node_id >= 0 and larger.node_id >= 0:
        if smaller.node_id != larger.node_id:
            return False
    if isinstance(smaller, Text) and isinstance(larger, Text):
        return smaller.value == larger.value
    if isinstance(smaller, Element) and isinstance(larger, Element):
        if smaller.tag != larger.tag:
            return False
        # Attribute pruning (our extension of the paper's data model) is
        # part of the projection order: kept attributes must agree.
        if not (smaller.attributes.items() <= larger.attributes.items()):
            return False
        # Greedy subsequence match is correct here because ids (or, absent
        # ids, leftmost matching) uniquely anchor each child.
        position = 0
        for child in smaller.children:
            while position < len(larger.children):
                if is_projection_of(child, larger.children[position]):
                    position += 1
                    break
                position += 1
            else:
                return False
        return True
    return False
