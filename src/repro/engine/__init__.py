"""Metered main-memory query engine (the benchmarks' Galax stand-in),
prune-while-loading, and tag indexes with index pruning."""

from repro.engine.executor import QueryEngine, largest_processable_megabytes
from repro.engine.index import IndexStats, TagIndex, index_of_pruned_document
from repro.engine.loader import (
    LoadReport,
    load_full,
    load_many,
    load_pruned,
    load_pruned_validating,
)
from repro.engine.metrics import DEFAULT_MODEL, MemoryModel, RunReport

__all__ = [
    "DEFAULT_MODEL",
    "IndexStats",
    "LoadReport",
    "MemoryModel",
    "QueryEngine",
    "RunReport",
    "TagIndex",
    "index_of_pruned_document",
    "largest_processable_megabytes",
    "load_full",
    "load_many",
    "load_pruned",
    "load_pruned_validating",
]


def __getattr__(name: str):
    # Deprecated loader spellings stay importable from the subpackage but
    # warn on access (module-level import would warn for everyone).
    if name in ("load_for_queries", "load_many_for_queries"):
        from repro.engine import loader

        return getattr(loader, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
