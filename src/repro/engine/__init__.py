"""Metered main-memory query engine (the benchmarks' Galax stand-in),
prune-while-loading, and tag indexes with index pruning."""

from repro.engine.executor import QueryEngine, largest_processable_megabytes
from repro.engine.index import IndexStats, TagIndex, index_of_pruned_document
from repro.engine.loader import (
    LoadReport,
    load_for_queries,
    load_full,
    load_pruned,
    load_pruned_validating,
)
from repro.engine.metrics import DEFAULT_MODEL, MemoryModel, RunReport

__all__ = [
    "DEFAULT_MODEL",
    "IndexStats",
    "LoadReport",
    "MemoryModel",
    "QueryEngine",
    "RunReport",
    "TagIndex",
    "index_of_pruned_document",
    "largest_processable_megabytes",
    "load_for_queries",
    "load_full",
    "load_pruned",
    "load_pruned_validating",
]
