"""Engine memory model.

The paper measures main-memory use of Galax, a DOM-style main-memory
engine.  Re-measuring a 2006 OCaml engine's RSS is not reproducible;
instead we use an explicit, deterministic cost model of what a DOM-style
main-memory engine allocates, calibrated to the usual constants
(per-node headers, child/sibling pointers, per-distinct-tag dictionary
entries, string payloads).

This model reproduces the paper's key *qualitative* observation (Section
6): memory gain can far exceed byte-size gain, because per-node overhead
dominates over text payload — a pruned document that still carries the
mixed-content bulk (bytes) but lost the node-dense structural sections
(people, auctions) costs proportionally much less memory.  It also models
the two effects the paper names explicitly: reduced fan-out ("engines that
chase sibling pointers") and fewer element names ("reduce memory
occupation when shredding").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmltree.nodes import Document, Element, Text


@dataclass(frozen=True, slots=True)
class MemoryModel:
    """Per-allocation costs (bytes) of a DOM-style main-memory engine."""

    element_header: int = 112  # node object, parent/first-child/next-sibling
    child_pointer: int = 8  # per entry in the child table
    text_header: int = 56
    text_byte: int = 1
    attribute_entry: int = 72
    attribute_byte: int = 1
    distinct_tag_entry: int = 256  # tag dictionary + per-tag index slot

    def document_bytes(self, document: Document) -> int:
        """Modelled bytes an engine allocates to hold ``document``."""
        total = 0
        tags: set[str] = set()
        for node in document.iter():
            if isinstance(node, Element):
                tags.add(node.tag)
                total += self.element_header
                total += self.child_pointer * len(node.children)
                for name, value in node.attributes.items():
                    total += self.attribute_entry + self.attribute_byte * (len(name) + len(value))
            elif isinstance(node, Text):
                total += self.text_header + self.text_byte * len(node.value)
        total += self.distinct_tag_entry * len(tags)
        return total


DEFAULT_MODEL = MemoryModel()


@dataclass(slots=True)
class RunReport:
    """One query execution's measurements."""

    query: str
    load_seconds: float
    query_seconds: float
    document_bytes: int  # modelled engine memory for the document
    eval_bytes: int  # modelled evaluation working set
    result_count: int
    nodes_touched: int
    document_nodes: int

    @property
    def total_bytes(self) -> int:
        return self.document_bytes + self.eval_bytes

    @property
    def total_seconds(self) -> float:
        return self.load_seconds + self.query_seconds


#: Modelled bytes of evaluator working set per node touched during
#: navigation (intermediate node-set entries, context frames).
EVAL_BYTES_PER_TOUCH = 16
