"""Main-memory query engine with explicit accounting.

``QueryEngine`` plays the role Galax plays in the paper's Section 6: it
loads a document (optionally under a memory budget — the paper's 512 MB
machine with swap disabled), runs XPath or XQuery over it, and reports
time plus modelled memory.  Running the *same* engine on the original and
the pruned document is what Table 1 and Figures 4/5 measure.
"""

from __future__ import annotations

import time

from repro import obs
from repro.engine.metrics import DEFAULT_MODEL, EVAL_BYTES_PER_TOUCH, MemoryModel, RunReport
from repro.errors import BudgetExceededError
from repro.querylang import looks_like_xquery
from repro.xmltree.nodes import Document
from repro.xpath.evaluator import XPathEvaluator
from repro.xquery.evaluator import XQueryEvaluator

# Token-aware detection lives in repro.querylang; the old substring
# heuristic misrouted XPath queries mentioning "return" in literals or
# name tests.
_looks_like_xquery = looks_like_xquery


class QueryEngine:
    """A metered main-memory engine bound to one document."""

    def __init__(self, document: Document, model: MemoryModel = DEFAULT_MODEL, memory_budget: int | None = None) -> None:
        started = time.perf_counter()
        self.document = document
        self.model = model
        self.document_bytes = model.document_bytes(document)
        self.load_seconds = time.perf_counter() - started
        if memory_budget is not None and self.document_bytes > memory_budget:
            raise BudgetExceededError(
                f"document needs {self.document_bytes} modelled bytes, "
                f"budget is {memory_budget}",
                used=self.document_bytes,
                budget=memory_budget,
            )
        self.memory_budget = memory_budget

    # -- execution -----------------------------------------------------------

    def run(self, query: str) -> RunReport:
        """Execute ``query`` (XPath or XQuery, auto-detected) and report."""
        if _looks_like_xquery(query):
            return self.run_xquery(query)
        return self.run_xpath(query)

    def run_xpath(self, query: str) -> RunReport:
        evaluator = XPathEvaluator(self.document)
        with obs.timed("query", language="xpath", query=query) as span:
            result = evaluator.evaluate(query)
            span.stop()
            count = len(result) if isinstance(result, list) else 1
            span.count("results", count)
            span.count("nodes_touched", evaluator.nodes_touched)
        return self._report(query, span.seconds, count, evaluator.nodes_touched)

    def run_xquery(self, query: str) -> RunReport:
        evaluator = XQueryEvaluator(self.document)
        with obs.timed("query", language="xquery", query=query) as span:
            result = evaluator.evaluate(query)
            span.stop()
            span.count("results", len(result))
            span.count("nodes_touched", evaluator.nodes_touched)
        return self._report(query, span.seconds, len(result), evaluator.nodes_touched)

    def run_serialized(self, query: str) -> str:
        """Execute and serialise — the form used for original-vs-pruned
        equivalence checks."""
        if _looks_like_xquery(query):
            return XQueryEvaluator(self.document).evaluate_serialized(query)
        evaluator = XPathEvaluator(self.document)
        return repr(evaluator.select_ids(query))

    def _report(self, query: str, elapsed: float, count: int, touched: int) -> RunReport:
        eval_bytes = touched * EVAL_BYTES_PER_TOUCH
        if self.memory_budget is not None and self.document_bytes + eval_bytes > self.memory_budget:
            raise BudgetExceededError(
                "evaluation exceeded the memory budget",
                used=self.document_bytes + eval_bytes,
                budget=self.memory_budget,
            )
        return RunReport(
            query=query,
            load_seconds=self.load_seconds,
            query_seconds=elapsed,
            document_bytes=self.document_bytes,
            eval_bytes=eval_bytes,
            result_count=count,
            nodes_touched=touched,
            document_nodes=self.document.size(),
        )


def largest_processable_megabytes(
    document: Document,
    serialized_bytes: int,
    memory_budget: int,
    model: MemoryModel = DEFAULT_MODEL,
) -> float:
    """Extrapolate the largest on-disk document (MB) processable under a
    memory budget — the paper's Table 1 line 1/2 methodology, without
    materialising multi-GB files.

    Engine memory scales linearly in document size for a fixed schema
    (XMark documents are statistically self-similar across scale factors),
    so the slope measured on one document extrapolates: ``max_MB = budget
    / (model_bytes / serialized_MB)``.
    """
    if serialized_bytes <= 0:
        return 0.0
    bytes_per_mb = model.document_bytes(document) / (serialized_bytes / 1_000_000)
    if bytes_per_mb <= 0:
        return float("inf")
    return memory_budget / bytes_per_mb
