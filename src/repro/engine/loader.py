"""Prune-while-loading — the conclusion's engine integration, realised.

The paper's closing implementation note: interfacing the pruner with a
query engine means "the pruning overhead would be diluted in the
parsing/validation phase".  This module is that interface: the engine
loads its in-memory tree *through* the streaming pruner, so discarded
subtrees are never allocated at all — the paper's central memory argument
applied at load time rather than as a separate prune-then-reload step.

Three loading strategies are exposed for comparison (and benchmarked in
``benchmarks/bench_loading.py``):

* :func:`load_full`           — parse everything (the unpruned baseline);
* :func:`load_pruned`         — parse → prune events → build (one pass,
  pruned subtrees never materialise);
* :func:`load_pruned_validating` — ditto, with DTD validation folded into
  the same pass (the "no overhead" deployment of Section 1.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.dtd.grammar import Grammar
from repro.engine.metrics import DEFAULT_MODEL, MemoryModel
from repro.projection.stats import PruneStats
from repro.projection.streaming import StreamingPruner
from repro.xmltree.builder import TreeBuilder
from repro.xmltree.lexer import Source
from repro.xmltree.nodes import Document
from repro.xmltree.parser import parse_events


@dataclass(slots=True)
class LoadReport:
    """What one load cost."""

    document: Document
    seconds: float
    model_bytes: int
    nodes_built: int
    prune_stats: PruneStats | None = None

    @property
    def megabytes(self) -> float:
        return self.model_bytes / 1e6


def _build(events, strip_whitespace: bool) -> Document:
    builder = TreeBuilder(strip_whitespace=strip_whitespace)
    for event in events:
        builder.feed(event)
    return builder.document()


def _report(
    span: "obs.Span", document: Document, model: MemoryModel,
    prune_stats: PruneStats | None = None,
) -> LoadReport:
    """Fill the load span's counters and the caller's report in one go.

    Call inside the span's ``with`` block, after :meth:`~repro.obs.Span.stop`
    — the duration excludes model measurement, the counters still land in
    the emitted record.
    """
    model_bytes = model.document_bytes(document)
    nodes_built = document.size()
    span.count("model_bytes", model_bytes)
    span.count("nodes_built", nodes_built)
    return LoadReport(
        document=document,
        seconds=span.seconds,
        model_bytes=model_bytes,
        nodes_built=nodes_built,
        prune_stats=prune_stats,
    )


def load_full(
    source: Source,
    strip_whitespace: bool = True,
    model: MemoryModel = DEFAULT_MODEL,
) -> LoadReport:
    """Plain load: every node of the document is allocated."""
    with obs.timed("load", strategy="full") as span:
        document = _build(parse_events(source), strip_whitespace)
        span.stop()
        report = _report(span, document, model)
    return report


def load_pruned(
    source: Source,
    grammar: Grammar,
    projector: frozenset[str] | set[str],
    strip_whitespace: bool = True,
    validate: bool = False,
    fast: bool = True,
    model: MemoryModel = DEFAULT_MODEL,
) -> LoadReport:
    """Load through the streaming pruner: nodes outside the projector are
    skipped *before* tree construction, so they cost neither allocation
    nor model memory.  ``fast=True`` (the default) uses the fused
    scanner-level pruner, which bulk-skips discarded regions without even
    building their events; ``validate=True`` folds DTD validation into
    the pass (forcing the event pipeline — the validator must see every
    event)."""
    stats = PruneStats()
    fused = fast and not validate
    with obs.timed(
        "load", strategy="pruned", fused=fused, validate=validate
    ) as span:
        if fused:
            from repro.projection.fastpath import FastPruner

            events = FastPruner(grammar, frozenset(projector), stats=stats).events(source)
        else:
            events = StreamingPruner(
                grammar, projector, validate=validate, stats=stats
            ).process(parse_events(source))
        document = _build(events, strip_whitespace)
        span.stop()
        span.merge_counters(stats.as_counters())
        report = _report(span, document, model, prune_stats=stats)
    return report


def load_pruned_validating(
    source: Source,
    grammar: Grammar,
    projector: frozenset[str] | set[str],
    strip_whitespace: bool = True,
    model: MemoryModel = DEFAULT_MODEL,
) -> LoadReport:
    """Validate-and-prune-while-loading, one pass."""
    return load_pruned(
        source, grammar, projector,
        strip_whitespace=strip_whitespace, validate=True, model=model,
    )


def load_many(
    sources,
    grammar: Grammar,
    queries_or_projector,
    jobs: int | None = 1,
    strip_whitespace: bool = True,
    validate: bool = False,
    fast: bool = True,
    model: MemoryModel = DEFAULT_MODEL,
    cache: "ProjectorCache | None" = None,
):
    """Load a whole corpus pruned to one workload.

    The batch variant of :func:`load_pruned`: the projector is resolved
    once in the parent (queries — string or list — are analyzed through
    the projector cache; an already-inferred projector passes straight
    through), the corpus is pruned through :func:`repro.parallel.
    prune_many` (text mode, so workers ship back pruned markup, which is
    typically a small fraction of the input), and the in-memory trees are
    built in the parent from the already-pruned text.

    Returns ``(reports, batch)``: ``reports`` is index-aligned with the
    expanded source list (:class:`LoadReport` per success, ``None`` where
    pruning failed — see ``batch.errors``), and ``batch`` is the
    underlying :class:`~repro.parallel.BatchResult`.
    """
    from repro.core.cache import resolve_projector
    from repro.parallel import prune_many

    projector = resolve_projector(grammar, queries_or_projector, cache=cache)
    batch = prune_many(
        sources, grammar, projector,
        jobs=jobs, fast=fast, validate=validate,
    )
    reports: "list[LoadReport | None]" = []
    for result in batch.results:
        if result is None:
            reports.append(None)
            continue
        with obs.timed("load", strategy="pruned-batch") as span:
            document = _build(parse_events(result.text), strip_whitespace)
            span.stop()
            span.merge_counters(result.stats.as_counters())
            reports.append(_report(span, document, model, prune_stats=result.stats))
    return reports, batch


# -- deprecated spellings ----------------------------------------------------


def load_for_queries(
    source: Source,
    grammar: Grammar,
    queries: "list[str] | str",
    strip_whitespace: bool = True,
    validate: bool = False,
    fast: bool = True,
    model: MemoryModel = DEFAULT_MODEL,
    cache: "ProjectorCache | None" = None,
) -> LoadReport:
    """Deprecated: analyze ``queries`` with :func:`repro.analyze` (or let
    :func:`load_pruned` resolve them via the cache yourself) — this shim
    forwards to :func:`load_pruned`."""
    import warnings

    warnings.warn(
        "load_for_queries is deprecated; resolve the projector with "
        "repro.analyze (or repro.core.cache.resolve_projector) and call "
        "load_pruned instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.core.cache import default_cache

    if cache is None:
        cache = default_cache()
    result = cache.analyze(grammar, queries)
    return load_pruned(
        source, grammar, result.projector,
        strip_whitespace=strip_whitespace, validate=validate, fast=fast, model=model,
    )


def load_many_for_queries(
    sources,
    grammar: Grammar,
    queries: "list[str] | str",
    jobs: int | None = 1,
    strip_whitespace: bool = True,
    validate: bool = False,
    fast: bool = True,
    model: MemoryModel = DEFAULT_MODEL,
    cache: "ProjectorCache | None" = None,
):
    """Deprecated: use :func:`load_many` (same behaviour; it also accepts
    a pre-resolved projector)."""
    import warnings

    warnings.warn(
        "load_many_for_queries is deprecated; use load_many instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return load_many(
        sources, grammar, queries,
        jobs=jobs, strip_whitespace=strip_whitespace, validate=validate,
        fast=fast, model=model, cache=cache,
    )
