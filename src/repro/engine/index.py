"""Element-tag indexes and index pruning.

The paper's conclusion (database integration): "our pruning technique can
also be used for pruning indexes.  For example, if indexes over element
tags are present before query processing (like in the TIMBER system), the
index can be pruned as well ... it is worth being pruned, in order to
improve buffer management".

:class:`TagIndex` is the classic tag → node-list index a DOM-style engine
keeps; :meth:`TagIndex.pruned` restricts it to a type projector without
touching the document — entries for pruned-away names disappear and the
per-entry lists shrink to the nodes the projector keeps, exactly mirroring
what ``prune_document`` would leave behind.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dtd.grammar import Grammar, is_text_name
from repro.dtd.validator import Interpretation
from repro.errors import ProjectorError
from repro.xmltree.nodes import Document, Element, Text


@dataclass(frozen=True, slots=True)
class IndexStats:
    """Size accounting for one index (the TIMBER comparison: a 472 MB
    document carried a 241 MB tag index)."""

    entries: int  # distinct tags
    postings: int  # total node references
    model_bytes: int  # 64 bytes/entry + 8 bytes/posting, the usual shape

    @staticmethod
    def of(index: "TagIndex") -> "IndexStats":
        postings = sum(len(nodes) for nodes in index.by_tag.values())
        return IndexStats(
            entries=len(index.by_tag),
            postings=postings,
            model_bytes=64 * len(index.by_tag) + 8 * postings,
        )


class TagIndex:
    """tag → [element node ids], in document order, plus a text-node list."""

    def __init__(self, by_tag: dict[str, list[int]], text_nodes: list[int]) -> None:
        self.by_tag = by_tag
        self.text_nodes = text_nodes

    @staticmethod
    def build(document: Document) -> "TagIndex":
        by_tag: dict[str, list[int]] = {}
        text_nodes: list[int] = []
        for node in document.iter():
            if isinstance(node, Element):
                by_tag.setdefault(node.tag, []).append(node.node_id)
            elif isinstance(node, Text):
                text_nodes.append(node.node_id)
        return TagIndex(by_tag, text_nodes)

    def lookup(self, tag: str) -> list[int]:
        return self.by_tag.get(tag, [])

    def stats(self) -> IndexStats:
        return IndexStats.of(self)

    # -- index pruning ------------------------------------------------------

    def pruned(self, interpretation: Interpretation, projector: frozenset[str] | set[str]) -> "TagIndex":
        """The index of the π-projection, computed *from the index alone*
        (no document traversal): a node survives iff its name and all of
        its ancestors' names are in π.  Because the interpretation is
        tag-determined, the ancestor check reduces to walking the stored
        parent pointers of the data model once per posting."""
        grammar = interpretation.grammar
        frozen = grammar.check_projector(frozenset(projector))
        if grammar.root not in frozen:
            raise ProjectorError("projector does not keep the document root")

        kept_cache: dict[int, bool] = {}

        def kept(node_id: int) -> bool:
            cached = kept_cache.get(node_id)
            if cached is not None:
                return cached
            if node_id not in interpretation:
                # Ignorable whitespace never has a name: it is dropped.
                kept_cache[node_id] = False
                return False
            if interpretation[node_id] not in frozen:
                result = False
            else:
                # Find the parent through the document (the engine keeps
                # parent pointers; the paper's shredded stores keep a
                # parent column).
                node = interpretation_document.node(node_id)
                parent = node.parent
                result = parent is None or kept(parent.node_id)
            kept_cache[node_id] = result
            return result

        # The interpretation does not carry the document; recover it from
        # any indexed node via the bound document set by build_for().
        interpretation_document = self._document
        by_tag = {
            tag: [node_id for node_id in nodes if kept(node_id)]
            for tag, nodes in self.by_tag.items()
        }
        by_tag = {tag: nodes for tag, nodes in by_tag.items() if nodes}
        text_nodes = [node_id for node_id in self.text_nodes if kept(node_id)]
        pruned = TagIndex(by_tag, text_nodes)
        pruned._document = interpretation_document
        return pruned

    # A TagIndex used for pruning must know its document (for parent
    # pointers); build_for() wires it.
    _document: Document | None = None

    @staticmethod
    def build_for(document: Document) -> "TagIndex":
        index = TagIndex.build(document)
        index._document = document
        return index


def index_of_pruned_document(document: Document, interpretation: Interpretation,
                             projector: frozenset[str] | set[str]) -> TagIndex:
    """Reference implementation: prune the document, then index it — used
    by tests to check that :meth:`TagIndex.pruned` matches."""
    from repro.projection.tree import prune_document

    pruned = prune_document(document, interpretation, projector)
    return TagIndex.build(pruned)
