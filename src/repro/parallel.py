"""Parallel batch pruning: one projector, many documents, many cores.

The journal version of the paper stresses that projection-based pruning is
embarrassingly parallel across documents: the static analysis is computed
once per (DTD, query-set) pair and every document is then pruned
independently.  This module is that deployment.  :func:`prune_many` shards
a corpus across a process pool:

* the projector is resolved **once in the parent** through the
  :class:`~repro.core.cache.ProjectorCache` (queries are accepted directly,
  or a pre-inferred projector is passed through);
* each worker receives the configured :class:`~repro.projection.fastpath.
  FastPruner` (pickled as ``(grammar, projector, options)``; the compiled
  prune table is rebuilt — and memoised — once per worker) together with
  the parent's grammar fingerprint, which the worker re-derives and checks
  so a grammar that does not survive transfer intact fails loudly;
* every document runs through the fused fast path (or whatever
  :class:`~repro.api.PruneOptions` selects), with results returned in
  **input order** regardless of completion order;
* a malformed document — or an unwritable output — yields a structured
  :class:`BatchError` for that item; the other items still complete, and
  a crashed worker process poisons only the items that were still pending
  (each reported as a ``worker-crash`` error) instead of hanging the pool;
* workers trace into a process-local :class:`~repro.obs.MemorySink` and
  ship their span records and counters back with each result; the parent
  absorbs them into its tracer (:func:`repro.obs.absorb`), so a single
  ``--trace-out`` file still tells the whole story, with a ``worker``
  attribute marking which process ran each document.

``jobs=1`` bypasses the pool entirely and runs the items serially in the
parent — byte-identical, by construction, to calling :func:`repro.prune`
per document (the differential tests assert it).

:func:`extract_many` is the same deployment for tabular extraction: one
:class:`~repro.extract.spec.ExtractSpec`, many documents, the same pool,
timeout, and crash-recovery machinery — workers run the fused
extract-while-scanning pass and ship back per-item
:class:`~repro.extract.api.ExtractResult` values (or record files under
``out_dir``, named after the source with a ``.jsonl``/``.csv`` suffix).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Iterable

from repro import obs
from repro.api import PruneOptions, PruneResult, _resolve_options, prune
from repro.core.cache import (
    ProjectorCache,
    grammar_fingerprint,
    resolve_projector,
    resolve_spec_projector,
)
from repro.dtd.grammar import Grammar
from repro.extract.api import (
    ExtractOptions,
    ExtractResult,
    _resolve_extract_options,
    extract,
)
from repro.extract.spec import ExtractSpec
from repro.extract.stats import ExtractStats
from repro.limits import Limits, resolve_limits
from repro.projection.fastpath import FastPruner
from repro.projection.stats import PruneStats

__all__ = [
    "BatchError",
    "BatchResult",
    "expand_sources",
    "extract_many",
    "prune_many",
]

_GLOB_CHARS = frozenset("*?[")

#: Crash kind reported for items whose worker died before finishing them.
WORKER_CRASH = "worker-crash"

#: Error kind for items killed by the per-item pool ``timeout``.
TIMEOUT = "timeout"

#: Error kind a worker reports when the grammar fingerprint does not
#: survive the process boundary; the parent re-runs such items itself
#: (see :func:`_prune_in_parent`) instead of failing the batch.
FINGERPRINT_MISMATCH = "fingerprint-mismatch"

#: How often the pool loop wakes to look for stuck workers when a
#: ``timeout`` is set (completions interrupt the wait immediately).
_POLL_SECONDS = 0.05


# -- results ------------------------------------------------------------------


@dataclass(slots=True, frozen=True)
class BatchError:
    """One document that could not be pruned.

    ``kind`` is the exception type name (``XMLSyntaxError``,
    ``ValidationError``, ``LimitExceeded``, ``PermissionError``,
    ``StrayDocumentError`` for documents an inferred grammar refused
    under ``on_stray="error"``, ...), ``"worker-crash"`` when the worker
    process died before the item finished, or ``"timeout"`` when the
    item exceeded the per-item pool timeout and its worker was killed.
    """

    index: int
    source: str
    kind: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.index}] {self.source}: {self.kind}: {self.message}"


@dataclass(slots=True)
class BatchResult:
    """What one :func:`prune_many` (or :func:`extract_many`) call produced.

    ``results`` is index-aligned with the expanded source list: position
    ``i`` holds the item's :class:`~repro.api.PruneResult` (or
    :class:`~repro.extract.api.ExtractResult` for an extract batch), or
    ``None`` if it failed (the matching :class:`BatchError` is in
    ``errors``).  ``stats`` aggregates the per-item counters over the
    successes — :class:`~repro.projection.stats.PruneStats` or
    :class:`~repro.extract.stats.ExtractStats` to match the batch kind.
    ``respawns`` counts how many times the worker pool had to be torn
    down and rebuilt (stuck workers killed on timeout, crash retries).
    """

    results: "list[PruneResult | ExtractResult | None]"
    errors: list[BatchError] = field(default_factory=list)
    stats: "PruneStats | ExtractStats" = field(default_factory=PruneStats)
    jobs: int = 1
    seconds: float = 0.0
    respawns: int = 0

    @property
    def documents(self) -> int:
        return len(self.results)

    @property
    def succeeded(self) -> int:
        return self.documents - len(self.errors)

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def strays(self) -> int:
        """Documents an inferred grammar passed through verbatim
        (``on_stray="copy"``) instead of pruning — their bytes are exact
        input copies, never a wrong projection."""
        return sum(1 for r in self.results if getattr(r, "stray", False))

    def texts(self) -> list[str | None]:
        """Per-item pruned markup (None for failures or file outputs)."""
        return [result.text if result is not None else None for result in self.results]

    def output_paths(self) -> list[str | None]:
        """Per-item output paths (None for failures or text outputs)."""
        return [
            result.output_path if result is not None else None
            for result in self.results
        ]


# -- source expansion ---------------------------------------------------------


def _is_markup(text: str) -> bool:
    return text.lstrip()[:1] == "<"


def expand_sources(
    sources: "str | os.PathLike[str] | Iterable[str | os.PathLike[str]]",
) -> list[str]:
    """Flatten a corpus spec into an ordered list of concrete sources.

    Accepts a single item or an iterable of items, where each item is XML
    markup (kept verbatim), a directory (expanded to its files, sorted),
    a glob pattern (expanded, sorted), or a plain file path.  Expansion is
    deterministic: directory and glob matches are sorted, input order is
    otherwise preserved.
    """
    import glob as globlib

    if isinstance(sources, (str, os.PathLike)):
        sources = [sources]
    expanded: list[str] = []
    for item in sources:
        if not isinstance(item, (str, os.PathLike)):
            raise TypeError(f"cannot prune source of type {type(item).__name__}")
        text = os.fspath(item)
        if isinstance(item, str) and _is_markup(text):
            expanded.append(text)
        elif os.path.isdir(text):
            expanded.extend(
                sorted(
                    entry.path
                    for entry in os.scandir(text)
                    if entry.is_file() and not entry.name.startswith(".")
                )
            )
        elif _GLOB_CHARS & set(text):
            expanded.extend(sorted(globlib.glob(text)))
        else:
            expanded.append(text)
    return expanded


def _output_paths(
    items: list[str], out_dir: str, suffix: str | None = None
) -> list[str]:
    """Deterministic per-item output paths under ``out_dir``: path sources
    keep their basename (index-prefixed on collision), markup sources get
    ``doc<index>.xml``.  With ``suffix`` (extract batches: ``".jsonl"`` /
    ``".csv"``) path basenames swap their extension for it instead — the
    output is records, not markup."""
    paths: list[str] = []
    used: set[str] = set()
    for index, source in enumerate(items):
        if _is_markup(source):
            name = f"doc{index:05d}{suffix or '.xml'}"
        elif suffix is not None:
            stem = os.path.splitext(os.path.basename(source))[0]
            name = f"{stem}{suffix}" if stem else f"doc{index:05d}{suffix}"
        else:
            name = os.path.basename(source) or f"doc{index:05d}.xml"
        if name in used:
            name = f"{index:05d}_{name}"
        used.add(name)
        paths.append(os.path.join(out_dir, name))
    return paths


def _label(source: str) -> str:
    """How a source is named in errors and traces (markup is abbreviated)."""
    if _is_markup(source):
        return f"<inline markup, {len(source)} chars>"
    return source


# -- worker side --------------------------------------------------------------

#: Per-worker state installed by :func:`_init_worker`; ``None`` in the parent.
_WORKER_STATE: dict[str, Any] | None = None


def _init_worker(
    pruner: FastPruner,
    options: "PruneOptions | ExtractOptions",
    fingerprint: str,
    tracing: bool,
    spec: ExtractSpec | None = None,
) -> None:
    global _WORKER_STATE
    mismatch: str | None = None
    if grammar_fingerprint(pruner.grammar) != fingerprint:
        # Raising here would break the whole pool (the initializer
        # failure poisons every item the worker would have run); a flag
        # lets each item return a structured error instead, which the
        # parent degrades on by re-running the item itself.
        mismatch = (
            "grammar fingerprint changed across the process boundary; "
            "refusing to prune against a different grammar"
        )
    sink: obs.MemorySink | None = None
    if tracing:
        sink = obs.MemorySink()
        obs.configure(sink)
    _WORKER_STATE = {
        "pruner": pruner, "options": options, "sink": sink, "mismatch": mismatch,
        "spec": spec,
    }


def _drain_worker_obs(
    state: dict[str, Any],
) -> tuple[list[dict[str, Any]], dict[str, int | float]]:
    """Collect (and reset) the worker tracer's records and counters so
    each task result carries exactly its own delta."""
    sink: obs.MemorySink | None = state["sink"]
    if sink is None:
        return [], {}
    tracer = obs.get_tracer()
    records = list(sink.records)
    sink.records.clear()
    counters = tracer.counters
    tracer._counters.clear()
    return records, counters


def _execute_item(
    pruner: FastPruner,
    options: PruneOptions,
    source: str,
    out_path: str | None,
) -> PruneResult:
    """Prune one document through the facade (monkeypatch point for the
    worker-crash tests)."""
    return prune(source, pruner.grammar, pruner.projector, out=out_path, options=options)


def _execute_extract_item(
    pruner: FastPruner,
    spec: ExtractSpec,
    options: ExtractOptions,
    source: str,
    out_path: str | None,
) -> ExtractResult:
    """Extract one document through the facade.  The projector resolves
    through the worker's process-local cache — one inference per worker
    for the whole batch (the spec fingerprint hits thereafter)."""
    return extract(source, pruner.grammar, spec, out=out_path, options=options)


def _execute(
    pruner: FastPruner,
    options: "PruneOptions | ExtractOptions",
    spec: ExtractSpec | None,
    source: str,
    out_path: str | None,
) -> "PruneResult | ExtractResult":
    if spec is not None:
        return _execute_extract_item(pruner, spec, options, source, out_path)
    return _execute_item(pruner, options, source, out_path)


def _run_item(index: int, source: str, out_path: str | None):
    """Worker task: returns ``(index, error-or-None, result-or-None,
    records, counters, pid)``.  Never raises for a bad document — errors
    travel back as data so one malformed input cannot poison the pool."""
    state = _WORKER_STATE
    assert state is not None, "worker used before _init_worker ran"
    error: tuple[str, str] | None = None
    result: "PruneResult | ExtractResult | None" = None
    if state["mismatch"] is not None:
        error = (FINGERPRINT_MISMATCH, state["mismatch"])
    else:
        try:
            result = _execute(
                state["pruner"], state["options"], state["spec"], source, out_path
            )
            if getattr(result, "events", None) is not None:
                result.events = None  # iterators never cross the process boundary
        except Exception as exc:
            error = (type(exc).__name__, str(exc))
    records, counters = _drain_worker_obs(state)
    return index, error, result, records, counters, os.getpid()


# -- the engine ---------------------------------------------------------------


def _resolve_jobs(jobs: int | None) -> int:
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return jobs


def prune_many(
    sources: "str | os.PathLike[str] | Iterable[str | os.PathLike[str]]",
    grammar: Grammar,
    queries_or_projector: "frozenset[str] | set[str] | list[str] | str",
    *,
    jobs: int | None = 1,
    out_dir: "str | os.PathLike[str] | None" = None,
    options: PruneOptions | None = None,
    fast: bool | None = None,
    validate: bool | None = None,
    prune_attributes: bool | None = None,
    chunk_size: int | None = None,
    limits: "Limits | str | None" = None,
    fallback: "bool | str | None" = None,
    timeout: float | None = None,
    retry_crashes: bool = False,
    cache: ProjectorCache | None = None,
) -> BatchResult:
    """Prune a corpus of documents with one shared projector.

    ``sources`` accepts anything :func:`expand_sources` does (paths,
    globs, directories, inline markup, or a mixed list).  The projector is
    resolved once in the parent — pass queries (string or list, mixed
    XPath/XQuery) or an already-inferred projector.  ``jobs`` selects the
    worker-pool width: ``1`` (default) runs serially in the parent,
    ``None``/``0`` uses every core.  With ``out_dir`` each item is written
    to a file there (see :func:`_output_paths` for naming); without it the
    pruned markup is collected per item.

    ``limits`` / ``fallback`` apply per item exactly as in
    :func:`repro.prune`.  ``timeout`` (seconds) bounds each item's wall
    clock from the *outside*: a worker stuck past it is killed, that item
    gets a ``BatchError(kind="timeout")``, and the pool is respawned so
    the remaining items still complete (with ``jobs=1`` the timeout folds
    into the per-item limits deadline instead — there is no worker to
    kill).  ``retry_crashes`` resubmits each crashed item once to a fresh
    pool before reporting it as ``worker-crash``.

    Returns a :class:`BatchResult`; per-item failures are reported there,
    not raised.  Parent-side configuration errors (a projector that does
    not cover the grammar root, an unknown query language, a bad
    ``jobs``) still raise immediately.
    """
    jobs = _resolve_jobs(jobs)
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    opts = _resolve_options(
        options, fast, validate, prune_attributes, chunk_size,
        limits=limits, fallback=fallback,
    )
    if timeout is not None and jobs == 1:
        resolved = resolve_limits(opts.limits)
        deadline = (
            timeout if resolved.deadline is None else min(resolved.deadline, timeout)
        )
        opts = replace(opts, limits=resolved.replace(deadline=deadline))
    projector = resolve_projector(grammar, queries_or_projector, cache=cache)
    # Validates the projector against the grammar (and pre-compiles the
    # prune table) before any process is spawned: configuration errors
    # surface in the parent, not N times in the pool.
    pruner = FastPruner(grammar, projector, opts.prune_attributes)

    items = expand_sources(sources)
    out_paths: list[str | None]
    if out_dir is not None:
        out_dir = os.fspath(out_dir)
        os.makedirs(out_dir, exist_ok=True)
        out_paths = list(_output_paths(items, out_dir))
    else:
        out_paths = [None] * len(items)

    batch = BatchResult(results=[None] * len(items), jobs=jobs)
    started = time.perf_counter()
    with obs.timed("prune.batch", jobs=jobs, documents=len(items)) as span:
        if not items:
            pass
        elif jobs == 1:
            _run_serial(batch, pruner, opts, items, out_paths)
        else:
            _run_pool(
                batch, pruner, opts, items, out_paths, jobs, timeout, retry_crashes
            )
        span.stop()
        span.merge_counters(batch.stats.as_counters())
        span.count("errors", len(batch.errors))
    batch.seconds = span.seconds if span.seconds else time.perf_counter() - started
    batch.errors.sort(key=lambda error: error.index)
    return batch


#: Output-file suffix per extract format (``_output_paths`` naming).
_EXTRACT_SUFFIXES = {"jsonl": ".jsonl", "csv": ".csv"}


def extract_many(
    sources: "str | os.PathLike[str] | Iterable[str | os.PathLike[str]]",
    grammar: Grammar,
    spec: ExtractSpec,
    *,
    jobs: int | None = 1,
    out_dir: "str | os.PathLike[str] | None" = None,
    options: ExtractOptions | None = None,
    format: str | None = None,
    fast: bool | None = None,
    chunk_size: int | None = None,
    limits: "Limits | str | None" = None,
    fallback: "bool | str | None" = None,
    timeout: float | None = None,
    retry_crashes: bool = False,
    cache: ProjectorCache | None = None,
) -> BatchResult:
    """Extract one spec's records from a corpus of documents.

    The :func:`prune_many` deployment applied to tabular extraction:
    ``sources`` expands the same way, the spec's union projector is
    resolved once in the parent (keyed by the spec's content
    fingerprint), and each document runs the fused extract-while-scanning
    pass independently — same pool, per-item ``timeout``, and
    ``retry_crashes`` machinery, same in-order :class:`BatchResult`.

    With ``out_dir`` each item's records are written to a file named
    after its source with the format's suffix (``people.xml`` →
    ``people.jsonl``); without it each :class:`~repro.extract.api.
    ExtractResult` carries the records and encoded text in memory.
    ``BatchResult.stats`` aggregates
    :class:`~repro.extract.stats.ExtractStats` over the successes.
    """
    jobs = _resolve_jobs(jobs)
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    opts = _resolve_extract_options(
        options, format, fast, chunk_size, limits=limits, fallback=fallback
    )
    if timeout is not None and jobs == 1:
        resolved = resolve_limits(opts.limits)
        deadline = (
            timeout if resolved.deadline is None else min(resolved.deadline, timeout)
        )
        opts = replace(opts, limits=resolved.replace(deadline=deadline))
    projector = resolve_spec_projector(grammar, spec, cache=cache)
    # Same parent-side validation as prune_many: a spec whose paths the
    # grammar cannot satisfy fails here, before any process is spawned.
    pruner = FastPruner(grammar, projector)

    items = expand_sources(sources)
    out_paths: list[str | None]
    if out_dir is not None:
        out_dir = os.fspath(out_dir)
        os.makedirs(out_dir, exist_ok=True)
        out_paths = list(
            _output_paths(items, out_dir, _EXTRACT_SUFFIXES[opts.format])
        )
    else:
        out_paths = [None] * len(items)

    batch = BatchResult(
        results=[None] * len(items), stats=ExtractStats(), jobs=jobs
    )
    started = time.perf_counter()
    with obs.timed("extract.batch", jobs=jobs, documents=len(items)) as span:
        if not items:
            pass
        elif jobs == 1:
            _run_serial(batch, pruner, opts, items, out_paths, spec)
        else:
            _run_pool(
                batch, pruner, opts, items, out_paths, jobs, timeout,
                retry_crashes, spec,
            )
        span.stop()
        span.merge_counters(batch.stats.as_counters())
        span.count("errors", len(batch.errors))
    batch.seconds = span.seconds if span.seconds else time.perf_counter() - started
    batch.errors.sort(key=lambda error: error.index)
    return batch


def _record_success(batch: BatchResult, index: int, result: PruneResult) -> None:
    batch.results[index] = result
    batch.stats.merge(result.stats)


def _record_error(
    batch: BatchResult, index: int, source: str, kind: str, message: str
) -> None:
    batch.errors.append(
        BatchError(index=index, source=_label(source), kind=kind, message=message)
    )


def _run_serial(
    batch: BatchResult,
    pruner: FastPruner,
    opts: "PruneOptions | ExtractOptions",
    items: list[str],
    out_paths: list[str | None],
    spec: ExtractSpec | None = None,
) -> None:
    for index, (source, out_path) in enumerate(zip(items, out_paths)):
        try:
            _record_success(
                batch, index, _execute(pruner, opts, spec, source, out_path)
            )
        except Exception as exc:
            _record_error(batch, index, source, type(exc).__name__, str(exc))


def _prune_in_parent(
    batch: BatchResult,
    pruner: FastPruner,
    opts: "PruneOptions | ExtractOptions",
    items: list[str],
    out_paths: list[str | None],
    index: int,
    tracer,
    spec: ExtractSpec | None = None,
) -> None:
    """Degraded path for fingerprint-mismatch items: the worker's copy of
    the grammar cannot be trusted, the parent's can — re-run the item
    here through the event pipeline instead of failing the batch."""
    if tracer.enabled:
        tracer.count("parallel.fingerprint_fallbacks")
    try:
        result = _execute(
            pruner, replace(opts, fast=False), spec, items[index], out_paths[index]
        )
    except Exception as exc:
        _record_error(batch, index, items[index], type(exc).__name__, str(exc))
    else:
        _record_success(batch, index, result)


def _absorb_payload(
    batch: BatchResult,
    pruner: FastPruner,
    opts: "PruneOptions | ExtractOptions",
    items: list[str],
    out_paths: list[str | None],
    tracer,
    workers: set[int],
    payload,
    spec: ExtractSpec | None = None,
) -> None:
    """Fold one worker task's return value into the batch."""
    index, error, result, records, counters, pid = payload
    workers.add(pid)
    if tracer.enabled and (records or counters):
        for record in records:
            record.setdefault("attrs", {})["worker"] = pid
        tracer.absorb(records, counters)
    if error is None:
        assert result is not None
        _record_success(batch, index, result)
    elif error[0] == FINGERPRINT_MISMATCH:
        _prune_in_parent(batch, pruner, opts, items, out_paths, index, tracer, spec)
    else:
        _record_error(batch, index, items[index], error[0], error[1])


def _kill_processes(executor: ProcessPoolExecutor) -> None:
    """Forcibly terminate every worker of ``executor`` (stuck workers
    cannot be cancelled: a running future ignores ``cancel()``)."""
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        process.kill()


def _run_pool(
    batch: BatchResult,
    pruner: FastPruner,
    opts: "PruneOptions | ExtractOptions",
    items: list[str],
    out_paths: list[str | None],
    jobs: int,
    timeout: float | None,
    retry_crashes: bool,
    spec: ExtractSpec | None = None,
) -> None:
    """Run the items through worker pools in rounds: a round ends early
    when stuck workers are killed (per-item ``timeout``) or the pool
    breaks with ``retry_crashes`` set, and the surviving items go to a
    fresh pool.  Each extra round is one recorded respawn."""
    tracer = obs.get_tracer()
    workers: set[int] = set()
    crash_retried: set[int] = set()
    todo = list(range(len(items)))
    rounds = 0
    while todo:
        rounds += 1
        todo = _pool_round(
            batch, pruner, opts, items, out_paths, jobs, timeout,
            retry_crashes, tracer, workers, crash_retried, todo, spec,
        )
    batch.respawns = max(0, rounds - 1)
    if tracer.enabled and workers:
        tracer.count("parallel.workers_used", len(workers))
        if batch.respawns:
            tracer.count("parallel.respawns", batch.respawns)


def _pool_round(
    batch: BatchResult,
    pruner: FastPruner,
    opts: "PruneOptions | ExtractOptions",
    items: list[str],
    out_paths: list[str | None],
    jobs: int,
    timeout: float | None,
    retry_crashes: bool,
    tracer,
    workers: set[int],
    crash_retried: set[int],
    indices: list[int],
    spec: ExtractSpec | None = None,
) -> list[int]:
    """One executor lifetime over ``indices``; returns the indices that
    must be resubmitted to a fresh pool.

    The loop always terminates: a broken pool resolves every remaining
    future immediately, and a kill round records at least one timeout
    error, so every round either shrinks the outstanding item count or
    consumes per-index crash-retry budget (bounded by ``crash_retried``,
    see :func:`_resolve_crashed`)."""
    max_workers = min(jobs, len(indices))
    executor = ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_init_worker,
        initargs=(
            pruner, opts, grammar_fingerprint(pruner.grammar), tracer.enabled, spec,
        ),
    )
    redo: list[int] = []
    crashed: list[tuple[int, str]] = []
    progressed = False
    try:
        futures = {
            executor.submit(_run_item, index, items[index], out_paths[index]): index
            for index in indices
        }
        pending = set(futures)
        first_running: dict[Any, float] = {}
        while pending:
            done, not_done = wait(
                pending,
                timeout=None if timeout is None else _POLL_SECONDS,
                return_when=FIRST_COMPLETED,
            )
            for future in done:
                pending.discard(future)
                index = futures[future]
                try:
                    payload = future.result()
                except (BrokenProcessPool, OSError, RuntimeError) as exc:
                    # The worker died (or the pool broke) before this
                    # item finished.  Every remaining future resolves
                    # the same way, so the loop never hangs.  Blame is
                    # assigned at round end (_resolve_crashed): a broken
                    # pool fails *every* pending item, innocent or not.
                    crashed.append((index, str(exc) or type(exc).__name__))
                    continue
                progressed = True
                _absorb_payload(
                    batch, pruner, opts, items, out_paths, tracer, workers,
                    payload, spec,
                )
            if timeout is None or not not_done:
                continue
            now = time.monotonic()
            overdue = []
            for future in not_done:
                if future.running():
                    seen = first_running.setdefault(future, now)
                    if now - seen > timeout:
                        overdue.append(future)
            if not overdue:
                continue
            # The executor marks an item "running" once it enters the
            # call queue, which holds slightly more items than there are
            # workers — so at most ``max_workers`` of the overdue futures
            # can truly be executing.  Oldest first (ties by submission
            # order) are the stuck ones; the rest were merely queued
            # behind a stuck worker and are rerun, not failed.
            overdue.sort(key=lambda f: (first_running[f], futures[f]))
            stuck = set(overdue[:max_workers])
            _kill_processes(executor)
            executor.shutdown(wait=True, cancel_futures=True)
            for future in pending:
                index = futures[future]
                if future in stuck:
                    _record_error(
                        batch, index, items[index], TIMEOUT,
                        f"worker exceeded the {timeout:g}s per-item timeout",
                    )
                    continue
                if future.done() and not future.cancelled():
                    # Completed between the wait() and the kill.
                    try:
                        payload = future.result()
                    except Exception:
                        redo.append(index)
                    else:
                        _absorb_payload(
                            batch, pruner, opts, items, out_paths,
                            tracer, workers, payload, spec,
                        )
                    continue
                redo.append(index)
            break
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
    _resolve_crashed(
        batch, items, crashed, progressed, retry_crashes, crash_retried, redo
    )
    return redo


def _resolve_crashed(
    batch: BatchResult,
    items: list[str],
    crashed: list[tuple[int, str]],
    progressed: bool,
    retry_crashes: bool,
    crash_retried: set[int],
    redo: list[int],
) -> None:
    """Decide, at round end, what happens to items whose futures resolved
    as crashes.

    A broken pool fails every pending future, so most "crashes" in a
    round are collateral damage from one bad item.  With
    ``retry_crashes``: if the round made progress the crashed items are
    simply rerun (their crash is unattributable); in a round with *no*
    progress each index gets one personal retry before being recorded —
    which converges on blaming exactly the item that keeps crashing
    alone.  Without ``retry_crashes`` every crash is recorded as-is."""
    for index, message in crashed:
        if retry_crashes and progressed:
            redo.append(index)
        elif retry_crashes and index not in crash_retried:
            crash_retried.add(index)
            redo.append(index)
        else:
            _record_error(batch, index, items[index], WORKER_CRASH, message)
