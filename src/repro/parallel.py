"""Parallel batch pruning: one projector, many documents, many cores.

The journal version of the paper stresses that projection-based pruning is
embarrassingly parallel across documents: the static analysis is computed
once per (DTD, query-set) pair and every document is then pruned
independently.  This module is that deployment.  :func:`prune_many` shards
a corpus across a process pool:

* the projector is resolved **once in the parent** through the
  :class:`~repro.core.cache.ProjectorCache` (queries are accepted directly,
  or a pre-inferred projector is passed through);
* each worker receives the configured :class:`~repro.projection.fastpath.
  FastPruner` (pickled as ``(grammar, projector, options)``; the compiled
  prune table is rebuilt — and memoised — once per worker) together with
  the parent's grammar fingerprint, which the worker re-derives and checks
  so a grammar that does not survive transfer intact fails loudly;
* every document runs through the fused fast path (or whatever
  :class:`~repro.api.PruneOptions` selects), with results returned in
  **input order** regardless of completion order;
* a malformed document — or an unwritable output — yields a structured
  :class:`BatchError` for that item; the other items still complete, and
  a crashed worker process poisons only the items that were still pending
  (each reported as a ``worker-crash`` error) instead of hanging the pool;
* workers trace into a process-local :class:`~repro.obs.MemorySink` and
  ship their span records and counters back with each result; the parent
  absorbs them into its tracer (:func:`repro.obs.absorb`), so a single
  ``--trace-out`` file still tells the whole story, with a ``worker``
  attribute marking which process ran each document.

``jobs=1`` bypasses the pool entirely and runs the items serially in the
parent — byte-identical, by construction, to calling :func:`repro.prune`
per document (the differential tests assert it).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro import obs
from repro.api import PruneOptions, PruneResult, _resolve_options, prune
from repro.core.cache import ProjectorCache, grammar_fingerprint, resolve_projector
from repro.dtd.grammar import Grammar
from repro.projection.fastpath import FastPruner
from repro.projection.stats import PruneStats

__all__ = ["BatchError", "BatchResult", "expand_sources", "prune_many"]

_GLOB_CHARS = frozenset("*?[")

#: Crash kind reported for items whose worker died before finishing them.
WORKER_CRASH = "worker-crash"


# -- results ------------------------------------------------------------------


@dataclass(slots=True, frozen=True)
class BatchError:
    """One document that could not be pruned.

    ``kind`` is the exception type name (``XMLSyntaxError``,
    ``ValidationError``, ``PermissionError``, ...) or ``"worker-crash"``
    when the worker process died before the item finished.
    """

    index: int
    source: str
    kind: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.index}] {self.source}: {self.kind}: {self.message}"


@dataclass(slots=True)
class BatchResult:
    """What one :func:`prune_many` call produced.

    ``results`` is index-aligned with the expanded source list: position
    ``i`` holds the item's :class:`~repro.api.PruneResult`, or ``None``
    if it failed (the matching :class:`BatchError` is in ``errors``).
    ``stats`` aggregates the per-item counters over the successes.
    """

    results: list[PruneResult | None]
    errors: list[BatchError] = field(default_factory=list)
    stats: PruneStats = field(default_factory=PruneStats)
    jobs: int = 1
    seconds: float = 0.0

    @property
    def documents(self) -> int:
        return len(self.results)

    @property
    def succeeded(self) -> int:
        return self.documents - len(self.errors)

    @property
    def ok(self) -> bool:
        return not self.errors

    def texts(self) -> list[str | None]:
        """Per-item pruned markup (None for failures or file outputs)."""
        return [result.text if result is not None else None for result in self.results]

    def output_paths(self) -> list[str | None]:
        """Per-item output paths (None for failures or text outputs)."""
        return [
            result.output_path if result is not None else None
            for result in self.results
        ]


# -- source expansion ---------------------------------------------------------


def _is_markup(text: str) -> bool:
    return text.lstrip()[:1] == "<"


def expand_sources(
    sources: "str | os.PathLike[str] | Iterable[str | os.PathLike[str]]",
) -> list[str]:
    """Flatten a corpus spec into an ordered list of concrete sources.

    Accepts a single item or an iterable of items, where each item is XML
    markup (kept verbatim), a directory (expanded to its files, sorted),
    a glob pattern (expanded, sorted), or a plain file path.  Expansion is
    deterministic: directory and glob matches are sorted, input order is
    otherwise preserved.
    """
    import glob as globlib

    if isinstance(sources, (str, os.PathLike)):
        sources = [sources]
    expanded: list[str] = []
    for item in sources:
        if not isinstance(item, (str, os.PathLike)):
            raise TypeError(f"cannot prune source of type {type(item).__name__}")
        text = os.fspath(item)
        if isinstance(item, str) and _is_markup(text):
            expanded.append(text)
        elif os.path.isdir(text):
            expanded.extend(
                sorted(
                    entry.path
                    for entry in os.scandir(text)
                    if entry.is_file() and not entry.name.startswith(".")
                )
            )
        elif _GLOB_CHARS & set(text):
            expanded.extend(sorted(globlib.glob(text)))
        else:
            expanded.append(text)
    return expanded


def _output_paths(items: list[str], out_dir: str) -> list[str]:
    """Deterministic per-item output paths under ``out_dir``: path sources
    keep their basename (index-prefixed on collision), markup sources get
    ``doc<index>.xml``."""
    paths: list[str] = []
    used: set[str] = set()
    for index, source in enumerate(items):
        if _is_markup(source):
            name = f"doc{index:05d}.xml"
        else:
            name = os.path.basename(source) or f"doc{index:05d}.xml"
        if name in used:
            name = f"{index:05d}_{name}"
        used.add(name)
        paths.append(os.path.join(out_dir, name))
    return paths


def _label(source: str) -> str:
    """How a source is named in errors and traces (markup is abbreviated)."""
    if _is_markup(source):
        return f"<inline markup, {len(source)} chars>"
    return source


# -- worker side --------------------------------------------------------------

#: Per-worker state installed by :func:`_init_worker`; ``None`` in the parent.
_WORKER_STATE: dict[str, Any] | None = None


def _init_worker(
    pruner: FastPruner,
    options: PruneOptions,
    fingerprint: str,
    tracing: bool,
) -> None:
    global _WORKER_STATE
    if grammar_fingerprint(pruner.grammar) != fingerprint:
        raise RuntimeError(
            "grammar fingerprint changed across the process boundary; "
            "refusing to prune against a different grammar"
        )
    sink: obs.MemorySink | None = None
    if tracing:
        sink = obs.MemorySink()
        obs.configure(sink)
    _WORKER_STATE = {"pruner": pruner, "options": options, "sink": sink}


def _drain_worker_obs(
    state: dict[str, Any],
) -> tuple[list[dict[str, Any]], dict[str, int | float]]:
    """Collect (and reset) the worker tracer's records and counters so
    each task result carries exactly its own delta."""
    sink: obs.MemorySink | None = state["sink"]
    if sink is None:
        return [], {}
    tracer = obs.get_tracer()
    records = list(sink.records)
    sink.records.clear()
    counters = tracer.counters
    tracer._counters.clear()
    return records, counters


def _execute_item(
    pruner: FastPruner,
    options: PruneOptions,
    source: str,
    out_path: str | None,
) -> PruneResult:
    """Prune one document through the facade (monkeypatch point for the
    worker-crash tests)."""
    return prune(source, pruner.grammar, pruner.projector, out=out_path, options=options)


def _run_item(index: int, source: str, out_path: str | None):
    """Worker task: returns ``(index, error-or-None, result-or-None,
    records, counters, pid)``.  Never raises for a bad document — errors
    travel back as data so one malformed input cannot poison the pool."""
    state = _WORKER_STATE
    assert state is not None, "worker used before _init_worker ran"
    error: tuple[str, str] | None = None
    result: PruneResult | None = None
    try:
        result = _execute_item(state["pruner"], state["options"], source, out_path)
        result.events = None  # iterators never cross the process boundary
    except Exception as exc:
        error = (type(exc).__name__, str(exc))
    records, counters = _drain_worker_obs(state)
    return index, error, result, records, counters, os.getpid()


# -- the engine ---------------------------------------------------------------


def _resolve_jobs(jobs: int | None) -> int:
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return jobs


def prune_many(
    sources: "str | os.PathLike[str] | Iterable[str | os.PathLike[str]]",
    grammar: Grammar,
    queries_or_projector: "frozenset[str] | set[str] | list[str] | str",
    *,
    jobs: int | None = 1,
    out_dir: "str | os.PathLike[str] | None" = None,
    options: PruneOptions | None = None,
    fast: bool | None = None,
    validate: bool | None = None,
    prune_attributes: bool | None = None,
    chunk_size: int | None = None,
    cache: ProjectorCache | None = None,
) -> BatchResult:
    """Prune a corpus of documents with one shared projector.

    ``sources`` accepts anything :func:`expand_sources` does (paths,
    globs, directories, inline markup, or a mixed list).  The projector is
    resolved once in the parent — pass queries (string or list, mixed
    XPath/XQuery) or an already-inferred projector.  ``jobs`` selects the
    worker-pool width: ``1`` (default) runs serially in the parent,
    ``None``/``0`` uses every core.  With ``out_dir`` each item is written
    to a file there (see :func:`_output_paths` for naming); without it the
    pruned markup is collected per item.

    Returns a :class:`BatchResult`; per-item failures are reported there,
    not raised.  Parent-side configuration errors (a projector that does
    not cover the grammar root, an unknown query language, a bad
    ``jobs``) still raise immediately.
    """
    jobs = _resolve_jobs(jobs)
    opts = _resolve_options(options, fast, validate, prune_attributes, chunk_size)
    projector = resolve_projector(grammar, queries_or_projector, cache=cache)
    # Validates the projector against the grammar (and pre-compiles the
    # prune table) before any process is spawned: configuration errors
    # surface in the parent, not N times in the pool.
    pruner = FastPruner(grammar, projector, opts.prune_attributes)

    items = expand_sources(sources)
    out_paths: list[str | None]
    if out_dir is not None:
        out_dir = os.fspath(out_dir)
        os.makedirs(out_dir, exist_ok=True)
        out_paths = list(_output_paths(items, out_dir))
    else:
        out_paths = [None] * len(items)

    batch = BatchResult(results=[None] * len(items), jobs=jobs)
    started = time.perf_counter()
    with obs.timed("prune.batch", jobs=jobs, documents=len(items)) as span:
        if not items:
            pass
        elif jobs == 1:
            _run_serial(batch, pruner, opts, items, out_paths)
        else:
            _run_pool(batch, pruner, opts, items, out_paths, jobs)
        span.stop()
        span.merge_counters(batch.stats.as_counters())
        span.count("errors", len(batch.errors))
    batch.seconds = span.seconds if span.seconds else time.perf_counter() - started
    batch.errors.sort(key=lambda error: error.index)
    return batch


def _record_success(batch: BatchResult, index: int, result: PruneResult) -> None:
    batch.results[index] = result
    batch.stats.merge(result.stats)


def _record_error(
    batch: BatchResult, index: int, source: str, kind: str, message: str
) -> None:
    batch.errors.append(
        BatchError(index=index, source=_label(source), kind=kind, message=message)
    )


def _run_serial(
    batch: BatchResult,
    pruner: FastPruner,
    opts: PruneOptions,
    items: list[str],
    out_paths: list[str | None],
) -> None:
    for index, (source, out_path) in enumerate(zip(items, out_paths)):
        try:
            _record_success(batch, index, _execute_item(pruner, opts, source, out_path))
        except Exception as exc:
            _record_error(batch, index, source, type(exc).__name__, str(exc))


def _run_pool(
    batch: BatchResult,
    pruner: FastPruner,
    opts: PruneOptions,
    items: list[str],
    out_paths: list[str | None],
    jobs: int,
) -> None:
    tracer = obs.get_tracer()
    executor = ProcessPoolExecutor(
        max_workers=min(jobs, len(items)),
        initializer=_init_worker,
        initargs=(pruner, opts, grammar_fingerprint(pruner.grammar), tracer.enabled),
    )
    workers: set[int] = set()
    try:
        futures = {
            executor.submit(_run_item, index, source, out_path): index
            for index, (source, out_path) in enumerate(zip(items, out_paths))
        }
        for future in as_completed(futures):
            index = futures[future]
            try:
                index, error, result, records, counters, pid = future.result()
            except (BrokenProcessPool, OSError, RuntimeError) as exc:
                # The worker died (or the pool broke) before this item
                # finished: report it as crashed and keep collecting —
                # every remaining future resolves the same way, so the
                # loop always terminates, never hangs.
                _record_error(
                    batch, index, items[index], WORKER_CRASH,
                    str(exc) or type(exc).__name__,
                )
                continue
            workers.add(pid)
            if tracer.enabled and (records or counters):
                for record in records:
                    record.setdefault("attrs", {})["worker"] = pid
                tracer.absorb(records, counters)
            if error is not None:
                _record_error(batch, index, items[index], error[0], error[1])
            else:
                assert result is not None
                _record_success(batch, index, result)
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
    if tracer.enabled and workers:
        tracer.count("parallel.workers_used", len(workers))
