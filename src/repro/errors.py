"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  Sub-hierarchies mirror
the subsystems: XML parsing, DTD handling, validation, XPath, XQuery and
static analysis.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class XMLError(ReproError):
    """Base class for XML data-model and parsing errors."""


class XMLSyntaxError(XMLError):
    """Raised when the XML parser encounters malformed input.

    Attributes
    ----------
    line, column:
        1-based position of the offending character in the input.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class DTDError(ReproError):
    """Base class for DTD errors."""


class DTDSyntaxError(DTDError):
    """Raised when a DTD document cannot be parsed."""


class GrammarError(DTDError):
    """Raised when a set of productions is not a valid local tree grammar.

    For example: duplicate definitions for a name, two names defining the
    same element tag, or a production referencing an undefined name.
    """


class ValidationError(ReproError):
    """Raised when a document does not validate against a DTD."""

    def __init__(self, message: str, node_id: int | None = None) -> None:
        self.node_id = node_id
        super().__init__(message)


class UnsupportedSchemaError(DTDError):
    """Raised when an XSD uses a construct outside the supported subset
    (:mod:`repro.schema.xsd`).  Structured so callers can report exactly
    what to rewrite: ``construct`` is the offending XSD feature
    (``"xs:import"``, ``"substitutionGroup"``, ...), ``detail`` the
    context (element or type name, attribute value)."""

    def __init__(self, construct: str, detail: str = "") -> None:
        self.construct = construct
        self.detail = detail
        message = f"unsupported XSD construct {construct}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class StrayDocumentError(ValidationError):
    """Structured refusal from the inferred-grammar escape hatch: the
    document strayed from the dataguide grammar it is being pruned
    against, and the grammar's ``on_stray`` policy is ``"error"``.

    Theorem 4.5 soundness only covers documents the grammar accepts, so
    a stray document is never pruned — it is either copied verbatim
    (``on_stray="copy"``) or refused with this error.  ``reason`` is the
    underlying validation failure's message."""

    def __init__(self, reason: str, node_id: int | None = None) -> None:
        self.reason = reason
        super().__init__(
            f"document strays from the inferred grammar ({reason}); "
            "re-infer with this document in the sample, or use "
            'on_stray="copy" to pass strays through verbatim',
            node_id,
        )


class XPathError(ReproError):
    """Base class for XPath errors."""


class XPathSyntaxError(XPathError):
    """Raised when an XPath expression cannot be parsed."""


class XPathTypeError(XPathError):
    """Raised when an XPath expression is applied to a value of the wrong
    kind (e.g. a location step applied to a number)."""


class XQueryError(ReproError):
    """Base class for XQuery errors."""


class XQuerySyntaxError(XQueryError):
    """Raised when an XQuery expression cannot be parsed."""


class XQueryEvaluationError(XQueryError):
    """Raised when evaluation of a (syntactically valid) query fails, e.g.
    an unbound variable."""


class AnalysisError(ReproError):
    """Raised when static analysis is asked something it cannot answer,
    e.g. inferring a projector for a query over an unknown DTD name."""


class ProjectorError(ReproError):
    """Raised when a set of names is used as a projector but is not one
    (not chain-closed from the root, see Definition 2.6)."""


class EncodingError(XMLError):
    """Raised when a source cannot be decoded (or an output cannot be
    encoded) as text — undecodable byte sequences, lone surrogates and
    similar encoding oddities surface as this structured error instead of
    a bare :class:`UnicodeError`."""


class ResourceError(ReproError):
    """Base class for resource-governance errors (:mod:`repro.limits`).

    A resource error is a *refusal*, not a parse failure: the input may
    be perfectly well formed, but processing it would exceed a configured
    bound (depth, token size, input/output size, wall clock).
    """


class LimitExceeded(ResourceError):
    """Raised when a :class:`~repro.limits.Limits` bound is exceeded.

    Attributes
    ----------
    limit:
        Which bound tripped: ``"depth"``, ``"token_bytes"``,
        ``"input_bytes"`` or ``"output_bytes"``.
    value, maximum:
        The observed quantity and the configured bound.
    """

    def __init__(self, limit: str, value: int, maximum: int) -> None:
        self.limit = limit
        self.value = value
        self.maximum = maximum
        super().__init__(f"{limit} limit exceeded: {value} > {maximum}")


class DeadlineExceeded(ResourceError):
    """Raised when a pass runs past its configured wall-clock deadline."""

    def __init__(self, deadline: float) -> None:
        self.deadline = deadline
        super().__init__(f"wall-clock deadline of {deadline:g}s exceeded")


class FastPathUnsupported(ReproError):
    """Internal signal: the fused fast path cannot handle this input and
    the caller should fall back to the event pipeline.  Never escapes the
    :func:`repro.api.prune` facade unless fallback is disabled (or the
    source/sink cannot be rewound for a retry)."""


class ServiceError(ReproError):
    """Base class for projection-service errors (:mod:`repro.service`)."""


class ProtocolError(ServiceError):
    """Raised when a service frame violates the wire protocol: not JSON,
    not an object, oversized, missing the request id or the operation."""

    code = 400


class ServiceOverloaded(ServiceError):
    """Structured admission refusal: the server's bounded request queue
    (or this connection's in-flight cap) is full.  The request was never
    started — retry later.  ``scope`` says which bound tripped
    (``"server"`` or ``"connection"``)."""

    code = 429

    def __init__(self, message: str, scope: str = "server") -> None:
        self.scope = scope
        super().__init__(message)


class ServiceUnavailable(ServiceError):
    """The server is draining (or gone): it refuses new work but finishes
    what it already admitted."""

    code = 503


class RemoteError(ServiceError):
    """An error that happened on the server while processing a request,
    reported back as data.  ``remote_type`` is the server-side exception
    class name (``XMLSyntaxError``, ``LimitExceeded``, ...), ``code`` the
    HTTP-style status the server attached."""

    def __init__(self, remote_type: str, message: str, code: int = 500) -> None:
        self.remote_type = remote_type
        self.code = code
        super().__init__(f"{remote_type}: {message}")


class LedgerError(ReproError):
    """Base class for attestation-ledger errors (:mod:`repro.ledger`)."""


class LedgerCorrupt(LedgerError):
    """Raised when an attestation ledger fails verification on open: a
    line that is not canonical JSON, an entry whose self-hash does not
    match its body, or a broken prev-hash chain.  A *torn final line*
    (a writer died mid-append) is not corruption — it is truncated away
    on open — so this error always means the ledger's history was
    altered after it was written."""


class BudgetExceededError(ReproError):
    """Raised by the metered query engine when a configured memory budget
    is exhausted (used to reproduce the paper's 512 MB-limit experiments)."""

    def __init__(self, message: str, used: int = 0, budget: int = 0) -> None:
        self.used = used
        self.budget = budget
        super().__init__(message)
