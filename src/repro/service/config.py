"""Service configuration: one frozen bundle of server knobs.

Defaults are sized for a small trusted deployment; the CLI (``repro-xml
serve``) exposes the load-bearing ones as flags.  ``limits`` is the
*server-side* per-request resource profile — a client may ask for its own
:class:`~repro.limits.Limits`, but the effective bounds are the
intersection (the server never relaxes its own profile for a client).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.limits import Limits, resolve_limits
from repro.service.protocol import DEFAULT_MAX_FRAME_BYTES

__all__ = ["ServiceConfig"]


@dataclass(slots=True, frozen=True)
class ServiceConfig:
    """Knobs for one :class:`~repro.service.server.ProjectionServer`.

    * ``host`` / ``port`` — bind address; port ``0`` picks a free port
      (read it back from ``server.port`` once started).
    * ``jobs`` — resident worker-pool width (``None``/``0`` = all cores).
    * ``queue_limit`` — admission bound: maximum requests admitted
      server-wide (queued + running).  Request number ``queue_limit + 1``
      gets a structured 429-style refusal, never a hang.
    * ``per_connection`` — in-flight cap per connection (pipelining depth).
    * ``limits`` — server-side per-request resource profile (name,
      :class:`Limits`, or ``None`` for the default profile).
    * ``max_frame_bytes`` — protocol frame bound, both directions.
    * ``tracing`` — ship worker-side obs records back to the server
      tracer (matches ``prune_many``'s behaviour; costs one MemorySink
      per worker).
    * ``ledger`` — path of an attestation ledger (:mod:`repro.ledger`);
      when set, every prune/extract request is recorded and identical
      re-requests are served from the content-addressed result store
      (``result["ledger"]`` says which happened).
    """

    host: str = "127.0.0.1"
    port: int = 0
    jobs: int | None = 2
    queue_limit: int = 64
    per_connection: int = 8
    limits: "Limits | str | None" = None
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    tracing: bool = False
    ledger: str | None = None

    def __post_init__(self) -> None:
        if self.queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {self.queue_limit}")
        if self.per_connection < 1:
            raise ValueError(
                f"per_connection must be positive, got {self.per_connection}"
            )
        if self.max_frame_bytes < 1024:
            raise ValueError("max_frame_bytes must be at least 1 KiB")

    def resolved_limits(self) -> Limits:
        return resolve_limits(self.limits)
