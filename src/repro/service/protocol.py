"""The service wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding a single object.  Requests carry::

    {"id": 7, "op": "prune", ...op-specific fields...}

and every request gets exactly one response frame echoing the id::

    {"id": 7, "ok": true,  "result": {...}}
    {"id": 7, "ok": false, "error": {"type": "ServiceOverloaded",
                                     "code": 429, "message": "..."}}

The protocol is deliberately stdlib-only (``struct`` + ``json``) and
version-checked by field, not by handshake: unknown operations and
malformed frames come back as structured ``ProtocolError`` responses, and
a frame larger than ``max_frame_bytes`` kills the connection (the length
prefix cannot be trusted once a peer ignores the bound).

This module also owns the JSON form of the dataclasses that cross the
wire: :class:`~repro.projection.stats.PruneStats` (via
:func:`stats_to_wire` / :func:`stats_from_wire`) and the error payloads
(:func:`error_to_wire` / :func:`raise_remote`).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any

from repro.errors import (
    ProtocolError,
    RemoteError,
    ReproError,
    ResourceError,
    ServiceOverloaded,
    ServiceUnavailable,
)
from repro.extract.stats import ExtractStats
from repro.projection.stats import PruneStats

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "LEDGER_HIT",
    "LEDGER_RECORDED",
    "OPS",
    "decode_frame",
    "encode_frame",
    "error_to_wire",
    "extract_stats_from_wire",
    "extract_stats_to_wire",
    "raise_remote",
    "read_frame",
    "recv_frame",
    "send_frame",
    "stats_from_wire",
    "stats_to_wire",
]

#: Frames larger than this are refused by both ends (a pruned XMark
#: document at factor 1.0 is ~50 MB; leave headroom for batches).
DEFAULT_MAX_FRAME_BYTES = 256 << 20

#: The operations the server understands.
OPS = (
    "analyze",
    "prune",
    "prune_batch",
    "extract",
    "check_update",
    "stats",
    "health",
)

#: ``result["ledger"]`` markers on prune/extract responses when the
#: server runs with an attestation ledger: the result was served from the
#: content-addressed store (byte-identical by recorded hash), or the run
#: executed and its attestation was appended.
LEDGER_HIT = "hit"
LEDGER_RECORDED = "recorded"

_HEADER = struct.Struct(">I")


# -- framing -----------------------------------------------------------------


def encode_frame(payload: dict[str, Any]) -> bytes:
    """Serialize one frame: length prefix + JSON body."""
    body = json.dumps(payload, separators=(",", ":"), default=_jsonable).encode("utf-8")
    return _HEADER.pack(len(body)) + body


def _jsonable(value: Any) -> Any:
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(f"cannot serialize {type(value).__name__} onto the wire")


def decode_frame(body: bytes) -> dict[str, Any]:
    """Parse one frame body into a payload object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must encode an object, got {type(payload).__name__}"
        )
    return payload


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> dict[str, Any] | None:
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    An oversized length prefix raises :class:`ProtocolError` — the caller
    must drop the connection, since the stream position is unrecoverable.
    """
    header = await reader.read(_HEADER.size)
    if not header:
        return None
    while len(header) < _HEADER.size:
        more = await reader.read(_HEADER.size - len(header))
        if not more:
            raise ProtocolError("connection closed mid frame header")
        header += more
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame_bytes} byte bound"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid frame body") from None
    return decode_frame(body)


def send_frame(sock: socket.socket, payload: dict[str, Any]) -> None:
    """Blocking send of one frame (the client side)."""
    sock.sendall(encode_frame(payload))


def recv_frame(
    sock: socket.socket,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> dict[str, Any] | None:
    """Blocking read of one frame (the client side); ``None`` on EOF."""
    header = _recv_exactly(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame_bytes} byte bound"
        )
    body = _recv_exactly(sock, length, eof_ok=False)
    assert body is not None
    return decode_frame(body)


def _recv_exactly(sock: socket.socket, count: int, eof_ok: bool) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ProtocolError("connection closed mid frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- error payloads ----------------------------------------------------------


def error_to_wire(error: BaseException) -> dict[str, Any]:
    """The ``error`` object of a refusal/failure response.

    Codes follow HTTP conventions: 400 protocol misuse, 422 a structured
    library refusal (bad document, limit trip), 429 admission refusal,
    503 draining, 500 anything unexpected.
    """
    if isinstance(error, (ProtocolError, ServiceOverloaded, ServiceUnavailable)):
        code = error.code
    elif isinstance(error, (ReproError, ValueError, TypeError)):
        code = 422
    else:
        code = 500
    payload: dict[str, Any] = {
        "type": type(error).__name__,
        "code": code,
        "message": str(error),
    }
    if isinstance(error, ServiceOverloaded):
        payload["scope"] = error.scope
    if isinstance(error, ResourceError):
        payload["refusal"] = True
    return payload


def raise_remote(error: dict[str, Any]) -> "None":
    """Client side: re-raise a wire error as the matching local class.

    Admission refusals and drain refusals come back as their own types
    (callers back off on :class:`ServiceOverloaded`, reconnect elsewhere
    on :class:`ServiceUnavailable`); everything else — including
    server-side parse/limit errors — is a :class:`RemoteError` carrying
    the server-side class name.
    """
    kind = str(error.get("type", "unknown"))
    message = str(error.get("message", ""))
    code = int(error.get("code", 500))
    if kind == "ServiceOverloaded" or code == 429:
        raise ServiceOverloaded(message, scope=str(error.get("scope", "server")))
    if kind == "ServiceUnavailable" or code == 503:
        raise ServiceUnavailable(message)
    if kind == "ProtocolError":
        raise ProtocolError(message)
    raise RemoteError(kind, message, code=code)


# -- dataclass wire forms ----------------------------------------------------


def stats_to_wire(stats: PruneStats) -> dict[str, Any]:
    """JSON-safe form of one pass's :class:`PruneStats` counters."""
    return {
        "elements_in": stats.elements_in,
        "elements_out": stats.elements_out,
        "texts_in": stats.texts_in,
        "texts_out": stats.texts_out,
        "attributes_in": stats.attributes_in,
        "attributes_out": stats.attributes_out,
        "bytes_in": stats.bytes_in,
        "bytes_out": stats.bytes_out,
        "distinct_tags_in": sorted(stats.distinct_tags_in),
        "distinct_tags_out": sorted(stats.distinct_tags_out),
    }


def stats_from_wire(wire: dict[str, Any]) -> PruneStats:
    """Rebuild a :class:`PruneStats` from :func:`stats_to_wire` output."""
    data = dict(wire)
    data["distinct_tags_in"] = set(data.get("distinct_tags_in", ()))
    data["distinct_tags_out"] = set(data.get("distinct_tags_out", ()))
    return PruneStats(**data)


def extract_stats_to_wire(stats: ExtractStats) -> dict[str, Any]:
    """JSON-safe form of one extract pass's :class:`ExtractStats`."""
    return stats.as_dict()


def extract_stats_from_wire(wire: dict[str, Any]) -> ExtractStats:
    """Rebuild an :class:`ExtractStats` from its wire form (unknown keys
    rejected, as everywhere on this protocol)."""
    return ExtractStats.from_dict(wire)
