"""The projection service: resident static analysis over a socket.

The paper's pipeline is two-phase — static (DTD + queries → projector,
once per workload) and per-document (prune).  This package makes the
static phase *resident*: a long-running server holds the shared projector
cache, parsed grammars, and a persistent worker pool with compiled prune
tables pinned, so clients pay only the per-document cost per request.

Server side::

    from repro.service import ProjectionServer, ServiceConfig
    ProjectionServer(ServiceConfig(port=8410, jobs=4)).run()

(or ``repro-xml serve --port 8410 --jobs 4``).  Client side::

    from repro.service import ServiceClient
    with ServiceClient("127.0.0.1", 8410) as client:
        outcome = client.prune(xml_text, dtd=dtd_text, root="book",
                               queries=["/book/title"])

Tests and notebooks can run both halves in one process via
:func:`serve_background`.
"""

from repro.errors import (
    ProtocolError,
    RemoteError,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
)
from repro.service.client import (
    RemoteBatchOutcome,
    RemoteExtractOutcome,
    RemoteOutcome,
    ServiceClient,
)
from repro.service.config import ServiceConfig
from repro.service.protocol import DEFAULT_MAX_FRAME_BYTES
from repro.service.server import BackgroundServer, ProjectionServer, serve_background
from repro.service.workers import ResidentPool, WorkerFailure

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "BackgroundServer",
    "ProjectionServer",
    "ProtocolError",
    "RemoteBatchOutcome",
    "RemoteError",
    "RemoteExtractOutcome",
    "RemoteOutcome",
    "ResidentPool",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceUnavailable",
    "WorkerFailure",
    "serve_background",
]
