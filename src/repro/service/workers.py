"""The resident worker pool: pruning capacity that survives requests.

:mod:`repro.parallel` spins a pool up per batch and tears it down after;
the service keeps one :class:`ResidentPool` alive for its whole lifetime
so the per-request cost is a queue hop, not a pool spawn.  The pieces:

* every (grammar, projector, attribute-flag) pair a request uses is
  **pinned**: the parent compiles the :class:`~repro.projection.fastpath.
  FastPruner` once (validating the projector before any worker sees it),
  pickles it once, and workers rebuild + memoize it on first touch, keyed
  by the grammar fingerprint — the same handshake ``prune_many`` uses, so
  a grammar that does not survive the process boundary intact is refused
  per item (``fingerprint-mismatch``), never silently pruned wrong;
* pool respawns preserve the pinned set: the initializer pre-loads every
  previously pinned pair into the fresh workers, so a crash costs one
  spawn, not a cold cache;
* worker execution funnels through :func:`repro.parallel._execute_item`,
  keeping the fork-inheritance crash-injection pattern of the PR 3 tests
  working against the service too;
* forks are wrapped in :func:`_fork_quiet` — the server forks from its
  event-loop thread on respawn, which Python 3.12+ flags with a
  fork-in-multithreaded-process :class:`DeprecationWarning`; the pruning
  workers share no locks with the parent (they only read the inherited
  module state), so the warning is noise here.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import Future, ProcessPoolExecutor
from contextlib import contextmanager
from typing import Any, Iterator

from repro import obs
from repro.api import PruneOptions, PruneResult
from repro.core.cache import grammar_fingerprint
from repro.dtd.grammar import Grammar
from repro.extract.api import ExtractOptions, ExtractResult
from repro.extract.spec import ExtractSpec
from repro.parallel import (
    FINGERPRINT_MISMATCH,
    WORKER_CRASH,
    _execute_extract_item,
    _execute_item,
    _kill_processes,
    _resolve_jobs,
)
from repro.projection.fastpath import FastPruner

__all__ = ["PinKey", "ResidentPool", "WorkerFailure"]

#: What pins a compiled pruner: (grammar fingerprint, projector, flag).
PinKey = tuple[str, frozenset, bool]


class WorkerFailure(Exception):
    """A worker-side failure travelling back as data: ``kind`` is the
    worker's exception class name (or ``worker-crash`` /
    ``fingerprint-mismatch``), ``message`` its text."""

    def __init__(self, kind: str, message: str) -> None:
        self.kind = kind
        super().__init__(message)


@contextmanager
def _fork_quiet() -> Iterator[None]:
    """Silence the 3.12+ fork-in-multithreaded-process deprecation for
    one pool spawn (see the module docstring for why it is safe here)."""
    with warnings.catch_warnings():
        warnings.filterwarnings("ignore", message=".*fork", category=DeprecationWarning)
        yield


# -- worker side --------------------------------------------------------------

#: Per-worker state installed by :func:`_init_resident_worker`.
_RESIDENT_STATE: dict[str, Any] | None = None


def _pin_in_worker(pruners: dict, key: PinKey, payload: bytes) -> FastPruner | None:
    """Rebuild a shipped pruner, verify the fingerprint handshake, and
    memoize it; ``None`` when the grammar did not survive the transfer."""
    pruner: FastPruner = pickle.loads(payload)
    if grammar_fingerprint(pruner.grammar) != key[0]:
        return None
    pruners[key] = pruner
    return pruner


def _init_resident_worker(payloads: list[tuple[PinKey, bytes]], tracing: bool) -> None:
    global _RESIDENT_STATE
    pruners: dict[PinKey, FastPruner] = {}
    for key, payload in payloads:
        # A pair that fails the handshake here is simply not pinned; the
        # per-item path re-ships it and reports the mismatch as data
        # (raising would poison the whole pool, as in repro.parallel).
        _pin_in_worker(pruners, key, payload)
    sink: obs.MemorySink | None = None
    if tracing:
        sink = obs.MemorySink()
        obs.configure(sink)
    _RESIDENT_STATE = {"pruners": pruners, "sink": sink}


def _drain_resident_obs(
    state: dict[str, Any],
) -> tuple[list[dict[str, Any]], dict[str, int | float]]:
    sink: obs.MemorySink | None = state["sink"]
    if sink is None:
        return [], {}
    tracer = obs.get_tracer()
    records = list(sink.records)
    sink.records.clear()
    counters = tracer.counters
    tracer._counters.clear()
    return records, counters


def _resident_item(
    key: PinKey,
    payload: bytes,
    source: str,
    out_path: str | None,
    options: "PruneOptions | ExtractOptions",
    spec: ExtractSpec | None = None,
):
    """One request's work inside a resident worker (a prune, or — with
    ``spec`` — a tabular extraction against the same pinned pruner).

    Returns ``(error-or-None, result-or-None, records, counters, pid)``;
    like the batch pool, a bad document travels back as data so one
    hostile request cannot poison the resident pool.
    """
    state = _RESIDENT_STATE
    assert state is not None, "resident worker used before its initializer ran"
    error: tuple[str, str] | None = None
    result: "PruneResult | ExtractResult | None" = None
    pruner = state["pruners"].get(key)
    if pruner is None:
        pruner = _pin_in_worker(state["pruners"], key, payload)
    if pruner is None:
        error = (
            FINGERPRINT_MISMATCH,
            "grammar fingerprint changed across the process boundary; "
            "refusing to prune against a different grammar",
        )
    else:
        try:
            # Dispatch through this module's names (not parallel._execute)
            # so the fork-inheritance monkeypatch point stays here.
            if spec is not None:
                result = _execute_extract_item(pruner, spec, options, source, out_path)
            else:
                result = _execute_item(pruner, options, source, out_path)
            if getattr(result, "events", None) is not None:
                result.events = None  # iterators never cross the process boundary
        except Exception as exc:
            error = (type(exc).__name__, str(exc))
    records, counters = _drain_resident_obs(state)
    return error, result, records, counters, os.getpid()


# -- parent side --------------------------------------------------------------


class ResidentPool:
    """A process pool that outlives any one request.

    Not thread-safe by itself: the server drives it from one event-loop
    thread (``respawn`` is serialized behind an asyncio lock there).
    """

    def __init__(self, jobs: int | None = None, tracing: bool = False) -> None:
        self.jobs = _resolve_jobs(jobs)
        self.tracing = tracing
        self.respawns = 0
        #: Bumped on every respawn so concurrent requests that all saw the
        #: same broken pool trigger exactly one rebuild.
        self.generation = 0
        self._payloads: dict[PinKey, bytes] = {}
        self._pruners: dict[PinKey, FastPruner] = {}
        self._executor: ProcessPoolExecutor | None = None
        self._spawn()

    def _spawn(self) -> None:
        # Forked children inherit unflushed sink buffers and would write
        # those lines again; flush the parent's sinks first.
        for sink in getattr(obs.get_tracer(), "sinks", ()):
            sink.flush()
        with _fork_quiet():
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_resident_worker,
                initargs=(list(self._payloads.items()), self.tracing),
            )

    # -- pinning ---------------------------------------------------------

    def pin(
        self,
        grammar: Grammar,
        projector: "frozenset[str] | set[str]",
        prune_attributes: bool = True,
    ) -> PinKey:
        """Compile (once) and register a (grammar, projector) pair;
        returns the key requests are submitted under.  Raises in the
        parent if the projector does not cover the grammar."""
        key: PinKey = (
            grammar_fingerprint(grammar),
            frozenset(projector),
            bool(prune_attributes),
        )
        if key not in self._payloads:
            pruner = FastPruner(grammar, frozenset(projector), bool(prune_attributes))
            self._pruners[key] = pruner
            self._payloads[key] = pickle.dumps(pruner)
        return key

    def pruner(self, key: PinKey) -> FastPruner:
        """The parent-side compiled pruner for a pinned key (used for the
        fingerprint-mismatch inline fallback)."""
        return self._pruners[key]

    @property
    def pinned(self) -> int:
        return len(self._payloads)

    def pinned_for(self, fingerprint: str) -> int:
        """How many pinned pairs belong to one grammar fingerprint."""
        return sum(1 for key in self._payloads if key[0] == fingerprint)

    def unpin_grammar(self, fingerprint: str) -> int:
        """Drop every pinned pair for one grammar fingerprint; returns the
        number removed.  The next request against that grammar re-compiles
        and re-ships — this is how a dependent update invalidates resident
        state, while a proven-independent one leaves the pins alone."""
        keys = [key for key in self._payloads if key[0] == fingerprint]
        for key in keys:
            del self._payloads[key]
            self._pruners.pop(key, None)
        return len(keys)

    # -- execution -------------------------------------------------------

    def submit(
        self,
        key: PinKey,
        source: str,
        out_path: str | None,
        options: "PruneOptions | ExtractOptions",
        spec: ExtractSpec | None = None,
    ) -> Future:
        """Queue one prune (or, with ``spec``, one extraction) on the
        resident workers.  The pinned payload rides along so a worker that
        has not seen the pair yet (spawned after the pin, or freshly
        respawned) can rebuild it."""
        assert self._executor is not None
        return self._executor.submit(
            _resident_item, key, self._payloads[key], source, out_path,
            options, spec,
        )

    def respawn(self, generation: int) -> bool:
        """Tear down a broken pool and build a fresh one pre-loaded with
        every pinned pair.  No-op (returns False) when ``generation`` is
        stale — someone already respawned past the pool the caller saw."""
        if generation != self.generation:
            return False
        self.generation += 1
        self.respawns += 1
        old = self._executor
        if old is not None:
            _kill_processes(old)
            old.shutdown(wait=False, cancel_futures=True)
        self._spawn()
        return True

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
