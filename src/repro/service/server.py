"""The projection server: resident static analysis, per-request pruning.

The paper splits the pipeline into a *static* phase (parse the DTD, run
the Fig. 1/2 inference, build the projector — once per (DTD, workload)
pair) and a *per-document* phase (prune).  A one-shot CLI pays the static
phase on every invocation; :class:`ProjectionServer` keeps it resident:

* one shared, concurrency-safe :class:`~repro.core.cache.ProjectorCache`
  memoizes inference across every connection;
* parsed grammars are memoized by content hash, so thousands of requests
  shipping the same DTD text parse it once;
* pruning runs on a persistent :class:`~repro.service.workers.
  ResidentPool` whose workers hold the compiled prune tables pinned;
* admission control bounds the work the server accepts: a server-wide
  in-flight cap (structured 429-style refusal when full — never a hang)
  and a per-connection pipelining cap;
* SIGTERM/SIGINT drains gracefully: stop accepting, refuse new frames
  with a structured 503, finish every admitted request, flush obs sinks,
  exit 0.

Everything reports through :mod:`repro.obs`: a ``service.request`` span
per admitted request (tagged with connection and request ids), the
``service.queue_depth`` gauge, and ``service.requests`` /
``service.refusals`` / ``service.respawns`` counters.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import itertools
import os
import signal
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import Any, Callable

from repro import obs
from repro.api import PruneOptions, PruneResult
from repro.core.cache import ProjectorCache, default_cache, grammar_fingerprint
from repro.dtd.grammar import Grammar, grammar_from_text
from repro.errors import (
    ProtocolError,
    ReproError,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
)
from repro.extract.api import ExtractOptions, ExtractResult
from repro.extract.spec import ExtractSpec
from repro.limits import resolve_limits
from repro.parallel import FINGERPRINT_MISMATCH, WORKER_CRASH, _execute
from repro.service.config import ServiceConfig
from repro.service.protocol import (
    LEDGER_HIT,
    LEDGER_RECORDED,
    OPS,
    error_to_wire,
    extract_stats_to_wire,
    read_frame,
    stats_to_wire,
)
from repro.service.workers import ResidentPool, WorkerFailure
from repro.static.independence import independent

__all__ = ["BackgroundServer", "ProjectionServer", "serve_background"]


class _Connection:
    """Per-connection bookkeeping: id, write serialization, in-flight cap."""

    __slots__ = ("id", "writer", "lock", "inflight")

    def __init__(self, conn_id: int, writer: asyncio.StreamWriter) -> None:
        self.id = conn_id
        self.writer = writer
        self.lock = asyncio.Lock()
        self.inflight = 0

    async def send(self, payload: dict[str, Any]) -> None:
        from repro.service.protocol import encode_frame

        async with self.lock:
            self.writer.write(encode_frame(payload))
            with contextlib.suppress(ConnectionError):
                await self.writer.drain()


class ProjectionServer:
    """One long-running projection service (see the module docstring).

    Construct (the resident pool forks here), :meth:`start` inside a
    running event loop, then either :meth:`serve_until_drained` or drive
    :meth:`drain` yourself.  :meth:`run` is the blocking CLI entry point;
    :func:`serve_background` the in-process (test/notebook) one.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        cache: ProjectorCache | None = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.cache = cache if cache is not None else default_cache()
        self.pool = ResidentPool(self.config.jobs, tracing=self.config.tracing)
        self._ledger = None
        if self.config.ledger is not None:
            from repro.ledger import Ledger

            self._ledger = Ledger(self.config.ledger)
        self.port: int | None = None
        self._grammars: dict[tuple, Grammar] = {}
        self._limits = self.config.resolved_limits()
        self._inflight = 0
        self._inflight_high_water = 0
        self._requests_served = 0
        self._static_checks = 0
        self._static_retained = 0
        self._static_invalidated = 0
        self._refusals = 0
        self._refusals_by_scope: dict[str, int] = {}
        self._latency = obs.Histogram("service.request_seconds")
        self._draining = False
        self._started = 0.0
        self._conn_ids = itertools.count(1)
        self._req_seq = itertools.count(1)
        self._connections: set[_Connection] = set()
        self._request_tasks: set[asyncio.Task] = set()
        self._server: asyncio.base_events.Server | None = None
        self._drain_requested: asyncio.Event | None = None
        self._drained: asyncio.Event | None = None
        self._respawn_lock: asyncio.Lock | None = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> "ProjectionServer":
        """Bind and start accepting (call inside a running loop)."""
        self._drain_requested = asyncio.Event()
        self._drained = asyncio.Event()
        self._respawn_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.monotonic()
        return self

    def request_drain(self) -> None:
        """Ask the serve loop to drain (signal handlers land here)."""
        assert self._drain_requested is not None
        self._drain_requested.set()

    async def serve_until_drained(self) -> None:
        """Serve until :meth:`request_drain` fires, then drain fully."""
        assert self._drain_requested is not None
        await self._drain_requested.wait()
        await self.drain()

    async def drain(self) -> None:
        """Stop accepting, finish in-flight work, flush obs, shut the
        pool down.  Idempotent; concurrent callers wait for the first."""
        assert self._drained is not None
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        while self._request_tasks:
            await asyncio.gather(*list(self._request_tasks), return_exceptions=True)
        for conn in list(self._connections):
            with contextlib.suppress(Exception):
                conn.writer.close()
        await asyncio.to_thread(self.pool.shutdown)
        if self._ledger is not None:
            self._ledger.close()
        obs.flush()
        self._drained.set()

    def run(self, ready: "Callable[[ProjectionServer], None] | None" = None) -> int:
        """Blocking entry point: serve until SIGTERM/SIGINT, drain, return
        0.  ``ready`` is called (inside the loop) once the port is bound."""

        async def main() -> None:
            await self.start()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, RuntimeError):
                    loop.add_signal_handler(signum, self.request_drain)
            if ready is not None:
                ready(self)
            await self.serve_until_drained()

        asyncio.run(main())
        return 0

    # -- connection handling ---------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(next(self._conn_ids), writer)
        self._connections.add(conn)
        try:
            while True:
                try:
                    frame = await read_frame(reader, self.config.max_frame_bytes)
                except ProtocolError as exc:
                    # The stream position is unrecoverable: answer once,
                    # then drop the connection.
                    await conn.send({"id": None, "ok": False, "error": error_to_wire(exc)})
                    break
                if frame is None:
                    break
                await self._dispatch(conn, frame)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(conn)
            with contextlib.suppress(Exception):
                writer.close()

    async def _refuse(
        self, conn: _Connection, req_id: Any, error: ServiceError
    ) -> None:
        self._refusals += 1
        scope = getattr(error, "scope", None) or (
            "draining" if isinstance(error, ServiceUnavailable) else "server"
        )
        self._refusals_by_scope[scope] = self._refusals_by_scope.get(scope, 0) + 1
        obs.count("service.refusals")
        await conn.send({"id": req_id, "ok": False, "error": error_to_wire(error)})

    async def _dispatch(self, conn: _Connection, frame: dict[str, Any]) -> None:
        req_id = frame.get("id")
        op = frame.get("op")
        if req_id is None or not isinstance(req_id, (int, str)):
            await conn.send(
                {"id": None, "ok": False,
                 "error": error_to_wire(ProtocolError("request is missing an id"))}
            )
            return
        if op not in OPS:
            await conn.send(
                {"id": req_id, "ok": False,
                 "error": error_to_wire(ProtocolError(f"unknown operation {op!r}"))}
            )
            return

        # health/stats answer inline on the loop — they must stay
        # observable while the queue is full or the server drains.
        if op == "health":
            self._requests_served += 1
            await conn.send({"id": req_id, "ok": True, "result": self._health()})
            return
        if op == "stats":
            self._requests_served += 1
            await conn.send({"id": req_id, "ok": True, "result": self._stats()})
            return

        # -- admission control ------------------------------------------
        if self._draining:
            await self._refuse(
                conn, req_id, ServiceUnavailable("server is draining")
            )
            return
        weight = (
            max(1, len(frame.get("sources", ()))) if op == "prune_batch" else 1
        )
        if self._inflight + weight > self.config.queue_limit:
            await self._refuse(
                conn, req_id,
                ServiceOverloaded(
                    f"request queue is full ({self._inflight} in flight, "
                    f"limit {self.config.queue_limit})",
                    scope="server",
                ),
            )
            return
        if conn.inflight >= self.config.per_connection:
            await self._refuse(
                conn, req_id,
                ServiceOverloaded(
                    f"connection has {conn.inflight} requests in flight "
                    f"(cap {self.config.per_connection})",
                    scope="connection",
                ),
            )
            return

        self._inflight += weight
        conn.inflight += 1
        if self._inflight > self._inflight_high_water:
            self._inflight_high_water = self._inflight
        obs.gauge("service.queue_depth", self._inflight)
        task = asyncio.create_task(
            self._serve_request(conn, req_id, op, frame, weight)
        )
        self._request_tasks.add(task)
        task.add_done_callback(self._request_tasks.discard)

    async def _serve_request(
        self, conn: _Connection, req_id: Any, op: str, frame: dict[str, Any],
        weight: int,
    ) -> None:
        span = obs.span(
            "service.request",
            op=op, connection=conn.id, request=next(self._req_seq),
        ).start()
        admitted = time.perf_counter()
        try:
            try:
                if op == "analyze":
                    result = await self._do_analyze(frame)
                elif op == "prune":
                    result = await self._do_prune(frame)
                elif op == "extract":
                    result = await self._do_extract(frame)
                elif op == "check_update":
                    result = await self._do_check_update(frame)
                else:
                    result = await self._do_prune_batch(frame)
                response: dict[str, Any] = {"id": req_id, "ok": True, "result": result}
            except WorkerFailure as exc:
                span.set(error=exc.kind)
                response = {
                    "id": req_id, "ok": False,
                    "error": {
                        "type": exc.kind,
                        "code": 500 if exc.kind == WORKER_CRASH else 422,
                        "message": str(exc),
                    },
                }
            except Exception as exc:
                span.set(error=type(exc).__name__)
                response = {"id": req_id, "ok": False, "error": error_to_wire(exc)}
            await conn.send(response)
        finally:
            self._inflight -= weight
            conn.inflight -= 1
            self._requests_served += 1
            self._latency.observe(time.perf_counter() - admitted)
            obs.gauge("service.queue_depth", self._inflight)
            obs.count("service.requests")
            span.finish()

    # -- request bodies --------------------------------------------------

    def _health(self) -> dict[str, Any]:
        return {
            "status": "draining" if self._draining else "serving",
            "pid": os.getpid(),
            "uptime": time.monotonic() - self._started,
            "inflight": self._inflight,
        }

    def _stats(self) -> dict[str, Any]:
        cache = self.cache.stats
        return {
            "uptime": time.monotonic() - self._started,
            "requests_served": self._requests_served,
            "refusals": self._refusals,
            "refusals_by_scope": dict(self._refusals_by_scope),
            "inflight": self._inflight,
            "queue_limit": self.config.queue_limit,
            "per_connection": self.config.per_connection,
            "queue": {
                "depth": self._inflight,
                "high_water": self._inflight_high_water,
                "limit": self.config.queue_limit,
            },
            "latency": self._latency.snapshot(),
            "connections": len(self._connections),
            "draining": self._draining,
            "cache": {**cache.as_dict(), "entries": len(self.cache)},
            "grammars": len(self._grammars),
            "pool": {
                "jobs": self.pool.jobs,
                "pinned": self.pool.pinned,
                "respawns": self.pool.respawns,
            },
            "static": {
                "checks": self._static_checks,
                "retained": self._static_retained,
                "invalidated": self._static_invalidated,
            },
            "ledger": {
                "enabled": self._ledger is not None,
                "entries": len(self._ledger) if self._ledger is not None else 0,
                "hits": self._ledger.hits if self._ledger is not None else 0,
                "records": (
                    self._ledger.appended if self._ledger is not None else 0
                ),
            },
        }

    def _grammar_from(self, frame: dict[str, Any]) -> Grammar:
        """Resolve (and memoize, by content hash) the request's grammar."""
        spec = frame.get("grammar")
        if not isinstance(spec, dict):
            raise ProtocolError("request is missing its grammar object")
        if spec.get("xmark"):
            key: tuple = ("xmark",)
            if key not in self._grammars:
                from repro.workloads.xmark import xmark_grammar

                self._grammars[key] = xmark_grammar()
            return self._grammars[key]
        wire = spec.get("grammar")
        if wire is not None:
            # A pre-built grammar (e.g. client-side inference) shipped in
            # its wire form; memoized by its canonical hash so repeated
            # requests pin the same object.
            if not isinstance(wire, dict):
                raise ProtocolError("'grammar' payload must be an object")
            from repro.ledger.canonical import hash_canonical
            from repro.schema.wire import grammar_from_wire

            key = ("wire", hash_canonical(wire))
            if key not in self._grammars:
                try:
                    self._grammars[key] = grammar_from_wire(wire)
                except ReproError as exc:
                    raise ProtocolError(f"bad grammar payload: {exc}") from None
            return self._grammars[key]
        xsd = spec.get("xsd")
        if isinstance(xsd, str):
            from repro.schema.xsd import grammar_from_xsd

            xsd_root = spec.get("root")
            if xsd_root is not None and not isinstance(xsd_root, str):
                raise ProtocolError("grammar 'root' must be a string tag")
            key = (
                "xsd",
                hashlib.sha256(xsd.encode("utf-8")).hexdigest(),
                xsd_root,
            )
            if key not in self._grammars:
                self._grammars[key] = grammar_from_xsd(xsd, xsd_root)
            return self._grammars[key]
        dtd = spec.get("dtd")
        root = spec.get("root")
        if not isinstance(dtd, str) or not isinstance(root, str):
            raise ProtocolError(
                "grammar object needs 'dtd' text and 'root' (or 'xsd' "
                "text, a 'grammar' wire payload, or 'xmark': true)"
            )
        key = ("dtd", hashlib.sha256(dtd.encode("utf-8")).hexdigest(), root)
        if key not in self._grammars:
            self._grammars[key] = grammar_from_text(dtd, root)
        return self._grammars[key]

    def _projector_from(
        self, frame: dict[str, Any], grammar: Grammar
    ) -> frozenset[str]:
        names = frame.get("projector")
        if names is not None:
            if not isinstance(names, list):
                raise ProtocolError("'projector' must be a list of names")
            return grammar.check_projector(frozenset(names))
        queries = frame.get("queries")
        if isinstance(queries, str):
            queries = [queries]
        if not isinstance(queries, list) or not all(
            isinstance(q, str) for q in queries
        ):
            raise ProtocolError("request needs 'queries' (or a 'projector' list)")
        return self.cache.analyze(grammar, queries).projector

    def _options_from(self, frame: dict[str, Any]) -> PruneOptions:
        wire = frame.get("options", {})
        if not isinstance(wire, dict):
            raise ProtocolError("'options' must be an object")
        try:
            options = PruneOptions.from_wire(wire)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad options: {exc}") from None
        # Clamp to the server profile: clients tighten, never relax.
        effective = self._limits.intersect(resolve_limits(options.limits))
        return replace(options, limits=effective)

    def _extract_options_from(self, frame: dict[str, Any]) -> ExtractOptions:
        wire = frame.get("options", {})
        if not isinstance(wire, dict):
            raise ProtocolError("'options' must be an object")
        try:
            options = ExtractOptions.from_wire(wire)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad options: {exc}") from None
        effective = self._limits.intersect(resolve_limits(options.limits))
        return replace(options, limits=effective)

    @staticmethod
    def _source_from(item: Any) -> str:
        """One prunable source: inline markup or a server-side path."""
        if isinstance(item, str):
            return item
        if isinstance(item, dict) and isinstance(item.get("path"), str):
            return item["path"]
        raise ProtocolError(
            "each source must be markup/path text or {'path': ...}"
        )

    async def _do_analyze(self, frame: dict[str, Any]) -> dict[str, Any]:
        grammar = self._grammar_from(frame)
        queries = frame.get("queries")
        if isinstance(queries, str):
            queries = [queries]
        if not isinstance(queries, list):
            raise ProtocolError("analyze needs a 'queries' list")
        result = self.cache.analyze(grammar, queries)
        return {
            "projector": sorted(result.projector),
            "per_query_sizes": [len(p) for p in result.per_query],
            "seconds": result.span.seconds if result.span is not None else 0.0,
            "cache": self.cache.stats.as_dict(),
        }

    async def _do_prune(self, frame: dict[str, Any]) -> dict[str, Any]:
        grammar = self._grammar_from(frame)
        projector = self._projector_from(frame, grammar)
        options = self._options_from(frame)
        source = self._source_from(frame.get("source"))
        out_path = frame.get("out_path")
        if out_path is not None and not isinstance(out_path, str):
            raise ProtocolError("'out_path' must be a string path")
        started = time.perf_counter()
        led = None
        if self._ledger is not None:
            led = await asyncio.to_thread(
                self._ledger_begin, frame, grammar, options, source,
                projector=projector,
            )
            if led is not None and not options.validate:
                served = await asyncio.to_thread(
                    self._ledger_serve, led[0], out_path, "prune"
                )
                if served is not None:
                    served["seconds"] = time.perf_counter() - started
                    return served
        key = self.pool.pin(grammar, projector, options.prune_attributes)
        result, worker = await self._execute_pooled(key, source, out_path, options)
        payload: dict[str, Any] = {
            "stats": stats_to_wire(result.stats),
            "seconds": time.perf_counter() - started,
            "worker": worker,
        }
        if result.text is not None:
            payload["text"] = result.text
        if result.output_path is not None:
            payload["output_path"] = result.output_path
        if led is not None:
            await asyncio.to_thread(self._ledger_record, led, "prune", result)
            payload["ledger"] = LEDGER_RECORDED
        return payload

    async def _do_extract(self, frame: dict[str, Any]) -> dict[str, Any]:
        grammar = self._grammar_from(frame)
        spec_wire = frame.get("spec")
        if not isinstance(spec_wire, dict):
            raise ProtocolError("extract needs a 'spec' object")
        try:
            spec = ExtractSpec.from_wire(spec_wire)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad spec: {exc}") from None
        options = self._extract_options_from(frame)
        # The spec's union projector resolves through the shared cache —
        # repeated workloads hit on the spec's content fingerprint.
        projector = self.cache.projector_for_spec(grammar, spec)
        source = self._source_from(frame.get("source"))
        out_path = frame.get("out_path")
        if out_path is not None and not isinstance(out_path, str):
            raise ProtocolError("'out_path' must be a string path")
        started = time.perf_counter()
        led = None
        if self._ledger is not None:
            led = await asyncio.to_thread(
                self._ledger_begin, frame, grammar, options, source, spec=spec
            )
            if led is not None:
                served = await asyncio.to_thread(
                    self._ledger_serve, led[0], out_path, "extract"
                )
                if served is not None:
                    served["seconds"] = time.perf_counter() - started
                    return served
        key = self.pool.pin(grammar, projector)
        result, worker = await self._execute_pooled(
            key, source, out_path, options, spec=spec
        )
        assert isinstance(result, ExtractResult)
        payload: dict[str, Any] = {
            "stats": extract_stats_to_wire(result.stats),
            "seconds": time.perf_counter() - started,
            "worker": worker,
        }
        if result.text is not None:
            payload["text"] = result.text
        if result.output_path is not None:
            payload["output_path"] = result.output_path
        if led is not None:
            await asyncio.to_thread(self._ledger_record, led, "extract", result)
            payload["ledger"] = LEDGER_RECORDED
        return payload

    async def _do_check_update(self, frame: dict[str, Any]) -> dict[str, Any]:
        """The update-independence judgment, wired into pin retention:
        an update proven independent of the workload's projector leaves
        every resident payload pinned (the compiled state stays warm); a
        possibly-dependent one unpins the grammar's pairs so the next
        request re-establishes them."""
        grammar = self._grammar_from(frame)
        update_paths = frame.get("update_paths")
        if isinstance(update_paths, str):
            update_paths = [update_paths]
        if not isinstance(update_paths, list) or not all(
            isinstance(path, str) for path in update_paths
        ):
            raise ProtocolError("check_update needs an 'update_paths' list")
        projector = self._projector_from(frame, grammar)
        report = independent(grammar, update_paths, projector, cache=self.cache)
        fingerprint = grammar_fingerprint(grammar)
        retained = invalidated = 0
        if report.independent:
            retained = self.pool.pinned_for(fingerprint)
            if retained:
                obs.count("static.cache_retained", retained)
        else:
            invalidated = self.pool.unpin_grammar(fingerprint)
        self._static_checks += 1
        self._static_retained += retained
        self._static_invalidated += invalidated
        return {
            "independent": report.independent,
            "reason": report.reason,
            "impact": sorted(report.impact),
            "overlap": sorted(report.overlap),
            "projector": sorted(report.projector),
            "retained": retained,
            "invalidated": invalidated,
        }

    async def _do_prune_batch(self, frame: dict[str, Any]) -> dict[str, Any]:
        from repro.parallel import _output_paths
        from repro.projection.stats import PruneStats

        grammar = self._grammar_from(frame)
        projector = self._projector_from(frame, grammar)
        options = self._options_from(frame)
        sources_wire = frame.get("sources")
        if not isinstance(sources_wire, list):
            raise ProtocolError("prune_batch needs a 'sources' list")
        sources = [self._source_from(item) for item in sources_wire]
        out_dir = frame.get("out_dir")
        out_paths: list[str | None]
        if out_dir is not None:
            if not isinstance(out_dir, str):
                raise ProtocolError("'out_dir' must be a string path")
            os.makedirs(out_dir, exist_ok=True)
            out_paths = list(_output_paths(sources, out_dir))
        else:
            out_paths = [None] * len(sources)
        key = self.pool.pin(grammar, projector, options.prune_attributes)
        started = time.perf_counter()

        async def one(source: str, out_path: str | None) -> dict[str, Any]:
            try:
                result, worker = await self._execute_pooled(
                    key, source, out_path, options
                )
            except WorkerFailure as exc:
                return {
                    "ok": False,
                    "error": {
                        "type": exc.kind,
                        "code": 500 if exc.kind == WORKER_CRASH else 422,
                        "message": str(exc),
                    },
                }
            except Exception as exc:
                return {"ok": False, "error": error_to_wire(exc)}
            item: dict[str, Any] = {
                "ok": True, "stats": stats_to_wire(result.stats), "worker": worker,
            }
            if result.text is not None:
                item["text"] = result.text
            if result.output_path is not None:
                item["output_path"] = result.output_path
            return item

        items = await asyncio.gather(
            *(one(source, out) for source, out in zip(sources, out_paths))
        )
        merged = PruneStats()
        for item in items:
            if item["ok"]:
                from repro.service.protocol import stats_from_wire

                merged.merge(stats_from_wire(item["stats"]))
        return {
            "items": list(items),
            "stats": stats_to_wire(merged),
            "succeeded": sum(1 for item in items if item["ok"]),
            "seconds": time.perf_counter() - started,
        }

    # -- ledger plumbing -------------------------------------------------

    def _ledger_begin(
        self,
        frame: dict[str, Any],
        grammar: Grammar,
        options: "PruneOptions | ExtractOptions",
        source: str,
        projector: "frozenset[str] | None" = None,
        spec: ExtractSpec | None = None,
    ) -> "tuple[tuple[str, str, str, str], dict[str, Any]] | None":
        """Fingerprint one admitted request for the attestation ledger
        (blocking: hashes the source — call via ``asyncio.to_thread``).
        Provenance keeps the request's own grammar object (inline DTD
        text or the XMark marker), so ``verify-ledger`` can replay
        server-recorded entries with no out-of-band grammar."""
        from repro.api import _ledger_begin
        from repro.ledger.canonical import hash_canonical

        is_path = not source.lstrip().startswith("<")
        workload_fp = None
        prov: dict[str, Any] = {}
        gspec = frame.get("grammar")
        if isinstance(gspec, dict):
            if gspec.get("xmark"):
                prov["grammar"] = {"xmark": True}
            elif isinstance(gspec.get("grammar"), dict):
                prov["grammar"] = {"grammar": gspec["grammar"]}
            elif isinstance(gspec.get("xsd"), str):
                prov["grammar"] = {
                    "xsd": gspec["xsd"], "root": gspec.get("root"),
                }
            elif isinstance(gspec.get("dtd"), str):
                prov["grammar"] = {
                    "dtd": gspec["dtd"], "root": gspec.get("root"),
                }
        if spec is not None:
            assert isinstance(options, ExtractOptions)
            workload_fp = hash_canonical(
                {"format": options.format, "spec": spec.fingerprint()}
            )
            prov["spec"] = spec.to_wire()
            prov["format"] = options.format
        try:
            return _ledger_begin(
                self._ledger, source, grammar, options,
                resolve_limits(options.limits), prov, is_path, projector,
                workload_fp=workload_fp,
            )
        except OSError:
            # An unreadable path source fails identically in the worker,
            # with the structured error the client expects — let that
            # path produce it rather than dying here.
            return None

    def _ledger_serve(
        self,
        key: "tuple[str, str, str, str]",
        out_path: str | None,
        op: str,
    ) -> dict[str, Any] | None:
        """Serve a recorded result without touching the pool (blocking:
        verifies the stored bytes and may write ``out_path``)."""
        assert self._ledger is not None
        hit = self._ledger.fetch(key)
        if hit is None:
            return None
        entry, stored = hit
        from repro.ledger.ledger import decode_stats

        stats = decode_stats(entry.stats)
        text = stored["text"]
        payload: dict[str, Any] = {
            "stats": (
                stats_to_wire(stats) if op == "prune"
                else extract_stats_to_wire(stats)
            ),
            "worker": None,
            "ledger": LEDGER_HIT,
        }
        if out_path is not None:
            from repro.projection.streaming import _open_output

            with _open_output(out_path) as sink:
                sink.write(text)
            payload["output_path"] = out_path
        else:
            payload["text"] = text
        return payload

    def _ledger_record(
        self,
        led: "tuple[tuple[str, str, str, str], dict[str, Any]]",
        op: str,
        result: "PruneResult | ExtractResult",
    ) -> None:
        """Append the attestation for a completed pooled run (blocking:
        hashes the output and fsyncs the ledger)."""
        from repro.api import _ledger_record

        assert self._ledger is not None
        if result.text is not None:
            _ledger_record(
                self._ledger, led, op, result.stats, text=result.text,
                records=getattr(result, "records", None),
            )
        elif result.output_path is not None:
            _ledger_record(
                self._ledger, led, op, result.stats,
                output_path=result.output_path,
            )

    # -- pool plumbing ---------------------------------------------------

    async def _execute_pooled(
        self,
        key,
        source: str,
        out_path: str | None,
        options: "PruneOptions | ExtractOptions",
        spec: ExtractSpec | None = None,
    ) -> "tuple[PruneResult | ExtractResult, int | None]":
        """Run one prune (or, with ``spec``, one extraction) on the
        resident pool.

        A crashed worker triggers one pool respawn (shared across every
        request that saw the same broken generation) and one retry; a
        fingerprint-mismatch refusal degrades to an in-process run with
        the parent's own compiled pruner, exactly like ``prune_many``.
        """
        for attempt in (0, 1):
            generation = self.pool.generation
            try:
                payload = await asyncio.wrap_future(
                    self.pool.submit(key, source, out_path, options, spec)
                )
            except (BrokenProcessPool, OSError, RuntimeError) as exc:
                await self._respawn(generation)
                if attempt == 0:
                    continue
                raise WorkerFailure(
                    WORKER_CRASH, str(exc) or type(exc).__name__
                ) from None
            error, result, records, counters, pid = payload
            tracer = obs.get_tracer()
            if tracer.enabled and (records or counters):
                for record in records:
                    record.setdefault("attrs", {})["worker"] = pid
                tracer.absorb(records, counters)
            if error is None:
                assert result is not None
                return result, pid
            if error[0] == FINGERPRINT_MISMATCH:
                return (
                    await self._run_inline(key, source, out_path, options, spec),
                    None,
                )
            raise WorkerFailure(error[0], error[1])
        raise AssertionError("unreachable")  # pragma: no cover

    async def _run_inline(
        self,
        key,
        source: str,
        out_path: str | None,
        options: "PruneOptions | ExtractOptions",
        spec: ExtractSpec | None = None,
    ) -> "PruneResult | ExtractResult":
        """Degraded path for fingerprint-mismatch items: the parent's own
        grammar is trustworthy — run on a thread with the event
        pipeline (the concurrency-safe cache and pure pruners make this
        thread-safe)."""
        obs.count("service.fingerprint_fallbacks")
        pruner = self.pool.pruner(key)
        return await asyncio.to_thread(
            _execute, pruner, replace(options, fast=False), spec, source, out_path
        )

    async def _respawn(self, generation: int) -> None:
        assert self._respawn_lock is not None
        async with self._respawn_lock:
            if await asyncio.to_thread(self.pool.respawn, generation):
                obs.count("service.respawns")


# -- in-process serving (tests, notebooks, docs) -----------------------------


class BackgroundServer:
    """Runs a :class:`ProjectionServer` on a daemon thread with its own
    event loop.  Use as a context manager; ``server.port`` is bound once
    ``__enter__`` returns, and exit drains gracefully."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        cache: ProjectorCache | None = None,
    ) -> None:
        # Constructing here (caller's thread) forks the resident pool
        # before any helper thread exists.
        self.server = ProjectionServer(config, cache=cache)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None

    @property
    def port(self) -> int:
        assert self.server.port is not None, "server not started"
        return self.server.port

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServiceError("background server did not start within 30s")
        if self._error is not None:
            raise ServiceError(f"background server failed to start: {self._error}")
        return self

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - surfaced via start()
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server.serve_until_drained()

    def stop(self) -> None:
        """Drain and join (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            return
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self.server.request_drain)
        self._thread.join(timeout=30)
        if self._thread.is_alive():  # pragma: no cover - drain wedged
            raise ServiceError("background server did not drain within 30s")

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def serve_background(
    config: ServiceConfig | None = None,
    cache: ProjectorCache | None = None,
) -> BackgroundServer:
    """A started-on-entry background server::

        with serve_background(ServiceConfig(port=0, jobs=2)) as server:
            client = ServiceClient("127.0.0.1", server.port)
    """
    return BackgroundServer(config, cache=cache)
