"""Blocking client for the projection service.

:class:`ServiceClient` speaks the frame protocol over one TCP connection
and mirrors the :func:`repro.prune` facade: pass a document (markup or a
path), a grammar spec, and queries or a projector, get text/stats back.
Server-side refusals re-raise locally as their own classes
(:class:`~repro.errors.ServiceOverloaded`,
:class:`~repro.errors.ServiceUnavailable`) so callers can back off;
everything else surfaces as :class:`~repro.errors.RemoteError`.

Non-path document sources are read client-side and shipped as markup, so
the client works against a server on another machine; pass
``source_path=...`` instead to make the *server* open the file (same-host
deployments skip shipping the document over the socket).
"""

from __future__ import annotations

import itertools
import socket
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.api import PruneOptions, _is_markup
from repro.errors import ProtocolError, ServiceError
from repro.extract.api import ExtractOptions
from repro.extract.spec import ExtractSpec
from repro.extract.stats import ExtractStats
from repro.limits import Limits
from repro.projection.stats import PruneStats
from repro.service.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    extract_stats_from_wire,
    raise_remote,
    recv_frame,
    send_frame,
    stats_from_wire,
)

__all__ = [
    "RemoteBatchOutcome",
    "RemoteExtractOutcome",
    "RemoteOutcome",
    "ServiceClient",
]


@dataclass(slots=True)
class RemoteOutcome:
    """One remote prune's outcome: the service-side result, locally typed.

    ``ledger`` reports what a ledger-enabled server did with the request:
    ``"hit"`` (served from the content-addressed store), ``"recorded"``
    (executed, attestation appended), or ``None`` (no ledger / unhashable
    source)."""

    stats: PruneStats
    text: str | None = None
    output_path: str | None = None
    seconds: float = 0.0
    worker: int | None = None
    ledger: str | None = None


@dataclass(slots=True)
class RemoteExtractOutcome:
    """One remote extraction's outcome (``text`` is the encoded JSONL/CSV
    unless the server wrote to ``out_path``)."""

    stats: ExtractStats
    text: str | None = None
    output_path: str | None = None
    seconds: float = 0.0
    worker: int | None = None
    ledger: str | None = None


@dataclass(slots=True)
class RemoteBatchOutcome:
    """A ``prune_batch`` outcome: per-item results plus merged stats."""

    items: list["RemoteOutcome | ServiceError"]
    stats: PruneStats = field(default_factory=PruneStats)
    succeeded: int = 0
    seconds: float = 0.0


class ServiceClient:
    """One blocking connection to a :class:`~repro.service.server.
    ProjectionServer`.  Safe for sequential use from one thread; open one
    client per thread for concurrency (the server multiplexes)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float | None = 60.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self._ids = itertools.count(1)
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    @classmethod
    def from_address(cls, address: str, **kwargs: Any) -> "ServiceClient":
        """Connect to a ``host:port`` string (the CLI's ``--server`` form)."""
        host, sep, port = address.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(f"expected HOST:PORT, got {address!r}")
        return cls(host or "127.0.0.1", int(port), **kwargs)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- plumbing --------------------------------------------------------

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """One round trip: send ``op``, return the ``result`` object or
        raise the wire error as a local exception."""
        req_id = next(self._ids)
        send_frame(self._sock, {"id": req_id, "op": op, **fields})
        while True:
            response = recv_frame(self._sock, self.max_frame_bytes)
            if response is None:
                raise ProtocolError("server closed the connection mid request")
            if response.get("id") == req_id:
                break
            # A response to an id we never sent (or a broadcast error for
            # an unparseable frame) is a protocol breach on this socket.
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match request {req_id}"
            )
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        raise_remote(response.get("error") or {})
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _grammar_spec(
        dtd: str | None,
        dtd_path: str | None,
        root: str | None,
        xmark: bool,
        xsd: str | None = None,
        xsd_path: str | None = None,
        grammar: Any = None,
    ) -> dict[str, Any]:
        if xmark:
            return {"xmark": True}
        if grammar is not None:
            # A grammar object (e.g. an InferredGrammar) ships as its wire
            # form so the server can pin it like any other grammar.
            from repro.dtd.grammar import Grammar

            if isinstance(grammar, Grammar):
                from repro.schema.wire import grammar_to_wire

                grammar = grammar_to_wire(grammar)
            return {"grammar": grammar}
        if xsd_path is not None:
            with open(xsd_path, "r", encoding="utf-8") as handle:
                xsd = handle.read()
        if xsd is not None:
            spec: dict[str, Any] = {"xsd": xsd}
            if root is not None:
                spec["root"] = root
            return spec
        if dtd_path is not None:
            with open(dtd_path, "r", encoding="utf-8") as handle:
                dtd = handle.read()
        if dtd is None or root is None:
            raise ValueError(
                "a grammar is required: pass dtd=/dtd_path= and root=, "
                "xsd=/xsd_path=, grammar=, or xmark=True"
            )
        return {"dtd": dtd, "root": root}

    @staticmethod
    def _source_field(source: str | None, source_path: str | None) -> Any:
        if (source is None) == (source_path is None):
            raise ValueError("pass exactly one of source= or source_path=")
        if source_path is not None:
            return {"path": source_path}
        assert source is not None
        if not _is_markup(source):
            # A local path: read it here so the server need not share our
            # filesystem.
            with open(source, "r", encoding="utf-8") as handle:
                return handle.read()
        return source

    @staticmethod
    def _common_fields(
        queries: "Sequence[str] | str | None",
        projector: "Iterable[str] | None",
        options: PruneOptions | None,
        limits: "Limits | str | None",
    ) -> dict[str, Any]:
        fields: dict[str, Any] = {}
        if projector is not None:
            fields["projector"] = sorted(projector)
        elif queries is not None:
            fields["queries"] = [queries] if isinstance(queries, str) else list(queries)
        else:
            raise ValueError("pass queries= or projector=")
        if options is None:
            options = PruneOptions()
        if limits is not None:
            from dataclasses import replace

            options = replace(options, limits=limits)
        wire = options.to_wire()
        if wire:
            fields["options"] = wire
        return fields

    @staticmethod
    def _outcome(result: dict[str, Any]) -> RemoteOutcome:
        return RemoteOutcome(
            stats=stats_from_wire(result.get("stats", {})),
            text=result.get("text"),
            output_path=result.get("output_path"),
            seconds=float(result.get("seconds", 0.0)),
            worker=result.get("worker"),
            ledger=result.get("ledger"),
        )

    # -- operations ------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self.request("health")

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    def analyze(
        self,
        queries: "Sequence[str] | str",
        *,
        dtd: str | None = None,
        dtd_path: str | None = None,
        root: str | None = None,
        xmark: bool = False,
        xsd: str | None = None,
        xsd_path: str | None = None,
        grammar: Any = None,
    ) -> dict[str, Any]:
        """Run the static phase remotely; returns the wire result (the
        union projector as a sorted list, per-query sizes, timings)."""
        return self.request(
            "analyze",
            grammar=self._grammar_spec(
                dtd, dtd_path, root, xmark, xsd, xsd_path, grammar
            ),
            queries=[queries] if isinstance(queries, str) else list(queries),
        )

    def prune(
        self,
        source: str | None = None,
        *,
        source_path: str | None = None,
        queries: "Sequence[str] | str | None" = None,
        projector: "Iterable[str] | None" = None,
        dtd: str | None = None,
        dtd_path: str | None = None,
        root: str | None = None,
        xmark: bool = False,
        xsd: str | None = None,
        xsd_path: str | None = None,
        grammar: Any = None,
        options: PruneOptions | None = None,
        limits: "Limits | str | None" = None,
        out_path: str | None = None,
    ) -> RemoteOutcome:
        """Prune one document remotely (the service twin of
        :func:`repro.prune`)."""
        fields = self._common_fields(queries, projector, options, limits)
        fields["grammar"] = self._grammar_spec(
            dtd, dtd_path, root, xmark, xsd, xsd_path, grammar
        )
        fields["source"] = self._source_field(source, source_path)
        if out_path is not None:
            fields["out_path"] = out_path
        return self._outcome(self.request("prune", **fields))

    def extract(
        self,
        source: str | None = None,
        *,
        source_path: str | None = None,
        spec: ExtractSpec,
        dtd: str | None = None,
        dtd_path: str | None = None,
        root: str | None = None,
        xmark: bool = False,
        xsd: str | None = None,
        xsd_path: str | None = None,
        grammar: Any = None,
        options: ExtractOptions | None = None,
        limits: "Limits | str | None" = None,
        out_path: str | None = None,
    ) -> RemoteExtractOutcome:
        """Extract one document's records remotely (the service twin of
        :func:`repro.extract`)."""
        fields: dict[str, Any] = {
            "grammar": self._grammar_spec(
                dtd, dtd_path, root, xmark, xsd, xsd_path, grammar
            ),
            "source": self._source_field(source, source_path),
            "spec": spec.to_wire(),
        }
        if options is None:
            options = ExtractOptions()
        if limits is not None:
            from dataclasses import replace

            options = replace(options, limits=limits)
        wire = options.to_wire()
        if wire:
            fields["options"] = wire
        if out_path is not None:
            fields["out_path"] = out_path
        result = self.request("extract", **fields)
        return RemoteExtractOutcome(
            stats=extract_stats_from_wire(result.get("stats", {})),
            text=result.get("text"),
            output_path=result.get("output_path"),
            seconds=float(result.get("seconds", 0.0)),
            worker=result.get("worker"),
            ledger=result.get("ledger"),
        )

    def check_update(
        self,
        update_paths: "Sequence[str] | str",
        *,
        queries: "Sequence[str] | str | None" = None,
        projector: "Iterable[str] | None" = None,
        dtd: str | None = None,
        dtd_path: str | None = None,
        root: str | None = None,
        xmark: bool = False,
        xsd: str | None = None,
        xsd_path: str | None = None,
        grammar: Any = None,
    ) -> dict[str, Any]:
        """Ask the server whether an update is provably independent of the
        workload.  Independent updates *retain* the grammar's pinned
        worker payloads; possibly-dependent ones unpin them so the next
        request re-establishes resident state.  Returns the wire result:
        ``independent``, ``reason``, ``impact``/``overlap``/``projector``
        name lists, and the ``retained``/``invalidated`` pin counts."""
        fields: dict[str, Any] = {
            "grammar": self._grammar_spec(
                dtd, dtd_path, root, xmark, xsd, xsd_path, grammar
            ),
            "update_paths": (
                [update_paths] if isinstance(update_paths, str)
                else list(update_paths)
            ),
        }
        if projector is not None:
            fields["projector"] = sorted(projector)
        elif queries is not None:
            fields["queries"] = (
                [queries] if isinstance(queries, str) else list(queries)
            )
        else:
            raise ValueError("pass queries= or projector=")
        return self.request("check_update", **fields)

    def prune_batch(
        self,
        sources: "Sequence[str] | None" = None,
        *,
        source_paths: "Sequence[str] | None" = None,
        queries: "Sequence[str] | str | None" = None,
        projector: "Iterable[str] | None" = None,
        dtd: str | None = None,
        dtd_path: str | None = None,
        root: str | None = None,
        xmark: bool = False,
        xsd: str | None = None,
        xsd_path: str | None = None,
        grammar: Any = None,
        options: PruneOptions | None = None,
        limits: "Limits | str | None" = None,
        out_dir: str | None = None,
    ) -> RemoteBatchOutcome:
        """Prune many documents in one request (admitted or refused as a
        unit; per-item failures come back as data, not exceptions)."""
        if (sources is None) == (source_paths is None):
            raise ValueError("pass exactly one of sources= or source_paths=")
        fields = self._common_fields(queries, projector, options, limits)
        fields["grammar"] = self._grammar_spec(
            dtd, dtd_path, root, xmark, xsd, xsd_path, grammar
        )
        if source_paths is not None:
            fields["sources"] = [{"path": path} for path in source_paths]
        else:
            assert sources is not None
            fields["sources"] = [
                self._source_field(item, None) for item in sources
            ]
        if out_dir is not None:
            fields["out_dir"] = out_dir
        result = self.request("prune_batch", **fields)
        items: list[RemoteOutcome | ServiceError] = []
        for item in result.get("items", ()):
            if item.get("ok"):
                items.append(self._outcome(item))
            else:
                error = item.get("error") or {}
                items.append(
                    ServiceError(
                        f"{error.get('type', 'unknown')}: {error.get('message', '')}"
                    )
                )
        return RemoteBatchOutcome(
            items=items,
            stats=stats_from_wire(result.get("stats", {})),
            succeeded=int(result.get("succeeded", 0)),
            seconds=float(result.get("seconds", 0.0)),
        )
