"""Re-implementation of the Marian & Siméon loader-pruner [14].

The paper's Section 1.1 baseline: extract projection paths from the query,
then prune the document at load time by matching those paths.  The two
structural weaknesses the paper measures are faithfully reproduced:

* **``//`` cost** — a node under a live ``//`` state cannot be discarded
  until its whole subtree has been inspected ("every occurrence of // may
  yield a full exploration of the tree"); we count those speculative
  visits (their memory footprint) explicitly;
* **no predicates / backward axes** — paths are degraded by
  :mod:`repro.baselines.paths`, so ``descendant::node[cond]`` and upward
  steps collapse to keep-everything marks and precision is lost, which is
  the paper's Section 5 degeneration argument.

No type information is used anywhere here — that is the point of the
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.paths import ProjectionPath, PStep, PStepKind, degrade_pathl
from repro.projection.stats import PruneStats, measure_document
from repro.xmltree.nodes import Document, Element, Node, Text

#: A match state: (path index, step index).  step index == len(steps)
#: means the path is fully matched at this node.
State = tuple[int, int]


@dataclass(slots=True)
class BaselineMetrics:
    """Work/memory accounting of one baseline pruning run."""

    visited_nodes: int = 0
    #: Nodes inspected while *undecided* — held in the loader's buffer
    #: until a descendant match (or exhaustion) resolves them.  This is the
    #: memory footprint the paper says "drastically increases when the
    #: number of // augments".
    speculative_nodes: int = 0
    matched_nodes: int = 0


@dataclass(slots=True)
class BaselineResult:
    document: Document
    stats: PruneStats
    metrics: BaselineMetrics


class MarianSimeonPruner:
    """Path-based pruner over a list of projection paths."""

    def __init__(self, paths: list[ProjectionPath]) -> None:
        self.paths = paths
        self.metrics = BaselineMetrics()

    # -- state machine ------------------------------------------------------

    def _advance(self, states: list[State], node: Node) -> tuple[list[State], bool, bool]:
        """Advance parent states over ``node``.

        Returns (child states, node fully matches some path, node matches
        a keep-subtree path)."""
        tag = node.tag if isinstance(node, Element) else None
        next_states: list[State] = []
        matched = False
        keep_subtree = False
        seen: set[State] = set()

        def push(state: State) -> None:
            if state not in seen:
                seen.add(state)
                next_states.append(state)

        for path_index, step_index in states:
            path = self.paths[path_index]
            # Expand '//' self-loops: the step can consume this node and
            # stay, or let the following step try to consume it.
            positions = [step_index]
            while (
                positions[-1] < len(path.steps)
                and path.steps[positions[-1]].kind is PStepKind.ANYWHERE
            ):
                positions.append(positions[-1] + 1)
            for position in positions:
                if position >= len(path.steps):
                    matched = True
                    keep_subtree = keep_subtree or path.keep_subtrees
                    continue
                step = path.steps[position]
                if step.kind is PStepKind.ANYWHERE:
                    push((path_index, position))  # consume node, stay on //
                elif step.kind is PStepKind.CHILD_ANY:
                    push((path_index, position + 1))
                    if position + 1 == len(path.steps):
                        matched = True
                        keep_subtree = keep_subtree or path.keep_subtrees
                elif step.kind is PStepKind.CHILD_TAG and tag == step.tag:
                    push((path_index, position + 1))
                    if position + 1 == len(path.steps):
                        matched = True
                        keep_subtree = keep_subtree or path.keep_subtrees
        return next_states, matched, keep_subtree

    # -- pruning ---------------------------------------------------------------

    def prune(self, document: Document) -> Document:
        initial: list[State] = [(index, 0) for index in range(len(self.paths))]
        root_copy = self._prune_node(document.root, initial, speculative=False)
        if root_copy is None:
            # Nothing matched: the loader still has to keep a root.
            root_copy = Element(document.root.tag, document.root.attributes)
            root_copy.node_id = document.root.node_id
        assert isinstance(root_copy, Element)
        return Document(root_copy, renumber=False)

    def _prune_node(self, node: Node, states: list[State], speculative: bool) -> Node | None:
        metrics = self.metrics
        metrics.visited_nodes += 1
        child_states, matched, keep_subtree = self._advance(states, node)
        if matched:
            metrics.matched_nodes += 1
        if matched and keep_subtree:
            # A '#' path: the whole subtree is needed, copy it verbatim.
            copy = _copy_subtree(node)
            metrics.visited_nodes += copy_size(node) - 1
            return copy
        if speculative and not matched:
            metrics.speculative_nodes += 1
        if isinstance(node, Text):
            if matched:
                copy = Text(node.value)
                copy.node_id = node.node_id
                return copy
            return None
        assert isinstance(node, Element)
        if not child_states and not matched:
            return None
        # Undecided: the loader must descend (and buffer) to find out
        # whether any descendant is needed — the '//' cost.
        kept_children: list[Node] = []
        child_speculative = not matched  # children only justify this node
        for child in node.children:
            kept = self._prune_node(child, child_states, speculative=child_speculative or speculative)
            if kept is not None:
                kept_children.append(kept)
        if not matched and not kept_children:
            return None
        copy = Element(node.tag, node.attributes)
        copy.node_id = node.node_id
        for child in kept_children:
            copy.append(child)
        return copy


def copy_size(node: Node) -> int:
    return node.subtree_size()


def _copy_subtree(node: Node) -> Node:
    if isinstance(node, Text):
        copy = Text(node.value)
        copy.node_id = node.node_id
        return copy
    assert isinstance(node, Element)
    copy = Element(node.tag, node.attributes)
    copy.node_id = node.node_id
    stack = [(node, copy)]
    while stack:
        original, duplicate = stack.pop()
        for child in original.children:
            if isinstance(child, Text):
                text = Text(child.value)
                text.node_id = child.node_id
                duplicate.append(text)
            else:
                assert isinstance(child, Element)
                twin = Element(child.tag, child.attributes)
                twin.node_id = child.node_id
                duplicate.append(twin)
                stack.append((child, twin))
    return copy


def baseline_paths_for_query(query: str, xquery: bool | None = None) -> list[ProjectionPath]:
    """Projection paths for a query, the Marian–Siméon way: path
    extraction (they pioneered it — we share the extractor), then
    degradation into their predicate-free, forward-only path language."""
    from repro.xpath.approximation import approximate_query
    from repro.xpath.xpathl import PathL

    if xquery is None:
        xquery = query.lstrip().startswith(("for ", "let ", "if ", "<")) or " return " in query
    paths: list[PathL] = []
    if xquery:
        from repro.xquery.extraction import extract_paths
        from repro.xquery.parser import parse_xquery

        # NOTE: no Section 5 rewriting — their extractor cannot push
        # conditions into paths, which is the degeneration the paper shows.
        paths = extract_paths(parse_xquery(query))
    else:
        approximation = approximate_query(query)
        # Standalone XPath answers are materialised for a fair comparison
        # with the type-based pipeline's default.
        from repro.xpath.xpathl import DOS_NODE

        paths = [approximation.main.append(DOS_NODE)] + approximation.absolute_paths
    return [degrade_pathl(path) for path in paths]


def prune_with_baseline(document: Document, paths: list[ProjectionPath]) -> BaselineResult:
    """Run the baseline pruner and gather comparison statistics."""
    from repro.xmltree.serializer import serialize

    pruner = MarianSimeonPruner(paths)
    pruned = pruner.prune(document)
    stats = PruneStats()
    stats.elements_in, stats.texts_in, stats.attributes_in, stats.distinct_tags_in = measure_document(document)
    stats.elements_out, stats.texts_out, stats.attributes_out, stats.distinct_tags_out = measure_document(pruned)
    stats.bytes_in = len(serialize(document))
    stats.bytes_out = len(serialize(pruned))
    return BaselineResult(pruned, stats, pruner.metrics)
