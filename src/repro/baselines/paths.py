"""Projection paths — the path language of Marian & Siméon [14].

Their loader-pruner works with *simple downward* paths over tags::

    ppath ::= step (/ step)*      step ::= child::t | desc-or-self::node | child::*

No predicates, no backward axes, no types (Section 1.1 of the paper lists
exactly these limitations).  This module defines the path representation
and the degradation from our richer XPathℓ paths into it — which is where
the baseline loses the precision the paper's technique keeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.xpath.ast import Axis, KindTest, NameTest
from repro.xpath.xpathl import PathL


class PStepKind(Enum):
    CHILD_TAG = "child-tag"  # child::t
    CHILD_ANY = "child-any"  # child::* / child::node
    ANYWHERE = "anywhere"  # descendant-or-self::node ("//")


@dataclass(frozen=True, slots=True)
class PStep:
    kind: PStepKind
    tag: str | None = None

    def __str__(self) -> str:
        if self.kind is PStepKind.CHILD_TAG:
            return str(self.tag)
        if self.kind is PStepKind.CHILD_ANY:
            return "*"
        return "/"  # rendered as '//' by ProjectionPath


@dataclass(frozen=True, slots=True)
class ProjectionPath:
    """One projection path; ``keep_subtrees`` marks a ``#`` path (the
    matched node's whole subtree is needed — [14]'s returned-node paths)."""

    steps: tuple[PStep, ...]
    keep_subtrees: bool = False

    def __str__(self) -> str:
        pieces: list[str] = []
        for step in self.steps:
            if step.kind is PStepKind.ANYWHERE:
                pieces.append("/")
            else:
                pieces.append("/" + str(step))
        return "".join(pieces) + (" #" if self.keep_subtrees else "")


def degrade_pathl(path: PathL) -> ProjectionPath:
    """Degrade an XPathℓ path into a Marian–Siméon projection path.

    Information their language cannot express is *widened* (soundness must
    be preserved, so every loss makes the path keep more):

    * predicates are dropped;
    * a backward (parent/ancestor) or ``self`` step cannot be expressed:
      everything from the previous step onward becomes ``//`` + subtree
      (their technique simply does not support these queries — the paper,
      Section 1.1: "the document loader-pruner is not able to manage
      backward axes nor path expressions with predicates");
    * a trailing ``descendant-or-self::node`` becomes a keep-subtree mark.
    """
    steps: list[PStep] = []
    for index, lstep in enumerate(path.steps):
        is_last = index == len(path.steps) - 1
        if lstep.axis is Axis.CHILD:
            steps.append(_child_step(lstep.test))
        elif lstep.axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            if is_last and isinstance(lstep.test, KindTest) and lstep.test.kind == "node":
                return ProjectionPath(tuple(steps), keep_subtrees=True)
            steps.append(PStep(PStepKind.ANYWHERE))
            steps.append(_child_step(lstep.test))
        elif lstep.axis is Axis.ATTRIBUTE:
            # Attributes ride with their element: stop here, keep the node.
            return ProjectionPath(tuple(steps), keep_subtrees=False)
        elif lstep.axis is Axis.SELF:
            continue  # self::Test only narrows; dropping it widens (sound)
        else:
            # Backward axis: unsupported — keep everything reachable from
            # the prefix (the sound but catastrophic fallback).
            steps.append(PStep(PStepKind.ANYWHERE))
            return ProjectionPath(tuple(steps), keep_subtrees=True)
    return ProjectionPath(tuple(steps))


def _child_step(test) -> PStep:
    if isinstance(test, NameTest) and test.name is not None:
        return PStep(PStepKind.CHILD_TAG, test.name)
    return PStep(PStepKind.CHILD_ANY)
