"""Comparison baselines: the Marian & Siméon path-based loader-pruner."""

from repro.baselines.marian_simeon import (
    BaselineMetrics,
    BaselineResult,
    MarianSimeonPruner,
    baseline_paths_for_query,
    prune_with_baseline,
)
from repro.baselines.paths import ProjectionPath, PStep, PStepKind, degrade_pathl

__all__ = [
    "BaselineMetrics",
    "BaselineResult",
    "MarianSimeonPruner",
    "ProjectionPath",
    "PStep",
    "PStepKind",
    "baseline_paths_for_query",
    "degrade_pathl",
    "prune_with_baseline",
]
