"""XPath substrate: full XPath 1.0 engine + the XPathℓ sub-language.

* :mod:`repro.xpath.parser` / :mod:`repro.xpath.evaluator` — a complete
  XPath engine (all axes, predicates, core function library) used to run
  queries on original and pruned documents;
* :mod:`repro.xpath.xpathl` — the paper's analysis sub-language with its
  denotational semantics (Definitions 3.1–3.3);
* :mod:`repro.xpath.approximation` — full XPath → XPathℓ (Sections 3.3
  and 4.3).
"""

from repro.xpath.ast import (
    AndExpr,
    Axis,
    BinaryExpr,
    Expr,
    FilterExpr,
    FunctionCall,
    KindTest,
    Literal,
    LocationPath,
    NameTest,
    NodeTest,
    Number,
    OrExpr,
    PathExpr,
    Step,
    UnaryMinus,
    UnionExpr,
    VariableRef,
)
from repro.xpath.approximation import Approximation, approximate_query
from repro.xpath.evaluator import Context, XPathEvaluator, evaluate, select
from repro.xpath.parser import parse_location_path, parse_xpath
from repro.xpath.values import AttributeNode, XPathValue, string_value
from repro.xpath.xpathl import (
    LStep,
    PathL,
    SimplePath,
    evaluate_pathl,
    parse_pathl,
    path,
    simple,
    step,
    to_xpath,
)

__all__ = [
    "AndExpr",
    "Approximation",
    "AttributeNode",
    "Axis",
    "BinaryExpr",
    "Context",
    "Expr",
    "FilterExpr",
    "FunctionCall",
    "KindTest",
    "LStep",
    "Literal",
    "LocationPath",
    "NameTest",
    "NodeTest",
    "Number",
    "OrExpr",
    "PathExpr",
    "PathL",
    "SimplePath",
    "Step",
    "UnaryMinus",
    "UnionExpr",
    "VariableRef",
    "XPathEvaluator",
    "XPathValue",
    "approximate_query",
    "evaluate",
    "evaluate_pathl",
    "parse_location_path",
    "parse_pathl",
    "parse_xpath",
    "path",
    "select",
    "simple",
    "step",
    "string_value",
    "to_xpath",
]
