"""The XPath core function library.

Every function receives the evaluation context and its already-evaluated
arguments.  The registry also records, for the static analysis, which
argument positions need the *whole subtree* of the nodes they denote — the
paper's ``F(f, i)`` table of Section 3.3: ``F`` returns either
``self::node`` (only the root nodes are needed, e.g. ``count``) or
``descendant-or-self::node`` (string-value functions need everything below,
e.g. ``string`` or ``contains``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import XPathTypeError
from repro.xpath.values import (
    XPathValue,
    node_name,
    string_value,
    to_boolean,
    to_number,
    to_string,
)


@dataclass(frozen=True, slots=True)
class FunctionSpec:
    """Signature + implementation + data-need of one library function.

    ``needs_subtree`` is the paper's ``F(f, i)``: ``True`` means argument
    ``i`` must be approximated by ``SPath/descendant-or-self::node`` (the
    function reads string values), ``False`` means ``SPath/self::node``
    suffices (the function only counts/tests nodes).  A single flag covers
    all arguments; no core function mixes the two behaviours across its
    node-set arguments.
    """

    name: str
    min_args: int
    max_args: int  # -1 for unbounded (concat)
    implementation: Callable
    needs_subtree: bool

    def check_arity(self, count: int) -> None:
        if count < self.min_args or (self.max_args >= 0 and count > self.max_args):
            raise XPathTypeError(
                f"{self.name}() takes {self.min_args}"
                + (f"..{self.max_args}" if self.max_args != self.min_args else "")
                + f" arguments, got {count}"
            )


def _require_nodeset(name: str, value: XPathValue) -> list:
    if not isinstance(value, list):
        raise XPathTypeError(f"{name}() requires a node-set argument")
    return value


# -- node-set functions -------------------------------------------------------


def _fn_last(context, args):
    return float(context.size)


def _fn_position(context, args):
    return float(context.position)


def _fn_count(context, args):
    return float(len(_require_nodeset("count", args[0])))


def _fn_local_name(context, args):
    nodes = args[0] if args else [context.node]
    if not isinstance(nodes, list):
        raise XPathTypeError("local-name() requires a node-set")
    if not nodes:
        return ""
    return node_name(nodes[0])


def _fn_name(context, args):
    return _fn_local_name(context, args)


# -- string functions ------------------------------------------------------------


def _fn_string(context, args):
    if not args:
        return string_value(context.node)
    return to_string(args[0])


def _fn_concat(context, args):
    return "".join(to_string(arg) for arg in args)


def _fn_starts_with(context, args):
    return to_string(args[0]).startswith(to_string(args[1]))


def _fn_ends_with(context, args):
    return to_string(args[0]).endswith(to_string(args[1]))


def _fn_contains(context, args):
    return to_string(args[1]) in to_string(args[0])


def _fn_substring_before(context, args):
    haystack, needle = to_string(args[0]), to_string(args[1])
    index = haystack.find(needle)
    return haystack[:index] if index >= 0 else ""


def _fn_substring_after(context, args):
    haystack, needle = to_string(args[0]), to_string(args[1])
    index = haystack.find(needle)
    return haystack[index + len(needle) :] if index >= 0 else ""


def _fn_substring(context, args):
    text = to_string(args[0])
    start = to_number(args[1])
    if math.isnan(start):
        return ""
    begin = int(round(start)) - 1
    if len(args) >= 3:
        length = to_number(args[2])
        if math.isnan(length):
            return ""
        end = begin + int(round(length))
    else:
        end = len(text)
    begin = max(begin, 0)
    end = max(end, begin)
    return text[begin:end]


def _fn_string_length(context, args):
    text = to_string(args[0]) if args else string_value(context.node)
    return float(len(text))


def _fn_normalize_space(context, args):
    text = to_string(args[0]) if args else string_value(context.node)
    return " ".join(text.split())


def _fn_translate(context, args):
    text, source, target = (to_string(arg) for arg in args)
    table: dict[int, int | None] = {}
    for index, char in enumerate(source):
        if ord(char) in table:
            continue
        table[ord(char)] = ord(target[index]) if index < len(target) else None
    return text.translate(table)


# -- boolean functions -------------------------------------------------------------


def _fn_boolean(context, args):
    return to_boolean(args[0])


def _fn_not(context, args):
    return not to_boolean(args[0])


def _fn_true(context, args):
    return True


def _fn_false(context, args):
    return False


def _fn_empty(context, args):
    return not _require_nodeset("empty", args[0])


def _fn_exists(context, args):
    return bool(_require_nodeset("exists", args[0]))


# -- number functions ----------------------------------------------------------------


def _fn_number(context, args):
    if not args:
        return to_number(string_value(context.node))
    return to_number(args[0])


def _fn_sum(context, args):
    return float(sum(to_number(string_value(node)) for node in _require_nodeset("sum", args[0])))


def _fn_floor(context, args):
    return float(math.floor(to_number(args[0])))


def _fn_ceiling(context, args):
    return float(math.ceil(to_number(args[0])))


def _fn_round(context, args):
    value = to_number(args[0])
    if math.isnan(value) or math.isinf(value):
        return value
    return float(math.floor(value + 0.5))  # XPath rounds .5 up


def _fn_zero_or_one(context, args):
    nodes = _require_nodeset("zero-or-one", args[0])
    if len(nodes) > 1:
        raise XPathTypeError("zero-or-one() applied to more than one node")
    return nodes


_SPECS = [
    # name, min, max, impl, needs_subtree (the paper's F(f, i))
    FunctionSpec("last", 0, 0, _fn_last, False),
    FunctionSpec("position", 0, 0, _fn_position, False),
    FunctionSpec("count", 1, 1, _fn_count, False),
    FunctionSpec("local-name", 0, 1, _fn_local_name, False),
    FunctionSpec("name", 0, 1, _fn_name, False),
    FunctionSpec("string", 0, 1, _fn_string, True),
    FunctionSpec("concat", 2, -1, _fn_concat, True),
    FunctionSpec("starts-with", 2, 2, _fn_starts_with, True),
    FunctionSpec("ends-with", 2, 2, _fn_ends_with, True),
    FunctionSpec("contains", 2, 2, _fn_contains, True),
    FunctionSpec("substring-before", 2, 2, _fn_substring_before, True),
    FunctionSpec("substring-after", 2, 2, _fn_substring_after, True),
    FunctionSpec("substring", 2, 3, _fn_substring, True),
    FunctionSpec("string-length", 0, 1, _fn_string_length, True),
    FunctionSpec("normalize-space", 0, 1, _fn_normalize_space, True),
    FunctionSpec("translate", 3, 3, _fn_translate, True),
    FunctionSpec("boolean", 1, 1, _fn_boolean, False),
    FunctionSpec("not", 1, 1, _fn_not, False),
    FunctionSpec("true", 0, 0, _fn_true, False),
    FunctionSpec("false", 0, 0, _fn_false, False),
    FunctionSpec("empty", 1, 1, _fn_empty, False),
    FunctionSpec("exists", 1, 1, _fn_exists, False),
    FunctionSpec("number", 0, 1, _fn_number, True),
    FunctionSpec("sum", 1, 1, _fn_sum, True),
    FunctionSpec("floor", 1, 1, _fn_floor, False),
    FunctionSpec("ceiling", 1, 1, _fn_ceiling, False),
    FunctionSpec("round", 1, 1, _fn_round, False),
    FunctionSpec("zero-or-one", 1, 1, _fn_zero_or_one, False),
]

FUNCTIONS: dict[str, FunctionSpec] = {spec.name: spec for spec in _SPECS}


def function_needs_subtree(name: str, argument_index: int = 0) -> bool:
    """The paper's ``F(f, i)``: True → ``descendant-or-self::node``,
    False → ``self::node``.  Unknown functions conservatively need the
    whole subtree (soundness first)."""
    spec = FUNCTIONS.get(name)
    if spec is None:
        return True
    return spec.needs_subtree
