"""XPath tokenizer.

Implements the XPath 1.0 lexical rules, including the two disambiguation
rules of the specification:

* a ``*`` is the multiply operator when the previous token could end an
  operand, otherwise it is the wildcard name test;
* an NCName is an operator name (``and``, ``or``, ``div``, ``mod`` and the
  XPath 2.0 value comparisons) in the same "after an operand" position; it
  is a function name when followed by ``(`` and an axis name when followed
  by ``::``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import XPathSyntaxError
from repro.xmltree.lexer import is_name_char, is_name_start


class TokenKind(Enum):
    NAME = "name"  # element/attribute/function name test material
    AXIS = "axis"  # name followed by '::'
    OPERATOR = "operator"  # symbols and word operators
    FUNCTION = "function"  # name followed by '('
    NODE_TYPE = "node-type"  # node/text/comment/processing-instruction before '('
    LITERAL = "literal"
    NUMBER = "number"
    VARIABLE = "variable"
    STAR = "star"  # wildcard '*'
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    DOT = "."
    DOTDOT = ".."
    AT = "@"
    COMMA = ","
    SLASH = "/"
    DOUBLE_SLASH = "//"
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    value: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.value!r})"


_WORD_OPERATORS = frozenset(("and", "or", "div", "mod", "eq", "ne", "lt", "le", "gt", "ge", "is"))
_NODE_TYPES = frozenset(("node", "text", "comment", "processing-instruction", "element"))

# Tokens after which a NAME/'*' must be read as an operator (XPath 1.0 §3.7).
_OPERAND_ENDERS = frozenset(
    (
        TokenKind.NAME,
        TokenKind.LITERAL,
        TokenKind.NUMBER,
        TokenKind.VARIABLE,
        TokenKind.RPAREN,
        TokenKind.RBRACKET,
        TokenKind.DOT,
        TokenKind.DOTDOT,
        TokenKind.STAR,
    )
)


def tokenize(expression: str) -> list[Token]:
    """Tokenize an XPath expression; raises :class:`XPathSyntaxError`."""
    tokens: list[Token] = []
    position = 0
    length = len(expression)

    def previous_kind() -> TokenKind | None:
        return tokens[-1].kind if tokens else None

    while position < length:
        char = expression[position]
        if char in " \t\r\n":
            position += 1
            continue
        start = position
        if char == "(":
            tokens.append(Token(TokenKind.LPAREN, "(", start))
            position += 1
        elif char == ")":
            tokens.append(Token(TokenKind.RPAREN, ")", start))
            position += 1
        elif char == "[":
            tokens.append(Token(TokenKind.LBRACKET, "[", start))
            position += 1
        elif char == "]":
            tokens.append(Token(TokenKind.RBRACKET, "]", start))
            position += 1
        elif char == ",":
            tokens.append(Token(TokenKind.COMMA, ",", start))
            position += 1
        elif char == "@":
            tokens.append(Token(TokenKind.AT, "@", start))
            position += 1
        elif char == "$":
            position += 1
            name, position = _read_name(expression, position, "variable name")
            tokens.append(Token(TokenKind.VARIABLE, name, start))
        elif char == "/":
            if expression.startswith("//", position):
                tokens.append(Token(TokenKind.DOUBLE_SLASH, "//", start))
                position += 2
            else:
                tokens.append(Token(TokenKind.SLASH, "/", start))
                position += 1
        elif char == ".":
            if expression.startswith("..", position):
                tokens.append(Token(TokenKind.DOTDOT, "..", start))
                position += 2
            elif position + 1 < length and expression[position + 1].isdigit():
                number, position = _read_number(expression, position)
                tokens.append(Token(TokenKind.NUMBER, number, start))
            else:
                tokens.append(Token(TokenKind.DOT, ".", start))
                position += 1
        elif char in "'\"":
            closing = expression.find(char, position + 1)
            if closing == -1:
                raise XPathSyntaxError(f"unterminated literal at offset {position}")
            tokens.append(Token(TokenKind.LITERAL, expression[position + 1 : closing], start))
            position = closing + 1
        elif char.isdigit():
            number, position = _read_number(expression, position)
            tokens.append(Token(TokenKind.NUMBER, number, start))
        elif char == "*":
            if previous_kind() in _OPERAND_ENDERS:
                tokens.append(Token(TokenKind.OPERATOR, "*", start))
            else:
                tokens.append(Token(TokenKind.STAR, "*", start))
            position += 1
        elif expression.startswith("<<", position) or expression.startswith(">>", position):
            tokens.append(Token(TokenKind.OPERATOR, expression[position : position + 2], start))
            position += 2
        elif expression.startswith("!=", position) or expression.startswith("<=", position) or expression.startswith(">=", position):
            tokens.append(Token(TokenKind.OPERATOR, expression[position : position + 2], start))
            position += 2
        elif char in "=<>|+-":
            tokens.append(Token(TokenKind.OPERATOR, char, start))
            position += 1
        elif is_name_start(char):
            name, position = _read_name(expression, position, "name")
            rest = expression[position:].lstrip()
            if name in _WORD_OPERATORS and previous_kind() in _OPERAND_ENDERS:
                tokens.append(Token(TokenKind.OPERATOR, name, start))
            elif rest.startswith("::"):
                tokens.append(Token(TokenKind.AXIS, name, start))
                position = expression.index("::", position) + 2
            elif rest.startswith("(") and name in _NODE_TYPES:
                tokens.append(Token(TokenKind.NODE_TYPE, name, start))
            elif rest.startswith("("):
                tokens.append(Token(TokenKind.FUNCTION, name, start))
            else:
                tokens.append(Token(TokenKind.NAME, name, start))
        else:
            raise XPathSyntaxError(f"unexpected character {char!r} at offset {position}")
    tokens.append(Token(TokenKind.EOF, "", length))
    return tokens


def _read_name(expression: str, position: int, context: str) -> tuple[str, int]:
    if position >= len(expression) or not is_name_start(expression[position]):
        raise XPathSyntaxError(f"expected {context} at offset {position}")
    start = position
    position += 1
    # XPath names may not contain ':' outside a prefix — we accept plain
    # NCNames with dashes/dots (is_name_char minus ':').
    while position < len(expression) and is_name_char(expression[position]) and expression[position] != ":":
        position += 1
    return expression[start:position], position


def _read_number(expression: str, position: int) -> tuple[str, int]:
    start = position
    while position < len(expression) and expression[position].isdigit():
        position += 1
    if position < len(expression) and expression[position] == ".":
        position += 1
        while position < len(expression) and expression[position].isdigit():
            position += 1
    return expression[start:position], position
