"""XPath value system: node-sets, booleans, numbers, strings.

Implements the XPath 1.0 coercion and comparison semantics, plus attribute
"nodes".  The tree data model (Section 2.1 of the paper) does not reify
attributes as nodes, so the evaluator materialises lightweight
:class:`AttributeNode` proxies on demand; identity is (owner id, name) and
document order places them after their owner and before its children.
"""

from __future__ import annotations

import math
from typing import Union

from repro.xmltree.nodes import Element, Node, Text


class AttributeNode:
    """An attribute viewed as an XPath node."""

    __slots__ = ("owner", "name", "value", "_order")

    def __init__(self, owner: Element, name: str, value: str, order: int) -> None:
        self.owner = owner
        self.name = name
        self.value = value
        self._order = order  # index among the owner's attributes

    @property
    def parent(self) -> Element:
        return self.owner

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AttributeNode)
            and other.owner is self.owner
            and other.name == self.name
        )

    def __hash__(self) -> int:
        return hash((id(self.owner), self.name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AttributeNode({self.name}={self.value!r} on <{self.owner.tag}>)"


XPathNode = Union[Node, AttributeNode]
#: An XPath value: node-set (list in document order), number, string, bool.
XPathValue = Union[list, float, str, bool]


def document_order_key(node: XPathNode) -> tuple[int, int, int]:
    """Sort key realising document order including attribute nodes:
    an element at preorder id ``i`` sorts as (i, 0, 0); its attributes as
    (i, 1, k); its first child has preorder id > i so sorts after both."""
    if isinstance(node, AttributeNode):
        return (node.owner.node_id, 1, node._order)
    return (node.node_id, 0, 0)


def identity_key(node: XPathNode) -> tuple:
    if isinstance(node, AttributeNode):
        return ("attr", id(node.owner), node.name)
    return ("node", id(node))


def sort_document_order(nodes: list) -> list:
    """Sort and deduplicate a node list into document order."""
    seen: set = set()
    unique = []
    for node in nodes:
        key = identity_key(node)
        if key not in seen:
            seen.add(key)
            unique.append(node)
    unique.sort(key=document_order_key)
    return unique


def string_value(node: XPathNode) -> str:
    """The XPath string-value of a node (elements, text, attributes and
    the virtual document root all answer ``text_value``-style)."""
    if isinstance(node, AttributeNode):
        return node.value
    if isinstance(node, Text):
        return node.value
    return node.text_value()


def node_name(node: XPathNode) -> str:
    if isinstance(node, AttributeNode):
        return node.name
    if isinstance(node, Element):
        return node.tag
    return ""


# -- coercions (XPath 1.0 section 3 / 4) -----------------------------------


def to_boolean(value: XPathValue) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return bool(value) and not math.isnan(value)
    if isinstance(value, str):
        return len(value) > 0
    if isinstance(value, list):
        return len(value) > 0
    raise TypeError(f"not an XPath value: {value!r}")


def to_number(value: XPathValue) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return math.nan
    if isinstance(value, list):
        return to_number(to_string(value))
    raise TypeError(f"not an XPath value: {value!r}")


def to_string(value: XPathValue) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return format_number(value)
    if isinstance(value, str):
        return value
    if isinstance(value, list):
        if not value:
            return ""
        return string_value(value[0])
    raise TypeError(f"not an XPath value: {value!r}")


def format_number(value: float) -> str:
    """XPath number-to-string: integers print without a decimal point."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    if value == int(value):
        return str(int(value))
    return repr(value)


# -- comparisons ------------------------------------------------------------

_NUMERIC_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_VALUE_OPS = {"eq": "=", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}


def compare(op: str, left: XPathValue, right: XPathValue) -> bool:
    """Evaluate a comparison operator on two XPath values.

    ``= != < <= > >=`` follow the XPath 1.0 general-comparison rules
    (existential over node-sets); ``eq ne lt le gt ge`` are the XPath 2.0
    value comparisons applied to atomised operands; ``is << >>`` compare
    node identity / document order of singleton node-sets.
    """
    if op in _VALUE_OPS:
        return _compare_atomic(_VALUE_OPS[op], _atomize_first(left), _atomize_first(right))
    if op in ("is", "<<", ">>"):
        return _compare_nodes(op, left, right)
    if op in _NUMERIC_OPS:
        return _general_compare(op, left, right)
    raise ValueError(f"unknown comparison operator {op!r}")


def _atomize_first(value: XPathValue) -> XPathValue:
    if isinstance(value, list):
        if not value:
            return value  # empty sequence: comparisons yield False
        return string_value(value[0])
    return value


def _compare_atomic(op: str, left: XPathValue, right: XPathValue) -> bool:
    if isinstance(left, list) or isinstance(right, list):
        return False  # an empty sequence compares to nothing
    if isinstance(left, bool) or isinstance(right, bool):
        return _NUMERIC_OPS[op](to_boolean(left), to_boolean(right))
    if isinstance(left, float) or isinstance(right, float):
        return _NUMERIC_OPS[op](to_number(left), to_number(right))
    if op in ("=", "!="):
        return _NUMERIC_OPS[op](to_string(left), to_string(right))
    # Value comparison of two strings: XPath 2.0 compares them as strings.
    return _NUMERIC_OPS[op](to_string(left), to_string(right))


def _compare_nodes(op: str, left: XPathValue, right: XPathValue) -> bool:
    if not (isinstance(left, list) and isinstance(right, list)):
        raise TypeError(f"operator {op!r} requires node-set operands")
    if not left or not right:
        return False
    a, b = left[0], right[0]
    if op == "is":
        return identity_key(a) == identity_key(b)
    if op == "<<":
        return document_order_key(a) < document_order_key(b)
    return document_order_key(a) > document_order_key(b)


def _general_compare(op: str, left: XPathValue, right: XPathValue) -> bool:
    # XPath 1.0 §3.4: when either operand is a boolean, both are compared
    # as booleans — this takes precedence over the node-set rules (so
    # ``false() = //nothing`` is true).
    if isinstance(left, bool) or isinstance(right, bool):
        return _NUMERIC_OPS[op](to_boolean(left), to_boolean(right))
    left_is_set = isinstance(left, list)
    right_is_set = isinstance(right, list)
    if left_is_set and right_is_set:
        for lnode in left:
            lvalue = string_value(lnode)
            for rnode in right:
                if _general_atomic(op, lvalue, string_value(rnode)):
                    return True
        return False
    if left_is_set:
        return any(_general_atomic(op, string_value(node), right) for node in left)
    if right_is_set:
        # Mirror the operator so the node is always the left operand.
        mirrored = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}[op]
        return any(_general_atomic(mirrored, string_value(node), left) for node in right)
    return _general_atomic(op, left, right)


def _general_atomic(op: str, left: XPathValue, right: XPathValue) -> bool:
    """General comparison where neither operand is a node-set (but either
    may be a node's string-value)."""
    if isinstance(left, bool) or isinstance(right, bool):
        return _NUMERIC_OPS[op](to_boolean(left), to_boolean(right))
    if op in ("=", "!="):
        if isinstance(left, float) or isinstance(right, float):
            return _NUMERIC_OPS[op](to_number(left), to_number(right))
        return _NUMERIC_OPS[op](to_string(left), to_string(right))
    return _NUMERIC_OPS[op](to_number(left), to_number(right))
