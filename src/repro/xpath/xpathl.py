"""XPathℓ — the paper's analysis sub-language (Section 3).

XPathℓ paths contain only upward/downward axes and unnested disjunctive
predicates::

    Axis  ::= self | child | descendant | parent | ancestor
            | descendant-or-self | ancestor-or-self | attribute
    Test  ::= tag | node | text | * | element()
    SPath ::= Axis::Test | Axis::Test/SPath
    Cond  ::= SPath or ... or SPath
    Path  ::= Step | Step/Path,  Step ::= Axis::Test | Axis::Test[Cond]

(The formal development in the paper omits the ``-or-self`` axes and
attributes "for the sake of presentation"; its implementation — and ours —
supports them, see Section 6.)

The module defines the AST, the denotational semantics of Definitions
3.1–3.3 (used by tests to cross-check the full XPath evaluator and by the
completeness experiments), conversion to the full-XPath AST, and a parser
for paths already in XPathℓ form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import XPathSyntaxError, XPathTypeError
from repro.xmltree.nodes import Document, Element, Node, Text
from repro.xpath import ast as xp
from repro.xpath.parser import parse_xpath
from repro.xpath.values import AttributeNode, XPathNode

#: Axes admitted in XPathℓ.
L_AXES = frozenset(
    (
        xp.Axis.SELF,
        xp.Axis.CHILD,
        xp.Axis.DESCENDANT,
        xp.Axis.PARENT,
        xp.Axis.ANCESTOR,
        xp.Axis.DESCENDANT_OR_SELF,
        xp.Axis.ANCESTOR_OR_SELF,
        xp.Axis.ATTRIBUTE,
    )
)


@dataclass(frozen=True, slots=True)
class LStep:
    """One XPathℓ step.  ``condition`` is a disjunction of *simple* paths
    (no nested conditions), or None."""

    axis: xp.Axis
    test: xp.NodeTest
    condition: tuple["SimplePath", ...] | None = None

    def __post_init__(self) -> None:
        if self.axis not in L_AXES:
            raise XPathTypeError(f"axis {self.axis.value} is not part of XPathℓ")
        if self.condition is not None:
            for path in self.condition:
                for step in path.steps:
                    if step.condition is not None:
                        raise XPathTypeError("XPathℓ conditions must be simple paths")

    def __str__(self) -> str:
        base = f"{self.axis.value}::{self.test}"
        if self.condition is None:
            return base
        cond = " or ".join(str(path) for path in self.condition)
        return f"{base}[{cond}]"


@dataclass(frozen=True, slots=True)
class SimplePath:
    """A predicate-free XPathℓ path (the paper's SPath)."""

    steps: tuple[LStep, ...]

    def __post_init__(self) -> None:
        for step in self.steps:
            if step.condition is not None:
                raise XPathTypeError("a SimplePath cannot carry conditions")

    def __str__(self) -> str:
        return "/".join(str(step) for step in self.steps)

    def __len__(self) -> int:
        return len(self.steps)


@dataclass(frozen=True, slots=True)
class PathL:
    """A full XPathℓ path (steps may carry disjunctive conditions).

    ``absolute`` records the path's anchor: True means document-rooted
    (a leading ``/`` — the first step applies at the virtual document
    node), False means rooted at the root *element* (the paper's
    convention, which "omits the treatment of leading /").
    :func:`element_rooted` converts the former into the latter for the
    static analysis.
    """

    steps: tuple[LStep, ...]
    absolute: bool = False

    def __str__(self) -> str:
        body = "/".join(str(step) for step in self.steps)
        return ("/" + body) if self.absolute else body

    def __len__(self) -> int:
        return len(self.steps)

    def prepend(self, *steps: LStep) -> "PathL":
        return PathL(tuple(steps) + self.steps, self.absolute)

    def append(self, *steps: LStep) -> "PathL":
        return PathL(self.steps + tuple(steps), self.absolute)


# -- constructors --------------------------------------------------------------


def step(axis: xp.Axis, test: xp.NodeTest | str, condition: Iterable[SimplePath] | None = None) -> LStep:
    """Convenience step constructor: ``test`` may be a tag string,
    ``"node"``, ``"text"`` or ``"*"``."""
    if isinstance(test, str):
        if test == "node":
            test = xp.KindTest("node")
        elif test == "text":
            test = xp.KindTest("text")
        elif test == "*":
            test = xp.NameTest(None)
        else:
            test = xp.NameTest(test)
    cond = tuple(condition) if condition is not None else None
    return LStep(axis, test, cond)


def simple(*steps: LStep) -> SimplePath:
    return SimplePath(tuple(steps))


def path(*steps: LStep) -> PathL:
    return PathL(tuple(steps))


SELF_NODE = step(xp.Axis.SELF, "node")
DOS_NODE = step(xp.Axis.DESCENDANT_OR_SELF, "node")

#: ``{self::node}`` as a SimplePath — the "always true" condition added
#: when a predicate has non-structural parts (Section 3.3).
SELF_NODE_PATH = simple(SELF_NODE)
#: ``descendant-or-self::node`` as a SimplePath suffix.
DOS_NODE_PATH = simple(DOS_NODE)


# -- semantics (Definitions 3.1 - 3.3) ----------------------------------------


def _filter_test(nodes: Iterable[XPathNode], test: xp.NodeTest, axis: xp.Axis) -> Iterator[XPathNode]:
    """Def 3.1 ``S ::_t Test`` (plus attribute/wildcard extensions)."""
    attribute_axis = axis is xp.Axis.ATTRIBUTE
    for node in nodes:
        if isinstance(test, xp.KindTest):
            if test.kind == "node":
                yield node
            elif test.kind == "text" and isinstance(node, Text):
                yield node
            elif test.kind == "element" and isinstance(node, Element):
                yield node
        else:
            assert isinstance(test, xp.NameTest)
            if attribute_axis:
                if isinstance(node, AttributeNode) and (test.name is None or node.name == test.name):
                    yield node
            elif isinstance(node, Element) and (test.name is None or node.tag == test.name):
                yield node


def _axis_select(nodes: Iterable[XPathNode], axis: xp.Axis) -> Iterator[XPathNode]:
    """Def 3.2 ``[[Axis]]_t(S)`` for the XPathℓ axes."""
    for node in nodes:
        if isinstance(node, AttributeNode):
            if axis is xp.Axis.SELF:
                yield node
            elif axis is xp.Axis.PARENT:
                yield node.owner
            elif axis is xp.Axis.ANCESTOR:
                yield node.owner
                yield from node.owner.ancestors()
            elif axis is xp.Axis.ANCESTOR_OR_SELF:
                yield node
                yield node.owner
                yield from node.owner.ancestors()
            continue
        if axis is xp.Axis.SELF:
            yield node
        elif axis is xp.Axis.CHILD:
            if isinstance(node, Element):
                yield from node.children
        elif axis is xp.Axis.DESCENDANT:
            yield from node.descendants()
        elif axis is xp.Axis.DESCENDANT_OR_SELF:
            yield from node.self_and_descendants()
        elif axis is xp.Axis.PARENT:
            if node.parent is not None:
                yield node.parent
        elif axis is xp.Axis.ANCESTOR:
            yield from node.ancestors()
        elif axis is xp.Axis.ANCESTOR_OR_SELF:
            yield from node.ancestors_or_self()
        elif axis is xp.Axis.ATTRIBUTE:
            if isinstance(node, Element):
                for order, (name, value) in enumerate(node.attributes.items()):
                    yield AttributeNode(node, name, value, order)


def _unique(nodes: Iterable[XPathNode]) -> list[XPathNode]:
    seen: set = set()
    result: list[XPathNode] = []
    for node in nodes:
        key = (id(node.owner), node.name) if isinstance(node, AttributeNode) else id(node)
        if key not in seen:
            seen.add(key)
            result.append(node)
    return result


def evaluate_steps(nodes: list[XPathNode], steps: tuple[LStep, ...]) -> list[XPathNode]:
    """Def 3.3 extended with conditions (Section 3.2)."""
    current = nodes
    for lstep in steps:
        selected = _unique(_filter_test(_axis_select(current, lstep.axis), lstep.test, lstep.axis))
        if lstep.condition is not None:
            selected = [node for node in selected if check_condition(node, lstep.condition)]
        current = selected
    return current


def check_condition(node: XPathNode, condition: tuple[SimplePath, ...]) -> bool:
    """``Check_t[Cond](i)`` (Section 3.2): some disjunct is non-empty."""
    return any(evaluate_steps([node], disjunct.steps) for disjunct in condition)


def evaluate_pathl(document: Document, query: PathL | SimplePath, start: list[XPathNode] | None = None) -> list[XPathNode]:
    """Evaluate an XPathℓ path from the document root (or ``start``).
    Absolute paths are element-rooted first (see :func:`element_rooted`)."""
    if isinstance(query, PathL) and query.absolute and start is None:
        adjusted = element_rooted(query)
        if adjusted is None:
            return []
        query = adjusted
    nodes: list[XPathNode] = start if start is not None else [document.root]
    return evaluate_steps(nodes, query.steps)


def element_rooted(query: PathL) -> PathL | None:
    """Convert a document-rooted path into the equivalent path rooted at
    the root *element* (the anchor the Figures 1/2 judgements use):

    * ``/child::T...``       → ``self::T...``
    * ``/descendant::T...``  → ``descendant-or-self::T...``
    * other leading axes select nothing from the virtual document node —
      the function returns None (the path is dead).
    """
    if not query.absolute:
        return query
    if not query.steps:
        return None
    first = query.steps[0]
    if first.axis is xp.Axis.CHILD:
        adjusted = LStep(xp.Axis.SELF, first.test, first.condition)
    elif first.axis is xp.Axis.DESCENDANT:
        adjusted = LStep(xp.Axis.DESCENDANT_OR_SELF, first.test, first.condition)
    elif first.axis in (xp.Axis.DESCENDANT_OR_SELF, xp.Axis.SELF):
        adjusted = first
    else:
        return None
    return PathL((adjusted,) + query.steps[1:], absolute=False)


# -- conversions ------------------------------------------------------------------


def to_xpath(query: PathL | SimplePath) -> xp.LocationPath:
    """Render an XPathℓ path as a full-XPath location path (so the generic
    evaluator can run it — used in cross-checking tests)."""
    steps = []
    for lstep in query.steps:
        predicates: tuple[xp.Expr, ...] = ()
        if lstep.condition is not None:
            disjuncts = [to_xpath(disjunct) for disjunct in lstep.condition]
            expr: xp.Expr = disjuncts[0]
            for disjunct in disjuncts[1:]:
                expr = xp.OrExpr(expr, disjunct)
            predicates = (expr,)
        steps.append(xp.Step(lstep.axis, lstep.test, predicates))
    absolute = isinstance(query, PathL) and query.absolute
    return xp.LocationPath(tuple(steps), absolute=absolute)


def from_xpath(expr: xp.Expr) -> PathL:
    """Interpret a full-XPath AST as XPathℓ, raising if it is not already
    in the sub-language.  (For arbitrary XPath use
    :func:`repro.xpath.approximation.approximate_query` instead.)"""
    if not isinstance(expr, xp.LocationPath):
        raise XPathTypeError(f"not an XPathℓ path: {expr}")
    steps: list[LStep] = []
    for xstep in expr.steps:
        condition = None
        if xstep.predicates:
            if len(xstep.predicates) > 1:
                raise XPathTypeError("XPathℓ steps take a single [Cond] predicate")
            condition = tuple(_condition_from_expr(xstep.predicates[0]))
        steps.append(LStep(xstep.axis, xstep.test, condition))
    return PathL(tuple(steps), absolute=expr.absolute)


def _condition_from_expr(expr: xp.Expr) -> list[SimplePath]:
    if isinstance(expr, xp.OrExpr):
        return _condition_from_expr(expr.left) + _condition_from_expr(expr.right)
    if isinstance(expr, xp.LocationPath) and not expr.absolute:
        lpath = from_xpath(expr)
        return [SimplePath(lpath.steps)]
    raise XPathTypeError(f"not an XPathℓ condition: {expr}")


def parse_pathl(expression: str) -> PathL:
    """Parse a string that must already be in XPathℓ."""
    try:
        return from_xpath(parse_xpath(expression))
    except XPathTypeError as exc:
        raise XPathSyntaxError(str(exc)) from exc
