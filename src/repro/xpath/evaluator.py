"""Full XPath evaluator over the in-memory data model.

This is the substrate the benchmarks run queries with — on the original
document and on its pruned version — to verify and measure the paper's
central claim ``[[Q]](prune(D, π)) = [[Q]](D)`` (Theorem 4.5).

All thirteen axes (minus namespace) are implemented, including the
backward ones that distinguish this paper from prior pruning work.
Predicates follow the XPath 1.0 rules: candidates are generated in *axis
order* (reverse document order for reverse axes) so ``position()`` and
``last()`` see proximity positions; a bare number predicate means
``position() = n``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import XPathTypeError
from repro.xmltree.nodes import Document, Element, Node, Text
from repro.xpath.ast import (
    AndExpr,
    Axis,
    BinaryExpr,
    Expr,
    FilterExpr,
    FunctionCall,
    KindTest,
    Literal,
    LocationPath,
    NameTest,
    NodeTest,
    Number,
    OrExpr,
    PathExpr,
    Step,
    UnaryMinus,
    UnionExpr,
    VariableRef,
)
from repro.xpath.functions import FUNCTIONS
from repro.xpath.parser import parse_xpath
from repro.xpath.values import (
    AttributeNode,
    XPathNode,
    XPathValue,
    compare,
    sort_document_order,
    string_value,
    to_boolean,
    to_number,
    to_string,
)

ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "div": lambda a, b: a / b if b != 0 else (float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")),
    "mod": lambda a, b: float("nan") if b == 0 else a - b * int(a / b),
}


class DocumentRoot:
    """The virtual document node above the root element (XPath's root
    node, which the paper's data model leaves implicit).  Absolute paths
    start here so ``/site/...`` and ``//x`` behave per the specification.
    """

    __slots__ = ("document",)

    def __init__(self, document: Document) -> None:
        self.document = document

    node_id = -1
    parent = None

    @property
    def children(self) -> list:
        return [self.document.root]

    def ancestors(self):
        return iter(())

    def ancestors_or_self(self):
        yield self

    def siblings_before(self):
        return iter(())

    def siblings_after(self):
        return iter(())

    def descendants(self):
        return self.document.root.self_and_descendants()

    def self_and_descendants(self):
        yield self
        yield from self.document.root.self_and_descendants()

    def text_value(self) -> str:
        return self.document.root.text_value()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DocumentRoot({self.document!r})"


@dataclass(slots=True)
class Context:
    """Evaluation context: the context node, position and size (for
    ``position()``/``last()``), variable bindings and the owning document."""

    node: XPathNode
    position: int = 1
    size: int = 1
    variables: dict[str, XPathValue] = field(default_factory=dict)
    document: Document | None = None

    def with_node(self, node: XPathNode, position: int, size: int) -> "Context":
        return Context(node, position, size, self.variables, self.document)


class XPathEvaluator:
    """Evaluator bound to one document.

    >>> evaluator = XPathEvaluator(document)
    >>> nodes = evaluator.select("descendant::author[child::text]")
    """

    def __init__(self, document: Document, variables: dict[str, XPathValue] | None = None) -> None:
        self.document = document
        self.document_root = DocumentRoot(document)
        self.variables = variables or {}
        self._id_map: dict[str, Element] | None = None
        # Node-counting hook for the metered engine (repro.engine): counts
        # every node touched by axis navigation.
        self.nodes_touched = 0

    # -- public API -------------------------------------------------------

    def evaluate(self, expression: str | Expr, context_node: XPathNode | None = None) -> XPathValue:
        """Evaluate to an arbitrary XPath value."""
        expr = parse_xpath(expression) if isinstance(expression, str) else expression
        node = context_node if context_node is not None else self.document.root
        context = Context(node, 1, 1, self.variables, self.document)
        return self._eval(expr, context)

    def select(self, expression: str | Expr, context_node: XPathNode | None = None) -> list:
        """Evaluate, requiring a node-set result (document order)."""
        value = self.evaluate(expression, context_node)
        if not isinstance(value, list):
            raise XPathTypeError(f"expression does not yield a node-set: {expression}")
        return value

    def select_ids(self, expression: str | Expr, context_node: XPathNode | None = None) -> list:
        """Node-set result as identifiers — attribute nodes are rendered
        as (owner id, name) pairs.  This is the paper's ``[[Q]]_t`` view,
        used for equality checks between original and pruned documents."""
        result = []
        for node in self.select(expression, context_node):
            if isinstance(node, AttributeNode):
                result.append((node.owner.node_id, node.name))
            else:
                result.append(node.node_id)
        return result

    # -- expression dispatch ------------------------------------------------

    def _eval(self, expr: Expr, context: Context) -> XPathValue:
        if isinstance(expr, LocationPath):
            if expr.absolute:
                start: list = [self.document_root]
            else:
                start = [context.node]
            return self._eval_steps(expr.steps, start, context)
        if isinstance(expr, PathExpr):
            source = self._eval(expr.source, context)
            if not isinstance(source, list):
                raise XPathTypeError("path applied to a non node-set")
            return self._eval_steps(expr.steps, source, context)
        if isinstance(expr, FilterExpr):
            value = self._eval(expr.primary, context)
            if not isinstance(value, list):
                raise XPathTypeError("predicate applied to a non node-set")
            nodes = value
            for predicate in expr.predicates:
                nodes = self._filter(nodes, predicate, context)
            return nodes
        if isinstance(expr, OrExpr):
            return to_boolean(self._eval(expr.left, context)) or to_boolean(
                self._eval(expr.right, context)
            )
        if isinstance(expr, AndExpr):
            return to_boolean(self._eval(expr.left, context)) and to_boolean(
                self._eval(expr.right, context)
            )
        if isinstance(expr, BinaryExpr):
            left = self._eval(expr.left, context)
            right = self._eval(expr.right, context)
            if expr.op in ARITHMETIC:
                return float(ARITHMETIC[expr.op](to_number(left), to_number(right)))
            return compare(expr.op, left, right)
        if isinstance(expr, UnaryMinus):
            return -to_number(self._eval(expr.operand, context))
        if isinstance(expr, UnionExpr):
            left = self._eval(expr.left, context)
            right = self._eval(expr.right, context)
            if not (isinstance(left, list) and isinstance(right, list)):
                raise XPathTypeError("union of non node-sets")
            return sort_document_order(left + right)
        if isinstance(expr, FunctionCall):
            if expr.name == "id":
                # id() needs the document-wide id map: handled here rather
                # than in the context-free function library.
                if len(expr.args) != 1:
                    raise XPathTypeError("id() takes one argument")
                return self._fn_id(self._eval(expr.args[0], context))
            spec = FUNCTIONS.get(expr.name)
            if spec is None:
                raise XPathTypeError(f"unknown function {expr.name}()")
            spec.check_arity(len(expr.args))
            args = [self._eval(arg, context) for arg in expr.args]
            return spec.implementation(context, args)
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Number):
            return expr.value
        if isinstance(expr, VariableRef):
            try:
                return context.variables[expr.name]
            except KeyError:
                raise XPathTypeError(f"unbound variable ${expr.name}") from None
        raise XPathTypeError(f"cannot evaluate {expr!r}")

    def _fn_id(self, argument: XPathValue) -> list:
        """XPath 1.0 ``id()``.  Strictly this keys on DTD-declared ID
        attributes; without a DTD at hand the pragmatic (and common)
        interpretation is attributes literally named ``id`` — which is
        what XMark declares as its ID attributes anyway."""
        if self._id_map is None:
            self._id_map = {}
            for node in self.document.elements():
                value = node.attributes.get("id")
                if value is not None and value not in self._id_map:
                    self._id_map[value] = node
        if isinstance(argument, list):
            tokens = [
                token
                for node in argument
                for token in string_value(node).split()
            ]
        else:
            tokens = to_string(argument).split()
        found = [self._id_map[token] for token in tokens if token in self._id_map]
        return sort_document_order(found)

    # -- location steps ---------------------------------------------------------

    def _eval_steps(self, steps: tuple[Step, ...], start: list, context: Context) -> list:
        current = sort_document_order(list(start))
        for step in steps:
            gathered: list = []
            for node in current:
                gathered.extend(self._eval_step(step, node, context))
            current = sort_document_order(gathered)
        return current

    def _eval_step(self, step: Step, node: XPathNode, context: Context) -> list:
        candidates = [
            candidate
            for candidate in self._axis_nodes(step.axis, node)
            if self._test(step.axis, step.test, candidate)
        ]
        self.nodes_touched += len(candidates)
        for predicate in step.predicates:
            candidates = self._filter(candidates, predicate, context)
        return candidates

    def _filter(self, candidates: list, predicate: Expr, context: Context) -> list:
        size = len(candidates)
        kept = []
        for position, node in enumerate(candidates, start=1):
            value = self._eval(predicate, context.with_node(node, position, size))
            if isinstance(value, float):
                if value == position:
                    kept.append(node)
            elif to_boolean(value):
                kept.append(node)
        return kept

    # -- axes ---------------------------------------------------------------------

    def _axis_nodes(self, axis: Axis, node: XPathNode) -> Iterator[XPathNode]:
        """Yield the axis members in axis order (reverse axes yield
        reverse document order, as ``position()`` requires)."""
        if isinstance(node, AttributeNode):
            yield from self._axis_from_attribute(axis, node)
            return
        assert isinstance(node, (Element, Text, DocumentRoot))
        if axis is Axis.SELF:
            yield node
        elif axis is Axis.CHILD:
            if isinstance(node, (Element, DocumentRoot)):
                yield from node.children
        elif axis is Axis.DESCENDANT:
            yield from node.descendants()
        elif axis is Axis.DESCENDANT_OR_SELF:
            yield node
            yield from node.descendants()
        elif axis is Axis.PARENT:
            if node.parent is not None:
                yield node.parent
        elif axis is Axis.ANCESTOR:
            yield from node.ancestors()
        elif axis is Axis.ANCESTOR_OR_SELF:
            yield node
            yield from node.ancestors()
        elif axis is Axis.FOLLOWING_SIBLING:
            yield from node.siblings_after()
        elif axis is Axis.PRECEDING_SIBLING:
            yield from node.siblings_before()
        elif axis is Axis.FOLLOWING:
            for ancestor_or_self in node.ancestors_or_self():
                for sibling in ancestor_or_self.siblings_after():
                    yield from sibling.self_and_descendants()
        elif axis is Axis.PRECEDING:
            for ancestor_or_self in node.ancestors_or_self():
                for sibling in ancestor_or_self.siblings_before():
                    # Reverse document order within each preceding subtree.
                    yield from reversed(list(sibling.self_and_descendants()))
        elif axis is Axis.ATTRIBUTE:
            if isinstance(node, Element):
                for order, (name, value) in enumerate(node.attributes.items()):
                    yield AttributeNode(node, name, value, order)
        else:  # pragma: no cover - exhaustive over Axis
            raise XPathTypeError(f"unsupported axis {axis}")

    @staticmethod
    def _axis_from_attribute(axis: Axis, node: AttributeNode) -> Iterator[XPathNode]:
        if axis is Axis.SELF:
            yield node
        elif axis is Axis.PARENT:
            yield node.owner
        elif axis is Axis.ANCESTOR:
            yield node.owner
            yield from node.owner.ancestors()
        elif axis is Axis.ANCESTOR_OR_SELF:
            yield node
            yield node.owner
            yield from node.owner.ancestors()
        # All other axes are empty from an attribute node.

    # -- node tests ------------------------------------------------------------------

    @staticmethod
    def _test(axis: Axis, test: NodeTest, node: XPathNode) -> bool:
        principal_is_attribute = axis is Axis.ATTRIBUTE
        if isinstance(test, NameTest):
            if test.name is None:  # '*'
                return isinstance(node, AttributeNode) if principal_is_attribute else isinstance(node, Element)
            if principal_is_attribute:
                return isinstance(node, AttributeNode) and node.name == test.name
            return isinstance(node, Element) and node.tag == test.name
        assert isinstance(test, KindTest)
        if test.kind == "node":
            return True
        if test.kind == "text":
            return isinstance(node, Text)
        if test.kind == "element":
            return isinstance(node, Element)
        # comment() / processing-instruction(): not part of the data model.
        return False


def evaluate(document: Document, expression: str, **variables: XPathValue) -> XPathValue:
    """One-shot convenience evaluation from the document root."""
    return XPathEvaluator(document, variables or None).evaluate(expression)


def select(document: Document, expression: str) -> list:
    """One-shot node-set selection from the document root."""
    return XPathEvaluator(document).select(expression)
