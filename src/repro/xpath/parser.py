"""Recursive-descent parser for XPath.

Produces the :mod:`repro.xpath.ast` tree.  The grammar is XPath 1.0 with
the abbreviations expanded during parsing:

* ``//``     → ``/descendant-or-self::node()/``
* ``.``      → ``self::node()``
* ``..``     → ``parent::node()``
* ``@name``  → ``attribute::name``
* no axis    → ``child::``
"""

from __future__ import annotations

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    Axis,
    BinaryExpr,
    Expr,
    FilterExpr,
    FunctionCall,
    KindTest,
    Literal,
    LocationPath,
    NameTest,
    NodeTest,
    Number,
    OrExpr,
    AndExpr,
    PathExpr,
    Step,
    UnaryMinus,
    UnionExpr,
    VariableRef,
)
from repro.xpath.lexer import Token, TokenKind, tokenize

_AXES_BY_NAME = {axis.value: axis for axis in Axis}

_DESCENDANT_OR_SELF_STEP = Step(Axis.DESCENDANT_OR_SELF, KindTest("node"))


class XPathParser:
    """One-shot parser instance; use :func:`parse_xpath`."""

    def __init__(self, expression: str) -> None:
        self._expression = expression
        self._tokens = tokenize(expression)
        self._index = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _check(self, kind: TokenKind, value: str | None = None) -> bool:
        token = self._peek()
        return token.kind is kind and (value is None or token.value == value)

    def _accept(self, kind: TokenKind, value: str | None = None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise XPathSyntaxError(
                f"expected {kind.value} in {context}, found {token.value!r} "
                f"(offset {token.position}) in {self._expression!r}"
            )
        return self._advance()

    def _error(self, message: str) -> XPathSyntaxError:
        token = self._peek()
        return XPathSyntaxError(
            f"{message} at offset {token.position} (near {token.value!r}) in {self._expression!r}"
        )

    # -- entry points ------------------------------------------------------

    def parse(self) -> Expr:
        expr = self._parse_or()
        if self._peek().kind is not TokenKind.EOF:
            raise self._error("trailing input")
        return expr

    # -- expression levels ----------------------------------------------------

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._accept(TokenKind.OPERATOR, "or"):
            left = OrExpr(left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_comparison()
        while self._accept(TokenKind.OPERATOR, "and"):
            left = AndExpr(left, self._parse_comparison())
        return left

    _EQUALITY = ("=", "!=", "eq", "ne", "is", "<<", ">>")
    _RELATIONAL = ("<", "<=", ">", ">=", "lt", "le", "gt", "ge")

    def _parse_comparison(self) -> Expr:
        left = self._parse_relational()
        while True:
            token = self._peek()
            if token.kind is TokenKind.OPERATOR and token.value in self._EQUALITY:
                self._advance()
                left = BinaryExpr(token.value, left, self._parse_relational())
            else:
                return left

    def _parse_relational(self) -> Expr:
        left = self._parse_additive()
        while True:
            token = self._peek()
            if token.kind is TokenKind.OPERATOR and token.value in self._RELATIONAL:
                self._advance()
                left = BinaryExpr(token.value, left, self._parse_additive())
            else:
                return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind is TokenKind.OPERATOR and token.value in ("+", "-"):
                self._advance()
                left = BinaryExpr(token.value, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind is TokenKind.OPERATOR and token.value in ("*", "div", "mod"):
                self._advance()
                left = BinaryExpr(token.value, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self._accept(TokenKind.OPERATOR, "-"):
            return UnaryMinus(self._parse_unary())
        return self._parse_union()

    def _parse_union(self) -> Expr:
        left = self._parse_path()
        while self._accept(TokenKind.OPERATOR, "|"):
            left = UnionExpr(left, self._parse_path())
        return left

    # -- paths ------------------------------------------------------------------

    def _parse_path(self) -> Expr:
        token = self._peek()
        if token.kind in (TokenKind.SLASH, TokenKind.DOUBLE_SLASH):
            return self._parse_absolute_path()
        if self._starts_step(token):
            steps = self._parse_relative_steps()
            return LocationPath(tuple(steps), absolute=False)
        # FilterExpr, optionally continued by '/' or '//'.
        primary = self._parse_primary()
        predicates: list[Expr] = []
        while self._check(TokenKind.LBRACKET):
            predicates.append(self._parse_predicate())
        source: Expr = FilterExpr(primary, tuple(predicates)) if predicates else primary
        if self._peek().kind in (TokenKind.SLASH, TokenKind.DOUBLE_SLASH):
            steps: list[Step] = []
            if self._accept(TokenKind.DOUBLE_SLASH):
                steps.append(_DESCENDANT_OR_SELF_STEP)
            else:
                self._expect(TokenKind.SLASH, "path continuation")
            steps.extend(self._parse_relative_steps())
            return PathExpr(source, tuple(steps))
        return source

    def _parse_absolute_path(self) -> LocationPath:
        steps: list[Step] = []
        if self._accept(TokenKind.DOUBLE_SLASH):
            steps.append(_DESCENDANT_OR_SELF_STEP)
            steps.extend(self._parse_relative_steps())
        else:
            self._expect(TokenKind.SLASH, "absolute path")
            if self._starts_step(self._peek()):
                steps.extend(self._parse_relative_steps())
        return LocationPath(tuple(steps), absolute=True)

    @staticmethod
    def _starts_step(token: Token) -> bool:
        return token.kind in (
            TokenKind.NAME,
            TokenKind.AXIS,
            TokenKind.STAR,
            TokenKind.NODE_TYPE,
            TokenKind.AT,
            TokenKind.DOT,
            TokenKind.DOTDOT,
        )

    def _parse_relative_steps(self) -> list[Step]:
        steps = [self._parse_step()]
        while True:
            if self._accept(TokenKind.DOUBLE_SLASH):
                steps.append(_DESCENDANT_OR_SELF_STEP)
                steps.append(self._parse_step())
            elif self._accept(TokenKind.SLASH):
                steps.append(self._parse_step())
            else:
                return steps

    def _parse_step(self) -> Step:
        token = self._peek()
        if token.kind is TokenKind.DOT:
            self._advance()
            return Step(Axis.SELF, KindTest("node"))
        if token.kind is TokenKind.DOTDOT:
            self._advance()
            return Step(Axis.PARENT, KindTest("node"))
        axis = Axis.CHILD
        if token.kind is TokenKind.AXIS:
            self._advance()
            try:
                axis = _AXES_BY_NAME[token.value]
            except KeyError:
                raise XPathSyntaxError(f"unknown axis {token.value!r}") from None
        elif token.kind is TokenKind.AT:
            self._advance()
            axis = Axis.ATTRIBUTE
        test = self._parse_node_test()
        predicates: list[Expr] = []
        while self._check(TokenKind.LBRACKET):
            predicates.append(self._parse_predicate())
        return Step(axis, test, tuple(predicates))

    def _parse_node_test(self) -> NodeTest:
        token = self._peek()
        if token.kind is TokenKind.STAR:
            self._advance()
            return NameTest(None)
        if token.kind is TokenKind.NODE_TYPE:
            self._advance()
            self._expect(TokenKind.LPAREN, f"{token.value}()")
            if token.value == "processing-instruction" and self._check(TokenKind.LITERAL):
                self._advance()  # PI target is accepted and ignored
            self._expect(TokenKind.RPAREN, f"{token.value}()")
            return KindTest(token.value)
        if token.kind is TokenKind.NAME:
            self._advance()
            # The paper writes the node kind test without parentheses
            # (self::node, parent::node); accept that spelling.  Bare
            # ``text`` stays a *name* test — XMark has an element named
            # text — so text nodes are selected with standard ``text()``.
            if token.value == "node":
                return KindTest("node")
            return NameTest(token.value)
        # A bare node-type name used without parentheses in axis position
        # (the paper writes child::text and self::node): accept it.
        if token.kind is TokenKind.FUNCTION and token.value in ("node", "text", "element", "comment"):
            self._advance()
            self._expect(TokenKind.LPAREN, f"{token.value}()")
            self._expect(TokenKind.RPAREN, f"{token.value}()")
            return KindTest(token.value)
        raise self._error("expected a node test")

    def _parse_predicate(self) -> Expr:
        self._expect(TokenKind.LBRACKET, "predicate")
        expr = self._parse_or()
        self._expect(TokenKind.RBRACKET, "predicate")
        return expr

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.VARIABLE:
            self._advance()
            return VariableRef(token.value)
        if token.kind is TokenKind.LITERAL:
            self._advance()
            return Literal(token.value)
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return Number(float(token.value))
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_or()
            self._expect(TokenKind.RPAREN, "parenthesised expression")
            return expr
        if token.kind is TokenKind.FUNCTION:
            self._advance()
            self._expect(TokenKind.LPAREN, f"{token.value}()")
            args: list[Expr] = []
            if not self._check(TokenKind.RPAREN):
                args.append(self._parse_or())
                while self._accept(TokenKind.COMMA):
                    args.append(self._parse_or())
            self._expect(TokenKind.RPAREN, f"{token.value}()")
            return FunctionCall(token.value, tuple(args))
        raise self._error("expected an expression")


def parse_xpath(expression: str) -> Expr:
    """Parse an XPath expression into the AST."""
    return XPathParser(expression).parse()


def parse_location_path(expression: str) -> LocationPath:
    """Parse, requiring the result to be a plain location path."""
    expr = parse_xpath(expression)
    if not isinstance(expr, LocationPath):
        raise XPathSyntaxError(f"{expression!r} is not a location path")
    return expr
