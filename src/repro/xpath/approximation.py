"""Approximation of full XPath into XPathℓ (Sections 3.3 and 4.3).

Two transformations happen here:

1. **Axis rewriting** (Section 4.3).  ``preceding``/``following`` are first
   expanded per the W3C equivalence::

       Axis::Test  ≡  ancestor-or-self::node /
                      (Axis)-sibling::node /
                      descendant-or-self::Test

   then the sibling axes are *approximated* by ``parent::node/child::Test``
   — the only lossy step, and the one the paper measures (QP9/QP11 still
   prune to 7.5%).

2. **Predicate approximation** (Section 3.3).  Every general predicate
   ``Exp`` is rewritten to a disjunction of simple paths by the extractor
   ``P``: structural paths are retained; non-structural conditions
   contribute the always-true ``{self::node}`` so the inferred projector is
   never *restricted* by something the analysis cannot see; function
   arguments are suffixed according to the ``F(f, i)`` table
   (:func:`repro.xpath.functions.function_needs_subtree`).

   One deliberate divergence from the paper's (informal, footnote 3)
   presentation: operands of *value* comparisons are suffixed with
   ``descendant-or-self::node``.  The comparison ``author = "Dante"``
   reads the string-value of ``author``, i.e. its text descendants;
   extracting the bare path ``author`` would let the projector prune the
   text and change the comparison's outcome.  The paper's worked example
   elides this; its prose rule for functions (``F(string, 1) =
   descendant-or-self::node``) shows the intended mechanism, which we
   apply to comparison operands uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.xpath import ast as xp
from repro.xpath.functions import function_needs_subtree
from repro.xpath.xpathl import (
    DOS_NODE,
    SELF_NODE_PATH,
    LStep,
    PathL,
    SimplePath,
    step,
)

_VALUE_COMPARISONS = frozenset(("=", "!=", "<", "<=", ">", ">=", "eq", "ne", "lt", "le", "gt", "ge"))
_NODE_COMPARISONS = frozenset(("is", "<<", ">>"))


@dataclass(slots=True)
class Approximation:
    """Result of approximating one query.

    ``main`` is the XPathℓ approximation of the query itself;
    ``absolute_paths`` collects paths found inside predicates that are
    rooted at the document root (each analysed separately and unioned into
    the projector).
    """

    main: PathL
    absolute_paths: list[PathL] = field(default_factory=list)


# -- Section 4.3: axis rewriting ------------------------------------------------


def rewrite_axis_steps(axis: xp.Axis, test: xp.NodeTest) -> list[tuple[xp.Axis, xp.NodeTest]]:
    """Rewrite one ``Axis::Test`` into a sequence of XPathℓ
    ``(axis, test)`` pairs, per Section 4.3."""
    if axis in (xp.Axis.PRECEDING, xp.Axis.FOLLOWING):
        # Pass 1 (exact):  ancestor-or-self::node / Axis-sibling::node /
        #                  descendant-or-self::Test
        # Pass 2 (approx): the sibling step becomes parent::node/child::node.
        return [
            (xp.Axis.ANCESTOR_OR_SELF, xp.KindTest("node")),
            (xp.Axis.PARENT, xp.KindTest("node")),
            (xp.Axis.CHILD, xp.KindTest("node")),
            (xp.Axis.DESCENDANT_OR_SELF, test),
        ]
    if axis in (xp.Axis.PRECEDING_SIBLING, xp.Axis.FOLLOWING_SIBLING):
        return [
            (xp.Axis.PARENT, xp.KindTest("node")),
            (xp.Axis.CHILD, test),
        ]
    return [(axis, test)]


def _rewrite_step(xstep: xp.Step, condition: tuple[SimplePath, ...] | None) -> list[LStep]:
    """Axis-rewrite one full-XPath step; the (already approximated)
    condition lands on the last produced step."""
    pairs = rewrite_axis_steps(xstep.axis, xstep.test)
    steps = [LStep(axis, test) for axis, test in pairs[:-1]]
    last_axis, last_test = pairs[-1]
    steps.append(LStep(last_axis, last_test, condition))
    return steps


# -- Section 3.3: the path extractor P ----------------------------------------


class PredicateApproximator:
    """Stateful extractor: accumulates absolute side-paths while
    extracting condition paths."""

    def __init__(self) -> None:
        self.absolute_paths: list[PathL] = []

    # P : Expr -> list[SimplePath]
    def extract(self, expr: xp.Expr) -> list[SimplePath]:
        if isinstance(expr, xp.LocationPath):
            if expr.absolute:
                # Data needs are rooted at the document, not the context
                # node: hoist the path, keep the context node.
                self.absolute_paths.append(self._hoist_absolute(expr))
                return [SELF_NODE_PATH]
            return self.flatten_relative(expr)
        if isinstance(expr, (xp.OrExpr, xp.AndExpr)):
            return _dedup(self.extract(expr.left) + self.extract(expr.right))
        if isinstance(expr, xp.BinaryExpr):
            return self._extract_binary(expr)
        if isinstance(expr, xp.UnaryMinus):
            return _dedup(self.extract(expr.operand) + [SELF_NODE_PATH])
        if isinstance(expr, xp.UnionExpr):
            return _dedup(self.extract(expr.left) + self.extract(expr.right))
        if isinstance(expr, xp.FunctionCall):
            return self._extract_function(expr)
        if isinstance(expr, (xp.Literal, xp.Number)):
            # AExp / base value: non-structural (a bare number predicate is
            # positional!), keep the context node.
            return [SELF_NODE_PATH]
        if isinstance(expr, xp.VariableRef):
            # Variables are resolved by the XQuery extractor before we get
            # here; a residual variable is treated as non-structural.
            return [SELF_NODE_PATH]
        if isinstance(expr, (xp.PathExpr, xp.FilterExpr)):
            # Variable-rooted or filtered paths inside predicates: extract
            # from every component conservatively.
            paths: list[SimplePath] = [SELF_NODE_PATH]
            if isinstance(expr, xp.PathExpr):
                paths += self.extract(expr.source)
                if isinstance(expr.source, xp.VariableRef):
                    # Variable-rooted: the XQuery extractor anchors these.
                    paths += self.flatten_relative(xp.LocationPath(expr.steps, absolute=False))
                else:
                    # Computed source (e.g. id('x')/name): the results may
                    # live anywhere in the document, so the continuation is
                    # hoisted as a document-wide side path (sound: keeps
                    # every possible target).
                    continuation = approximate_query(
                        xp.LocationPath(expr.steps, absolute=False)
                    )
                    self.absolute_paths.extend(continuation.absolute_paths)
                    self.absolute_paths.append(
                        continuation.main.prepend(DOS_NODE).append(DOS_NODE)
                    )
            else:
                paths += self.extract(expr.primary)
                for predicate in expr.predicates:
                    paths += self.extract(predicate)
            return _dedup(paths)
        raise AnalysisError(f"cannot approximate predicate {expr}")

    # -- operators -----------------------------------------------------------

    def _extract_binary(self, expr: xp.BinaryExpr) -> list[SimplePath]:
        if expr.op in _VALUE_COMPARISONS or expr.op in _NODE_COMPARISONS:
            # A comparison with a *path* operand can only hold when that
            # path is non-empty (general comparisons are existential), so
            # the operand paths themselves guard the condition and no
            # always-true disjunct is needed.  Only a comparison with no
            # guarding path operand (e.g. [position() > 1], [1 = 1]) must
            # keep the context node unconditionally.
            reads_values = expr.op in _VALUE_COMPARISONS
            parts: list[SimplePath] = []
            guarded = False
            for operand in (expr.left, expr.right):
                if isinstance(operand, (xp.Literal, xp.Number)):
                    continue
                if isinstance(operand, xp.LocationPath):
                    guarded = guarded or not operand.absolute
                    parts += self._materialized(operand) if reads_values else self.extract(operand)
                else:
                    parts += self._materialized(operand) if reads_values else self.extract(operand)
            if not guarded:
                parts.append(SELF_NODE_PATH)
            return _dedup(parts)
        # Arithmetic: operands are read as numbers (string values); a bare
        # arithmetic predicate is positional, hence the self::node.
        left = self._materialized(expr.left)
        right = self._materialized(expr.right)
        return _dedup(left + right + [SELF_NODE_PATH])

    def _materialized(self, expr: xp.Expr) -> list[SimplePath]:
        """Extraction for an operand whose *string value* is read: path
        operands get the ``descendant-or-self::node`` suffix."""
        if isinstance(expr, xp.LocationPath) and not expr.absolute:
            return [_with_subtree(p) for p in self.flatten_relative(expr)]
        if isinstance(expr, xp.LocationPath):
            self.absolute_paths.append(self._hoist_absolute(expr, materialize=True))
            return [SELF_NODE_PATH]
        return self.extract(expr)

    def _extract_function(self, expr: xp.FunctionCall) -> list[SimplePath]:
        # P(f(E1..En)) = ∪i P(Ei)/F(f,i) ∪ {self::node}
        if expr.name == "id":
            # id() dereferences the document-wide ID map: every element's
            # id attribute is a data need (hoisted as a side path).
            self.absolute_paths.append(
                PathL((DOS_NODE, step(xp.Axis.ATTRIBUTE, "id")))
            )
        paths: list[SimplePath] = [SELF_NODE_PATH]
        for index, arg in enumerate(expr.args):
            if function_needs_subtree(expr.name, index):
                paths += self._materialized(arg)
            else:
                paths += self.extract(arg)
        return _dedup(paths)

    # -- path flattening -------------------------------------------------------

    def flatten_relative(self, location: xp.LocationPath) -> list[SimplePath]:
        """Flatten a relative path (with arbitrary predicates) into the set
        of simple paths denoting its data needs: the predicate-stripped
        spine plus, for every predicate, the spine-prefixed extraction of
        that predicate."""
        prefixes: list[tuple[LStep, ...]] = [()]
        results: list[SimplePath] = []
        spine: list[LStep] = []
        for xstep in location.steps:
            rewritten = _rewrite_step(xp.Step(xstep.axis, xstep.test), None)
            spine.extend(rewritten)
            for predicate in xstep.predicates:
                for sub in self.extract(predicate):
                    results.append(SimplePath(tuple(spine) + sub.steps))
        results.insert(0, SimplePath(tuple(spine)))
        del prefixes
        return _dedup(results)

    def _hoist_absolute(self, location: xp.LocationPath, materialize: bool = False) -> PathL:
        """Turn an absolute path found inside a predicate into a root-level
        XPathℓ path to be analysed on its own."""
        approximation = approximate_query(xp.LocationPath(location.steps, absolute=True))
        self.absolute_paths.extend(approximation.absolute_paths)
        main = approximation.main
        if materialize:
            main = main.append(DOS_NODE)
        return main


def _with_subtree(path: SimplePath) -> SimplePath:
    """Append ``descendant-or-self::node`` unless the path already ends in
    it, or ends at an attribute or text node (their string value is
    self-contained)."""
    if not path.steps:
        return SimplePath((DOS_NODE,))
    last = path.steps[-1]
    if last.axis is xp.Axis.ATTRIBUTE:
        return path
    if isinstance(last.test, xp.KindTest) and last.test.kind == "text":
        return path
    if last.axis is xp.Axis.DESCENDANT_OR_SELF and isinstance(last.test, xp.KindTest) and last.test.kind == "node":
        return path
    return SimplePath(path.steps + (DOS_NODE,))


def _dedup(paths: list[SimplePath]) -> list[SimplePath]:
    seen: set[tuple] = set()
    result: list[SimplePath] = []
    for path in paths:
        if path.steps not in seen:
            seen.add(path.steps)
            result.append(path)
    return result


# -- the public entry point ------------------------------------------------------


def approximate_query(query: xp.Expr | str) -> Approximation:
    """Approximate a full XPath query into XPathℓ.

    The result's ``main`` path soundly approximates the query for
    projector-inference purposes (Section 3.3): infer a projector for the
    approximation (plus one per ``absolute_paths`` entry, unioned) and it
    is a sound projector for the original query.
    """
    from repro.xpath.parser import parse_xpath

    expr = parse_xpath(query) if isinstance(query, str) else query
    if isinstance(expr, xp.PathExpr) and not isinstance(expr.source, xp.VariableRef):
        # A computed path source at top level (id('x')/name, (…)[1]/a):
        # results may live anywhere, so the main data-need path is the
        # document-wide continuation; the source's own needs become side
        # paths (all rooted at the document root at top level).
        approximator = PredicateApproximator()
        source_needs = approximator.extract(expr.source)
        inner = approximate_query(xp.LocationPath(expr.steps, absolute=False))
        main = inner.main.prepend(DOS_NODE)
        side = list(inner.absolute_paths) + approximator.absolute_paths
        side += [PathL(simple_path.steps) for simple_path in source_needs]
        return Approximation(main, side)
    if not isinstance(expr, xp.LocationPath):
        raise AnalysisError(
            f"not a location path: {expr} (XQuery expressions go through "
            "repro.xquery.extraction instead)"
        )
    approximator = PredicateApproximator()
    steps: list[LStep] = []
    for xstep in expr.steps:
        condition: tuple[SimplePath, ...] | None = None
        if xstep.predicates:
            extracted: list[SimplePath] = []
            for predicate in xstep.predicates:
                extracted += approximator.extract(predicate)
            condition = tuple(_dedup(extracted))
        steps.extend(_rewrite_step(xstep, condition))
    return Approximation(PathL(tuple(steps), absolute=expr.absolute), approximator.absolute_paths)
