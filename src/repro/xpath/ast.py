"""Abstract syntax for full XPath (the paper's generic queries ``Q``).

This AST covers XPath 1.0 plus the XPath 2.0 value/node comparison
operators the paper lists in Section 3.3 (``eq ne lt le gt ge is << >>``).
The static analysis never works on this AST directly: it is first
approximated into XPathℓ (:mod:`repro.xpath.xpathl`) by
:mod:`repro.xpath.approximation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Axis(Enum):
    """The thirteen XPath axes (namespace axis omitted — the paper's data
    model has no namespaces)."""

    CHILD = "child"
    DESCENDANT = "descendant"
    PARENT = "parent"
    ANCESTOR = "ancestor"
    DESCENDANT_OR_SELF = "descendant-or-self"
    ANCESTOR_OR_SELF = "ancestor-or-self"
    FOLLOWING = "following"
    PRECEDING = "preceding"
    FOLLOWING_SIBLING = "following-sibling"
    PRECEDING_SIBLING = "preceding-sibling"
    SELF = "self"
    ATTRIBUTE = "attribute"

    @property
    def is_forward(self) -> bool:
        return self in _FORWARD_AXES

    @property
    def is_downward(self) -> bool:
        """Downward in the paper's sense (XPathℓ keeps these)."""
        return self in (
            Axis.CHILD,
            Axis.DESCENDANT,
            Axis.DESCENDANT_OR_SELF,
            Axis.ATTRIBUTE,
        )

    @property
    def is_upward(self) -> bool:
        return self in (Axis.PARENT, Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF)


_FORWARD_AXES = frozenset(
    (
        Axis.CHILD,
        Axis.DESCENDANT,
        Axis.DESCENDANT_OR_SELF,
        Axis.FOLLOWING,
        Axis.FOLLOWING_SIBLING,
        Axis.SELF,
        Axis.ATTRIBUTE,
    )
)


# -- node tests ---------------------------------------------------------------


class NodeTest:
    """Base class for node tests."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class NameTest(NodeTest):
    """``tag`` — or ``*`` when :attr:`name` is None."""

    name: str | None  # None encodes the wildcard '*'

    def __str__(self) -> str:
        return self.name if self.name is not None else "*"


@dataclass(frozen=True, slots=True)
class KindTest(NodeTest):
    """``node()``, ``text()``, ``comment()``,
    ``processing-instruction()``, or the paper's ``element()``."""

    kind: str  # 'node' | 'text' | 'comment' | 'processing-instruction' | 'element'

    def __str__(self) -> str:
        return f"{self.kind}()"


# -- expressions ---------------------------------------------------------------


class Expr:
    """Base class for XPath expressions."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Step:
    """One location step ``axis::test[pred1][pred2]...``."""

    axis: Axis
    test: NodeTest
    predicates: tuple["Expr", ...] = ()

    def __str__(self) -> str:
        preds = "".join(f"[{predicate}]" for predicate in self.predicates)
        return f"{self.axis.value}::{self.test}{preds}"


@dataclass(frozen=True, slots=True)
class LocationPath(Expr):
    """``/step/step/...`` (absolute) or ``step/step/...`` (relative)."""

    steps: tuple[Step, ...]
    absolute: bool = False

    def __str__(self) -> str:
        body = "/".join(str(step) for step in self.steps)
        return ("/" + body) if self.absolute else body


@dataclass(frozen=True, slots=True)
class PathExpr(Expr):
    """A filter expression continued by a relative path, e.g.
    ``$x/child::a`` or ``(e)[1]/b``."""

    source: Expr
    steps: tuple[Step, ...]

    def __str__(self) -> str:
        tail = "/".join(str(step) for step in self.steps)
        return f"{self.source}/{tail}" if tail else str(self.source)


@dataclass(frozen=True, slots=True)
class FilterExpr(Expr):
    """A primary expression with predicates: ``$x[1]``, ``(a|b)[c]``."""

    primary: Expr
    predicates: tuple[Expr, ...]

    def __str__(self) -> str:
        preds = "".join(f"[{predicate}]" for predicate in self.predicates)
        return f"({self.primary}){preds}"


@dataclass(frozen=True, slots=True)
class OrExpr(Expr):
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} or {self.right}"


@dataclass(frozen=True, slots=True)
class AndExpr(Expr):
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} and {self.right}"


#: General (node-set aware) and value comparison operators, plus node
#: identity/order comparisons — the ``op`` set of Section 3.3.
COMPARISON_OPERATORS = frozenset(
    ("=", "!=", "<", "<=", ">", ">=", "eq", "ne", "lt", "le", "gt", "ge", "is", "<<", ">>")
)

ARITHMETIC_OPERATORS = frozenset(("+", "-", "*", "div", "mod"))


@dataclass(frozen=True, slots=True)
class BinaryExpr(Expr):
    """Comparison or arithmetic operator application."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True, slots=True)
class UnaryMinus(Expr):
    operand: Expr

    def __str__(self) -> str:
        return f"-{self.operand}"


@dataclass(frozen=True, slots=True)
class UnionExpr(Expr):
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} | {self.right}"


@dataclass(frozen=True, slots=True)
class FunctionCall(Expr):
    name: str
    args: tuple[Expr, ...] = ()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(arg) for arg in self.args)})"


@dataclass(frozen=True, slots=True)
class Literal(Expr):
    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True, slots=True)
class Number(Expr):
    value: float

    def __str__(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return str(self.value)


@dataclass(frozen=True, slots=True)
class VariableRef(Expr):
    name: str

    def __str__(self) -> str:
        return f"${self.name}"
