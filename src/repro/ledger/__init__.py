"""Verifiable pruning: the attestation ledger (`repro.ledger`).

The differential suite proves, offline, that every pruning path produces
byte-identical output and that pruned views answer queries exactly like
the original (Thm 4.5).  This package promotes that invariant to a
runtime, auditable contract:

* :mod:`~repro.ledger.canonical` — deterministic JSON + incremental
  SHA-256 content hashing of inputs, outputs and record streams;
* :mod:`~repro.ledger.ledger` — an append-only, crash-safe, hash-chained
  JSONL ledger of ``(grammar_fp, workload_fp, limits_fp, input_hash) →
  (output_hash, stats, provenance)`` attestations, doubling as a
  content-addressed result cache (dedup: a recorded input/workload pair
  is served from stored bytes instead of re-pruned);
* :mod:`~repro.ledger.replay` — re-prune every recorded entry and attest
  the hashes still hold, with a structured divergence report.

Pass a :class:`Ledger` to :func:`repro.prune` / :func:`repro.extract`
via ``ledger=``, to the service via ``ServiceConfig(ledger=...)`` or
``repro-xml serve --ledger``, and verify with ``repro-xml verify-ledger``.
"""

from repro.ledger.canonical import (
    HashingSink,
    canonical_json,
    hash_canonical,
    hash_file,
    hash_records,
    hash_text,
    limits_fingerprint,
)
from repro.ledger.ledger import (
    Ledger,
    LedgerEntry,
    ResultStore,
    decode_stats,
    encode_stats,
)
from repro.ledger.replay import Attestation, ReplayReport, replay_ledger

__all__ = [
    "Attestation",
    "HashingSink",
    "Ledger",
    "LedgerEntry",
    "ReplayReport",
    "ResultStore",
    "canonical_json",
    "decode_stats",
    "encode_stats",
    "hash_canonical",
    "hash_file",
    "hash_records",
    "hash_text",
    "limits_fingerprint",
    "replay_ledger",
]
