"""Canonical JSON and incremental content hashing for the ledger.

Everything the attestation ledger signs goes through one deterministic
encoding so that the same value hashes to the same digest on every
platform, process and Python version:

* dict keys must be strings; they are NFC-normalized and sorted by code
  point (two keys that collide after normalization are an error, not a
  silent overwrite);
* strings are NFC-normalized; the encoder never ASCII-escapes, so the
  byte stream is plain UTF-8;
* floats must be finite (``NaN``/``Infinity`` have no JSON spelling) and
  ``-0.0`` collapses to ``0.0``; CPython's shortest-round-trip ``repr``
  then guarantees ``json.loads`` gives back the identical float;
* ints, bools and ``None`` use their JSON literals; any other type is a
  :class:`TypeError`.

The encoding is idempotent through a decode cycle:
``canonical_json(json.loads(canonical_json(x))) == canonical_json(x)``
(property-tested in ``tests/test_ledger.py``).

Content hashes are SHA-256 over UTF-8 bytes, computed *incrementally* —
:func:`hash_file` reads fixed-size chunks and :class:`HashingSink` hashes
a pruner's output as it streams past — so attesting a document never
materializes it.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import unicodedata
from typing import Any, Iterable, Mapping

__all__ = [
    "HashingSink",
    "canonical_json",
    "hash_bytes",
    "hash_canonical",
    "hash_file",
    "hash_records",
    "hash_text",
    "limits_fingerprint",
]

_CHUNK = 1 << 20


def _normalize(value: Any) -> Any:
    """Reduce ``value`` to the canonical plain-JSON shape (or raise)."""
    if value is None or isinstance(value, bool):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError("canonical JSON cannot encode NaN or infinity")
        return 0.0 if value == 0.0 else value
    if isinstance(value, str):
        return unicodedata.normalize("NFC", value)
    if isinstance(value, (list, tuple)):
        return [_normalize(item) for item in value]
    if isinstance(value, Mapping):
        normalized: dict[str, Any] = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"canonical JSON keys must be str, not {type(key).__name__}"
                )
            nkey = unicodedata.normalize("NFC", key)
            if nkey in normalized:
                raise ValueError(
                    f"duplicate key after unicode normalization: {nkey!r}"
                )
            normalized[nkey] = _normalize(item)
        return normalized
    raise TypeError(f"cannot canonicalize {type(value).__name__}")


def canonical_json(value: Any) -> str:
    """The canonical, deterministic JSON encoding of ``value``."""
    return json.dumps(
        _normalize(value),
        sort_keys=True,
        ensure_ascii=False,
        separators=(",", ":"),
        allow_nan=False,
    )


def hash_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def hash_text(text: str) -> str:
    """SHA-256 of the text's UTF-8 bytes.  Unencodable code points (lone
    surrogates from hostile input) take the replacement character, the
    same policy the pipeline's file sinks apply, so a string and the file
    it was written to hash identically."""
    return hashlib.sha256(text.encode("utf-8", "replace")).hexdigest()


def hash_file(path: "str | os.PathLike[str]", chunk_size: int = _CHUNK) -> str:
    """SHA-256 of a file's raw bytes, read incrementally — constant
    memory whatever the document size."""
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            hasher.update(chunk)
    return hasher.hexdigest()


def hash_canonical(value: Any) -> str:
    """SHA-256 of the canonical JSON encoding of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def hash_records(records: Iterable[Mapping[str, Any]]) -> str:
    """SHA-256 over an extract record stream: one canonical-JSON line per
    record, hashed incrementally — the record list form of the output
    hash, independent of the JSONL/CSV surface encoding."""
    hasher = hashlib.sha256()
    for record in records:
        hasher.update(canonical_json(record).encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def limits_fingerprint(limits: Any) -> str:
    """Fingerprint of a :class:`repro.limits.Limits` budget (only the
    bounds that are actually set, via ``Limits.as_dict()``)."""
    return hash_canonical(limits.as_dict() if limits is not None else {})


class HashingSink:
    """A text sink that hashes everything written to it.

    Used two ways: alone as a discard-and-digest sink (replay re-prunes
    into one, so attesting a recorded output never materializes it), and
    with ``tee=`` wrapping a caller's stream so recording a stream-out
    prune costs one extra hash update per chunk.
    """

    __slots__ = ("_hasher", "_tee", "written")

    def __init__(self, tee: Any = None) -> None:
        self._hasher = hashlib.sha256()
        self._tee = tee
        self.written = 0

    def write(self, text: str) -> int:
        self._hasher.update(text.encode("utf-8", "replace"))
        self.written += len(text)
        if self._tee is not None:
            self._tee.write(text)
        return len(text)

    def flush(self) -> None:
        if self._tee is not None and hasattr(self._tee, "flush"):
            self._tee.flush()

    def hexdigest(self) -> str:
        return self._hasher.hexdigest()
