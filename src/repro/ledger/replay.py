"""Replay verification: re-earn every attestation in a ledger.

An entry claims *this grammar, this workload, these bounds, this input
produced exactly these output bytes*.  :func:`replay_ledger` re-proves
the claim from scratch, per entry:

1. the stored result (if any) still matches the recorded output hash —
   this is the dedup-serving contract, checked even when the original
   source is gone;
2. the recorded source file still exists and still hashes to the
   recorded ``input_hash`` (a changed input is a *divergence*: the entry
   attests bytes the file no longer contains);
3. the grammar is recovered from provenance (a DTD path, inline DTD
   text, or the built-in XMark schema) or from the caller's ``grammars``
   and must match the recorded fingerprint;
4. the prune/extraction is re-run into a :class:`HashingSink` — the
   output is hashed as it streams, never materialized — and the digest
   must equal the recorded ``output_hash``.

Anything that cannot be re-run (source gone, grammar unavailable) is
*skipped*, not failed: an attestation you cannot check is not evidence
of divergence.  Anything re-run that produces different bytes is a
divergence, reported with the expected and actual hashes.  Replay runs
with limits off — bounds gate admission, they never change bytes, and a
refusal would masquerade as a divergence.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.cache import grammar_fingerprint
from repro.errors import ReproError
from repro.ledger.canonical import HashingSink, canonical_json, hash_file
from repro.ledger.ledger import Ledger, LedgerEntry
from repro.limits import Limits

__all__ = ["Attestation", "ReplayReport", "replay_ledger"]


@dataclass(slots=True)
class Attestation:
    """The replay outcome for one ledger entry."""

    seq: int
    op: str
    status: str  # "attested" | "divergent" | "skipped"
    reason: str = ""
    expected: str = ""
    actual: str = ""
    source: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "op": self.op,
            "status": self.status,
            "reason": self.reason,
            "expected": self.expected,
            "actual": self.actual,
            "source": self.source,
        }


@dataclass(slots=True)
class ReplayReport:
    """The structured divergence report for one full replay."""

    total: int = 0
    attested: int = 0
    divergent: list[Attestation] = field(default_factory=list)
    skipped: list[Attestation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No divergence.  Skips (unavailable sources/grammars) are
        reported but do not fail a verification run."""
        return not self.divergent

    def as_dict(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "attested": self.attested,
            "divergent": [item.as_dict() for item in self.divergent],
            "skipped": [item.as_dict() for item in self.skipped],
            "ok": self.ok,
        }


class _GrammarResolver:
    """Recover each entry's grammar, memoized: from provenance (a DTD
    path + root, inline DTD text, or ``{"xmark": true}``), else from the
    caller-supplied fingerprint → grammar map."""

    def __init__(self, fallbacks: Iterable[Any]) -> None:
        self._by_fingerprint = {
            grammar_fingerprint(grammar): grammar for grammar in fallbacks
        }
        self._by_spec: dict[str, Any] = {}

    def resolve(self, entry: LedgerEntry) -> "tuple[Any, str] | None":
        """The grammar and an empty reason, or ``None`` plus why not —
        returned as ``(grammar_or_None, reason)``."""
        spec = entry.provenance.get("grammar")
        grammar = None
        if isinstance(spec, dict):
            try:
                memo_key = canonical_json(spec)
            except (TypeError, ValueError):
                return None, "unusable grammar provenance"
            if memo_key in self._by_spec:
                grammar = self._by_spec[memo_key]
            else:
                try:
                    grammar = _load_from_spec(spec)
                except (ReproError, OSError) as error:
                    return None, f"grammar unavailable: {error}"
                self._by_spec[memo_key] = grammar
        if grammar is None:
            grammar = self._by_fingerprint.get(entry.grammar_fp)
        if grammar is None:
            return None, "no grammar provenance and no matching fallback"
        if grammar_fingerprint(grammar) != entry.grammar_fp:
            return None, "recovered grammar does not match the recorded fingerprint"
        return grammar, ""


def _load_from_spec(spec: dict[str, Any]) -> Any:
    from repro.loading import load_grammar

    if spec.get("xmark"):
        return load_grammar("xmark", format="xmark")
    if isinstance(spec.get("grammar"), dict):
        from repro.schema.wire import grammar_from_wire

        return grammar_from_wire(spec["grammar"])
    root = spec.get("root")
    if isinstance(spec.get("dtd"), str):
        from repro.dtd.grammar import grammar_from_text

        return grammar_from_text(spec["dtd"], root)
    if isinstance(spec.get("dtd_path"), str):
        return load_grammar(spec["dtd_path"], format="dtd", root=root)
    if isinstance(spec.get("xsd"), str):
        from repro.schema.xsd import grammar_from_xsd

        return grammar_from_xsd(spec["xsd"], root)
    if isinstance(spec.get("xsd_path"), str):
        return load_grammar(spec["xsd_path"], format="xsd", root=root)
    raise ReproError("grammar provenance names no DTD, XSD, or wire grammar")


def _replay_entry(
    entry: LedgerEntry, ledger: Ledger, resolver: _GrammarResolver
) -> Attestation:
    source = entry.provenance.get("source")
    if not isinstance(source, str):
        source = None

    # 1. The stored (dedup-servable) result must still match its hash.
    if ledger.store is not None:
        payload = ledger.store.get(entry.output_hash)
        if payload is not None:
            divergence = _check_payload(entry, payload)
            if divergence is not None:
                return Attestation(
                    seq=entry.seq, op=entry.op, status="divergent",
                    reason=divergence, expected=entry.output_hash,
                    source=source,
                )

    # 2. Re-hash the recorded source.
    if source is None:
        return Attestation(
            seq=entry.seq, op=entry.op, status="skipped",
            reason="no source path in provenance", source=source,
        )
    if not os.path.exists(source):
        return Attestation(
            seq=entry.seq, op=entry.op, status="skipped",
            reason="source file no longer exists", source=source,
        )
    input_hash = hash_file(source)
    if input_hash != entry.input_hash:
        return Attestation(
            seq=entry.seq, op=entry.op, status="divergent",
            reason="input file changed since it was recorded",
            expected=entry.input_hash, actual=input_hash, source=source,
        )

    # 3. Recover the grammar.
    grammar, why_not = resolver.resolve(entry)
    if grammar is None:
        return Attestation(
            seq=entry.seq, op=entry.op, status="skipped",
            reason=why_not, source=source,
        )

    # 4. Re-run the recorded work into a hashing sink.
    sink = HashingSink()
    try:
        if entry.op == "extract":
            from repro.extract.api import extract
            from repro.extract.spec import ExtractSpec

            spec_wire = entry.provenance.get("spec")
            if not isinstance(spec_wire, dict):
                return Attestation(
                    seq=entry.seq, op=entry.op, status="skipped",
                    reason="no extract spec in provenance", source=source,
                )
            extract(
                source, grammar, ExtractSpec.from_wire(spec_wire),
                out=sink,
                format=str(entry.provenance.get("format", "jsonl")),
                limits=Limits.off(),
            )
        else:
            from repro.api import prune

            projector = entry.provenance.get("projector")
            if not isinstance(projector, list):
                return Attestation(
                    seq=entry.seq, op=entry.op, status="skipped",
                    reason="no projector in provenance", source=source,
                )
            prune(
                source, grammar, frozenset(projector), out=sink,
                prune_attributes=bool(
                    entry.provenance.get("prune_attributes", True)
                ),
                limits=Limits.off(),
            )
    except ReproError as error:
        return Attestation(
            seq=entry.seq, op=entry.op, status="divergent",
            reason=f"replay failed: {type(error).__name__}: {error}",
            expected=entry.output_hash, source=source,
        )

    actual = sink.hexdigest()
    if actual != entry.output_hash:
        return Attestation(
            seq=entry.seq, op=entry.op, status="divergent",
            reason="replayed output differs from the recorded hash",
            expected=entry.output_hash, actual=actual, source=source,
        )
    return Attestation(
        seq=entry.seq, op=entry.op, status="attested",
        expected=entry.output_hash, actual=actual, source=source,
    )


def _check_payload(entry: LedgerEntry, payload: dict[str, Any]) -> str | None:
    from repro.ledger.canonical import hash_records, hash_text

    text = payload.get("text")
    if not isinstance(text, str) or hash_text(text) != entry.output_hash:
        return "stored result does not match the recorded output hash"
    records = payload.get("records")
    if entry.records_hash is not None and records is not None:
        if not isinstance(records, list) or (
            hash_records(records) != entry.records_hash
        ):
            return "stored records do not match the recorded record-stream hash"
    return None


def replay_ledger(
    ledger: "Ledger | str | os.PathLike[str]",
    *,
    grammar: Any = None,
    grammars: Iterable[Any] = (),
    since: int | None = None,
    jobs: int = 1,
) -> ReplayReport:
    """Replay every entry (optionally from sequence number ``since``)
    and return the structured :class:`ReplayReport`.

    Opening the ledger already verified the self-hash chain, so tampered
    *history* raises :class:`~repro.errors.LedgerCorrupt` before replay
    starts; replay then checks what the chain cannot — that the recorded
    inputs still produce the recorded outputs.  ``jobs > 1`` replays
    entries in a thread pool (the projector cache is thread-safe and
    each replay streams its own source).
    """
    owned = not isinstance(ledger, Ledger)
    if owned:
        ledger = Ledger(ledger, fsync=False)
    try:
        fallbacks = list(grammars)
        if grammar is not None:
            fallbacks.append(grammar)
        resolver = _GrammarResolver(fallbacks)
        entries = [
            entry for entry in ledger.entries
            if since is None or entry.seq >= since
        ]
        if jobs > 1 and len(entries) > 1:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                outcomes = list(
                    pool.map(
                        lambda entry: _replay_entry(entry, ledger, resolver),
                        entries,
                    )
                )
        else:
            outcomes = [
                _replay_entry(entry, ledger, resolver) for entry in entries
            ]
        report = ReplayReport(total=len(outcomes))
        for outcome in sorted(outcomes, key=lambda item: item.seq):
            if outcome.status == "attested":
                report.attested += 1
            elif outcome.status == "divergent":
                report.divergent.append(outcome)
            else:
                report.skipped.append(outcome)
        return report
    finally:
        if owned:
            ledger.close()
