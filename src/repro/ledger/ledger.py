"""The append-only attestation ledger.

One ledger is one JSONL file.  Each line is one attestation entry::

    (grammar_fp, workload_fp, limits_fp, input_hash)
        -> (output_hash, stats, provenance)

where ``workload_fp`` is the projector fingerprint for a prune or the
spec+format fingerprint for an extraction.  Every field that identifies
work is a content fingerprint the codebase already computes — the entry
says *this grammar, this workload, these bounds, this exact document
produced exactly these bytes*, nothing about where or when.

Integrity is structural, not advisory:

* **self-hash** — ``entry`` is the SHA-256 of the entry's canonical JSON
  body; editing any field breaks it;
* **chain** — ``prev`` is the previous entry's self-hash (empty for the
  genesis entry), so inserting, deleting or reordering lines breaks every
  entry downstream; both are verified on every open and any mismatch
  raises :class:`~repro.errors.LedgerCorrupt`;
* **crash safety** — an entry is appended as a single ``os.write`` on an
  ``O_APPEND`` descriptor followed by ``fsync``; a writer killed mid-write
  leaves at most one torn final line (no newline), which open() truncates
  away.  Cross-process appends serialize on ``flock``; in-process appends
  on a mutex.  Before writing, the appender re-syncs its in-memory tip
  against lines other processes appended since.

A :class:`ResultStore` beside the ledger (``<path>.store/``) keeps the
output bytes content-addressed by their hash, which turns the ledger into
a dedup cache: a lookup hit whose stored bytes still match the recorded
hash can be served instead of re-pruning (`ledger.hits`), and Thm 4.5
byte-identity means the served bytes are exactly what a fresh prune would
produce.  A stored result that fails its hash re-check is *never* served.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX; in-process lock only
    fcntl = None  # type: ignore[assignment]

from repro import obs
from repro.errors import LedgerCorrupt
from repro.extract.stats import ExtractStats
from repro.ledger.canonical import (
    canonical_json,
    hash_canonical,
    hash_records,
    hash_text,
)
from repro.projection.stats import PruneStats

__all__ = [
    "Ledger",
    "LedgerEntry",
    "LedgerKey",
    "ResultStore",
    "decode_stats",
    "encode_stats",
]

LedgerKey = "tuple[str, str, str, str]"

_PRUNE_STATS_FIELDS = (
    "elements_in", "elements_out", "texts_in", "texts_out",
    "attributes_in", "attributes_out", "bytes_in", "bytes_out",
)


def encode_stats(stats: "PruneStats | ExtractStats") -> dict[str, Any]:
    """Stats as a canonical-JSON-safe dict (sets become sorted lists).
    Local to the ledger on purpose: the service protocol's wire helpers
    live behind the service package import, which the ledger must not
    drag in."""
    if isinstance(stats, ExtractStats):
        return {"kind": "extract", **stats.as_dict()}
    wire: dict[str, Any] = {"kind": "prune"}
    for name in _PRUNE_STATS_FIELDS:
        wire[name] = getattr(stats, name)
    wire["distinct_tags_in"] = sorted(stats.distinct_tags_in)
    wire["distinct_tags_out"] = sorted(stats.distinct_tags_out)
    return wire


def decode_stats(data: dict[str, Any]) -> "PruneStats | ExtractStats":
    """Rebuild the exact stats object :func:`encode_stats` flattened —
    a dedup hit must report stats ``==`` to the recorded fresh run's."""
    data = dict(data)
    kind = data.pop("kind", "prune")
    if kind == "extract":
        return ExtractStats.from_dict(data)
    data["distinct_tags_in"] = set(data.get("distinct_tags_in", ()))
    data["distinct_tags_out"] = set(data.get("distinct_tags_out", ()))
    return PruneStats(**data)


@dataclass(slots=True, frozen=True)
class LedgerEntry:
    """One attested run.  Immutable; identity is the self-hash."""

    seq: int
    op: str  # "prune" | "extract"
    grammar_fp: str
    workload_fp: str
    limits_fp: str
    input_hash: str
    output_hash: str
    prev: str
    entry_hash: str
    records_hash: str | None = None
    stats: dict[str, Any] = field(default_factory=dict)
    provenance: dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> "tuple[str, str, str, str]":
        return (self.grammar_fp, self.workload_fp, self.limits_fp,
                self.input_hash)

    def body(self) -> dict[str, Any]:
        """The signed portion: everything but the self-hash itself."""
        body: dict[str, Any] = {
            "v": 1,
            "seq": self.seq,
            "op": self.op,
            "grammar": self.grammar_fp,
            "workload": self.workload_fp,
            "limits": self.limits_fp,
            "input": self.input_hash,
            "output": self.output_hash,
            "stats": self.stats,
            "provenance": self.provenance,
            "prev": self.prev,
        }
        if self.records_hash is not None:
            body["records"] = self.records_hash
        return body

    def compute_hash(self) -> str:
        return hash_canonical(self.body())

    def to_line(self) -> str:
        return canonical_json({**self.body(), "entry": self.entry_hash})

    @classmethod
    def from_wire(cls, data: dict[str, Any], context: str) -> "LedgerEntry":
        if not isinstance(data, dict):
            raise LedgerCorrupt(f"{context}: entry is not an object")
        if data.get("v") != 1:
            raise LedgerCorrupt(f"{context}: unknown entry version {data.get('v')!r}")
        try:
            entry = cls(
                seq=int(data["seq"]),
                op=str(data["op"]),
                grammar_fp=str(data["grammar"]),
                workload_fp=str(data["workload"]),
                limits_fp=str(data["limits"]),
                input_hash=str(data["input"]),
                output_hash=str(data["output"]),
                prev=str(data["prev"]),
                entry_hash=str(data["entry"]),
                records_hash=(
                    str(data["records"]) if "records" in data else None
                ),
                stats=dict(data.get("stats") or {}),
                provenance=dict(data.get("provenance") or {}),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise LedgerCorrupt(f"{context}: malformed entry: {error}") from error
        return entry


class ResultStore:
    """Content-addressed output bytes, one file per output hash.

    Writes are atomic (temp file + ``os.replace``) and idempotent — the
    file name *is* the content hash, so concurrent writers of the same
    result race benignly.  Reads re-verify nothing themselves; the ledger
    re-hashes every payload against the recorded entry before serving.
    """

    def __init__(self, root: str) -> None:
        self.root = root

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest + ".json")

    def put(self, digest: str, payload: dict[str, Any]) -> None:
        final = self._path(digest)
        if os.path.exists(final):
            return
        os.makedirs(self.root, exist_ok=True)
        tmp = f"{final}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(canonical_json(payload))
            os.replace(tmp, final)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - error path
                os.unlink(tmp)

    def get(self, digest: str) -> dict[str, Any] | None:
        try:
            with open(self._path(digest), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None


class Ledger:
    """An open attestation ledger: verified entries in memory, the
    append fd held for the lifetime of the object.

    ``fsync=False`` trades crash-durability for speed (tests, bulk
    recording); the chain and torn-line guarantees are unaffected.
    ``store_results=False`` disables the result store — entries still
    attest, but nothing can be dedup-served.
    """

    def __init__(
        self,
        path: "str | os.PathLike[str]",
        *,
        fsync: bool = True,
        store_results: bool = True,
    ) -> None:
        self.path = os.fspath(path)
        self.fsync = fsync
        self.store: ResultStore | None = (
            ResultStore(self.path + ".store") if store_results else None
        )
        self.hits = 0       # dedup hits served by this object
        self.appended = 0   # entries this object appended
        self._lock = threading.Lock()
        self._entries: list[LedgerEntry] = []
        self._index: dict[tuple[str, str, str, str], LedgerEntry] = {}
        self._tip = ""
        self._offset = 0  # bytes of verified, newline-terminated entries
        self._fd = os.open(self.path, os.O_APPEND | os.O_CREAT | os.O_RDWR,
                           0o644)
        try:
            with self._flocked():
                self._resync(recover=True)
        except BaseException:
            os.close(self._fd)
            raise

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def __enter__(self) -> "Ledger":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __bool__(self) -> bool:
        # A ledger handle is always truthy — without this, ``if ledger:``
        # on an *empty* ledger falls through ``__len__`` to False.
        return True

    @property
    def tip(self) -> str:
        with self._lock:
            return self._tip

    @property
    def entries(self) -> list[LedgerEntry]:
        with self._lock:
            return list(self._entries)

    # -- the file --------------------------------------------------------

    @contextmanager
    def _flocked(self) -> Iterator[None]:
        if fcntl is None:  # pragma: no cover - non-POSIX
            yield
            return
        fcntl.flock(self._fd, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(self._fd, fcntl.LOCK_UN)

    def _resync(self, recover: bool = False) -> None:
        """Absorb entries appended past our verified offset (other
        processes share the file).  Caller holds the flock.  With
        ``recover=True`` (open, or any time we hold the exclusive lock) a
        torn final line — a writer died mid-``write`` — is truncated
        away; mid-file damage is unrecoverable tampering."""
        size = os.fstat(self._fd).st_size
        if size < self._offset:
            raise LedgerCorrupt(
                f"{self.path}: file shrank below the verified offset "
                f"({size} < {self._offset})"
            )
        if size == self._offset:
            return
        data = os.pread(self._fd, size - self._offset, self._offset)
        torn = None
        if not data.endswith(b"\n"):
            cut = data.rfind(b"\n") + 1
            data, torn = data[:cut], data[cut:]
        for raw in data.splitlines():
            self._absorb_line(raw)
            self._offset += len(raw) + 1
        if torn is not None:
            if not recover:  # pragma: no cover - only open() recovers today
                raise LedgerCorrupt(
                    f"{self.path}: torn final line outside recovery"
                )
            os.ftruncate(self._fd, self._offset)

    def _absorb_line(self, raw: bytes) -> None:
        context = f"{self.path}: entry {len(self._entries) + 1}"
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise LedgerCorrupt(f"{context}: not valid JSON") from error
        entry = LedgerEntry.from_wire(data, context)
        if entry.entry_hash != entry.compute_hash():
            raise LedgerCorrupt(
                f"{context}: self-hash mismatch (the entry was altered)"
            )
        if entry.prev != self._tip:
            raise LedgerCorrupt(
                f"{context}: chain broken (prev does not match the "
                f"preceding entry's hash)"
            )
        if entry.seq != len(self._entries) + 1:
            raise LedgerCorrupt(
                f"{context}: sequence number {entry.seq} out of order"
            )
        self._entries.append(entry)
        self._index[entry.key] = entry
        self._tip = entry.entry_hash

    # -- recording -------------------------------------------------------

    def record(
        self,
        *,
        op: str,
        grammar_fp: str,
        workload_fp: str,
        limits_fp: str,
        input_hash: str,
        output_hash: str,
        records_hash: str | None = None,
        stats: dict[str, Any] | None = None,
        provenance: dict[str, Any] | None = None,
        result: dict[str, Any] | None = None,
    ) -> LedgerEntry:
        """Append one attestation (fsync'd, chained), or — when the key
        is already recorded with the *same* output — just (re)store the
        result bytes and return the existing entry, so re-running a
        recorded workload heals a lost or corrupted store file instead of
        duplicating history."""
        appended = False
        with self._lock, self._flocked():
            self._resync(recover=True)
            key = (grammar_fp, workload_fp, limits_fp, input_hash)
            existing = self._index.get(key)
            if (
                existing is not None
                and existing.output_hash == output_hash
                and existing.records_hash == records_hash
            ):
                entry = existing
            else:
                body = {
                    "v": 1,
                    "seq": len(self._entries) + 1,
                    "op": op,
                    "grammar": grammar_fp,
                    "workload": workload_fp,
                    "limits": limits_fp,
                    "input": input_hash,
                    "output": output_hash,
                    "stats": stats or {},
                    "provenance": provenance or {},
                    "prev": self._tip,
                }
                if records_hash is not None:
                    body["records"] = records_hash
                entry_hash = hash_canonical(body)
                entry = LedgerEntry.from_wire(
                    {**body, "entry": entry_hash}, f"{self.path}: new entry"
                )
                encoded = (entry.to_line() + "\n").encode("utf-8")
                os.write(self._fd, encoded)
                if self.fsync:
                    os.fsync(self._fd)
                self._offset += len(encoded)
                self._entries.append(entry)
                self._index[entry.key] = entry
                self._tip = entry_hash
                appended = True
        if appended:
            self.appended += 1
            obs.count("ledger.records")
        if result is not None and self.store is not None:
            self.store.put(output_hash, result)
        return entry

    # -- dedup serving ---------------------------------------------------

    def lookup(self, key: "tuple[str, str, str, str]") -> LedgerEntry | None:
        """The recorded entry for a fingerprint key, if any (in-memory:
        entries verified at open plus this object's appends/resyncs)."""
        with self._lock:
            return self._index.get(key)

    def fetch(
        self,
        key: "tuple[str, str, str, str]",
        *,
        need_records: bool = False,
    ) -> "tuple[LedgerEntry, dict[str, Any]] | None":
        """A servable dedup hit: the entry *and* its stored result, with
        the stored bytes re-verified against the recorded hashes.  Any
        missing or non-matching payload is a miss, never an error — the
        caller falls back to a fresh prune (which re-heals the store)."""
        entry = self.lookup(key)
        if entry is None or self.store is None:
            return None
        payload = self.store.get(entry.output_hash)
        if payload is None or not isinstance(payload.get("text"), str):
            return None
        if hash_text(payload["text"]) != entry.output_hash:
            return None
        records = payload.get("records")
        if records is not None and not isinstance(records, list):
            return None
        if need_records and records is None:
            return None
        if entry.records_hash is not None and records is not None:
            if hash_records(records) != entry.records_hash:
                return None
        self.hits += 1
        obs.count("ledger.hits")
        return entry, payload
