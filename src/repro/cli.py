"""Command-line interface: ``repro-xml`` (or ``python -m repro``).

Subcommands::

    analyze        infer and print a type projector for queries + DTD
    prune          prune a document file (streaming) with an inferred projector
    extract        extract tabular records (JSONL/CSV) in one streaming pass
    validate       validate a document against a DTD
    generate       emit an XMark benchmark document
    run            run a query on a document, optionally after pruning
    serve          run the long-lived projection service (see repro.service)
    verify-ledger  replay an attestation ledger and report divergences

``prune``, ``extract`` and ``serve`` take ``--ledger PATH`` to record
every run into an append-only attestation ledger (see
:mod:`repro.ledger`) and serve identical re-runs from the recorded
bytes; ``verify-ledger`` re-earns every attestation offline.

``prune --server HOST:PORT`` (and ``extract --server``) sends the work to
a running service instead of doing it in-process, so repeated invocations
share the server's resident projector cache and warm workers.

Example::

    repro-xml generate --factor 0.01 --output auction.xml
    repro-xml analyze --dtd auction.dtd --root site --query "//item/name"
    repro-xml prune --dtd auction.dtd --root site \\
        --query "//item/name" auction.xml pruned.xml
    repro-xml extract --xmark --rows /site/people/person \\
        --field name=name/text() --field city=address/city/text() \\
        auction.xml --out people.jsonl

Shared flags (``--jobs``, ``--limits-profile``, ``--trace-out``,
``--metrics``, ...) are defined once in common argparse parents, so
``prune``, ``extract`` and ``run`` stay in sync by construction.
``--trace-out FILE`` writes a JSONL span/counter trace (see
:mod:`repro.obs`); ``--metrics`` prints a human-readable roll-up on
stderr when the command finishes.
"""

from __future__ import annotations

import argparse
import sys


def _load_grammar(args, document_path: str | None = None):
    from repro.loading import load_grammar

    if args.xmark:
        return load_grammar("xmark")
    if getattr(args, "schema", None):
        return load_grammar(args.schema, format="xsd", root=args.root)
    if getattr(args, "infer_from", None):
        return load_grammar(
            args.infer_from, infer=True, root=args.root,
            on_stray=getattr(args, "on_stray", None) or "error",
        )
    if getattr(args, "infer_dtd", False):
        if document_path is None:
            raise SystemExit("--infer-dtd requires a document to summarise")
        return load_grammar(document_path, format="xml")
    if not args.dtd:
        raise SystemExit("--dtd is required (or pass --schema, --xmark, "
                         "--infer-from or --infer-dtd)")
    return load_grammar(args.dtd, format="dtd", root=args.root)


def _limits_from_args(args):
    """Build the resource limits a prune command asked for: a profile
    (``--limits-profile``, default ``default``) with ``--max-depth`` and
    ``--timeout`` layered on top."""
    from repro.limits import Limits

    limits = Limits.profile(getattr(args, "limits_profile", None) or "default")
    overrides = {}
    if getattr(args, "max_depth", None) is not None:
        overrides["max_depth"] = args.max_depth
    if getattr(args, "timeout", None) is not None:
        overrides["deadline"] = args.timeout
    return limits.replace(**overrides) if overrides else limits


def _open_ledger(args):
    """The ``--ledger`` flag, opened — or ``None`` when unset.  Ledger
    recording is single-document, local-run bookkeeping: batch mode and
    ``--server`` refuse the flag loudly rather than silently skipping."""
    path = getattr(args, "ledger", None)
    if not path:
        return None
    if getattr(args, "server", None):
        raise SystemExit(
            "--ledger records local runs; give the flag to the server "
            "instead (`repro-xml serve --ledger PATH`)"
        )
    from repro.ledger import Ledger

    return Ledger(path)


def _ledger_provenance(args):
    """Grammar provenance for a recorded run, so ``verify-ledger`` can
    replay it later with no out-of-band grammar.  ``--infer-dtd``
    grammars are document-derived (no stable spec to record) — replay
    falls back to a caller-supplied grammar or skips."""
    if args.xmark:
        return {"grammar": {"xmark": True}}
    if getattr(args, "schema", None):
        import os

        spec = {"xsd_path": os.path.abspath(args.schema)}
        if args.root:
            spec["root"] = args.root
        return {"grammar": spec}
    if (
        getattr(args, "infer_dtd", False)
        or getattr(args, "infer_from", None)
        or not args.dtd
    ):
        return None
    import os

    spec = {"dtd_path": os.path.abspath(args.dtd)}
    if args.root:
        spec["root"] = args.root
    return {"grammar": spec}


def _is_xquery(query: str) -> bool:
    from repro.querylang import looks_like_xquery

    return looks_like_xquery(query)


def _projector(grammar, queries):
    from repro.core.cache import default_cache

    result = default_cache().analyze(grammar, queries)
    seconds = result.span.seconds if result.span is not None else 0.0
    return result.projector, seconds


def cmd_analyze(args) -> int:
    from repro.core.cache import default_cache

    grammar = _load_grammar(args)
    result = default_cache().analyze(grammar, args.query)
    projector = result.projector
    seconds = result.span.seconds if result.span is not None else 0.0
    reachable = grammar.reachable_names()
    print(f"# analysis time: {seconds * 1000:.1f} ms")
    if args.cache_stats:
        stats = default_cache().stats
        print(f"# projector cache: {stats.hits} hits, {stats.misses} misses")
    if args.explain_sat:
        unsat = sum(1 for v in result.verdicts if not v.satisfiable)
        print(f"# satisfiability: {len(result.verdicts) - unsat} SAT, "
              f"{unsat} UNSAT")
        for verdict in result.verdicts:
            status = "SAT" if verdict.satisfiable else "UNSAT"
            print(f"# {status} {verdict.query}: {verdict.reason}")
            for branch in verdict.branches:
                branch_status = "SAT" if branch.satisfiable else "UNSAT"
                print(f"#   [{branch_status}] {branch.path}: {branch.reason}")
    print(f"# projector: {len(projector)} of {len(reachable)} reachable names "
          f"({100 * len(projector & reachable) / max(1, len(reachable)):.1f}%)")
    for name in sorted(projector):
        print(name)
    return 0


def _batch_inputs(args):
    """Expand the prune/run input spec; a list means batch mode.

    Batch mode engages when ``--jobs`` is not 1 or the input names more
    than one document (a glob or a directory).
    """
    from repro.parallel import expand_sources

    items = expand_sources(args.input)
    if getattr(args, "jobs", 1) != 1 or len(items) != 1 or items[0] != args.input:
        return items
    return None


def _print_batch_errors(batch) -> None:
    for error in batch.errors:
        print(f"error: {error.source}: {error.kind}: {error.message}", file=sys.stderr)


def _server_grammar_kwargs(args) -> dict:
    """The grammar spec for ``--server`` runs.  DTDs and XSDs ship by
    path text; ``--infer-from`` infers client-side (the corpus lives
    here) and ships the grammar's wire form so the server can pin it."""
    if args.xmark:
        return {"xmark": True}
    if getattr(args, "schema", None):
        kwargs = {"xsd_path": args.schema}
        if args.root:
            kwargs["root"] = args.root
        return kwargs
    if getattr(args, "infer_from", None):
        return {"grammar": _load_grammar(args)}
    if args.dtd:
        return {"dtd_path": args.dtd, "root": args.root}
    raise SystemExit("--server requires --dtd/--root, --schema, "
                     "--infer-from or --xmark (--infer-dtd runs "
                     "client-side only)")


def _prune_via_server(args) -> int:
    """Send ``prune`` work to a running projection service.

    Documents are read client-side and shipped as markup (the server may
    be on another machine); pruned markup comes back over the socket and
    is written locally, so the command's filesystem contract matches the
    in-process path exactly.
    """
    from repro.api import PruneOptions
    from repro.parallel import _output_paths
    from repro.service.client import ServiceClient

    grammar_kwargs = _server_grammar_kwargs(args)
    options_kwargs = {
        "queries": args.query,
        "options": PruneOptions(fast=not args.no_fast, validate=args.validate),
        "limits": _limits_from_args(args),
        **grammar_kwargs,
    }

    items = _batch_inputs(args)
    with ServiceClient.from_address(args.server) as client:
        if items is None:
            outcome = client.prune(source=args.input, **options_kwargs)
            assert outcome.text is not None
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(outcome.text)
            stats = outcome.stats
            print(f"pruned via {args.server} in {outcome.seconds:.2f} s")
            print(f"size: {stats.bytes_in} -> {stats.bytes_out} bytes "
                  f"({stats.size_percent:.1f}% kept)")
            print(f"nodes: {stats.nodes_in} -> {stats.nodes_out}")
            return 0

        import os

        os.makedirs(args.output, exist_ok=True)
        batch = client.prune_batch(sources=list(items), **options_kwargs)
        failures = 0
        for item, out_path in zip(batch.items, _output_paths(items, args.output)):
            if isinstance(item, Exception):
                failures += 1
                print(f"error: {item}", file=sys.stderr)
                continue
            assert item.text is not None
            with open(out_path, "w", encoding="utf-8") as handle:
                handle.write(item.text)
        stats = batch.stats
        print(f"pruned {batch.succeeded}/{len(items)} documents via "
              f"{args.server} in {batch.seconds:.2f} s")
        print(f"size: {stats.bytes_in} -> {stats.bytes_out} bytes "
              f"({stats.size_percent:.1f}% kept)")
        print(f"nodes: {stats.nodes_in} -> {stats.nodes_out}")
        return 1 if failures else 0


def cmd_prune(args) -> int:
    from repro import obs
    from repro.api import prune

    if getattr(args, "server", None):
        if getattr(args, "ledger", None):
            raise SystemExit(
                "--ledger records local runs; give the flag to the server "
                "instead (`repro-xml serve --ledger PATH`)"
            )
        return _prune_via_server(args)

    items = _batch_inputs(args)
    first_doc = items[0] if items else args.input
    grammar = _load_grammar(args, document_path=first_doc)

    if items is not None:
        if getattr(args, "ledger", None):
            raise SystemExit(
                "--ledger records single-document runs only (not batch mode)"
            )
        from repro.parallel import prune_many

        batch = prune_many(
            items, grammar, args.query,
            jobs=args.jobs, out_dir=args.output,
            validate=args.validate, fast=not args.no_fast,
            limits=_limits_from_args(args), timeout=args.timeout,
        )
        stats = batch.stats
        print(f"pruned {batch.succeeded}/{batch.documents} documents "
              f"with {batch.jobs} job(s) in {batch.seconds:.2f} s")
        print(f"size: {stats.bytes_in} -> {stats.bytes_out} bytes ({stats.size_percent:.1f}% kept)")
        print(f"nodes: {stats.nodes_in} -> {stats.nodes_out}")
        _print_batch_errors(batch)
        return 1 if batch.errors else 0

    projector, seconds = _projector(grammar, args.query)
    ledger = _open_ledger(args)
    try:
        with obs.timed("prune.command") as span:
            result = prune(
                args.input, grammar, projector, out=args.output,
                validate=args.validate, fast=not args.no_fast,
                limits=_limits_from_args(args),
                ledger=ledger,
                provenance=_ledger_provenance(args) if ledger else None,
            )
            span.stop()
        if ledger is not None:
            print("ledger: served from recorded result" if ledger.hits
                  else "ledger: attestation recorded")
    finally:
        if ledger is not None:
            ledger.close()
    stats = result.stats
    print(f"analysis: {seconds * 1000:.1f} ms, pruning: {span.seconds:.2f} s")
    print(f"size: {stats.bytes_in} -> {stats.bytes_out} bytes ({stats.size_percent:.1f}% kept)")
    print(f"nodes: {stats.nodes_in} -> {stats.nodes_out}")
    return 0


def _parse_fields(pairs):
    """``--field NAME=RELPATH`` pairs → the ExtractSpec fields mapping
    (declared order preserved — it is the output column order)."""
    fields: dict[str, str] = {}
    for item in pairs:
        name, sep, path = item.partition("=")
        if not sep or not name or not path:
            raise SystemExit(f"--field expects NAME=RELPATH, got {item!r}")
        if name in fields:
            raise SystemExit(f"duplicate --field name {name!r}")
        fields[name] = path
    return fields


def _extract_summary(stats, seconds: float, file=None) -> None:
    print(f"extracted {stats.rows_out} row(s), {stats.nulls_out} null(s) "
          f"in {seconds:.2f} s", file=file or sys.stdout)
    print(f"bytes: {stats.bytes_in} in -> {stats.bytes_out} out",
          file=file or sys.stdout)


def _extract_via_server(args, spec) -> int:
    """Send ``extract`` work to a running projection service.  Documents
    are read client-side and shipped as markup; encoded records come back
    over the socket and are written locally (stdout without ``--out``)."""
    from repro.extract.api import ExtractOptions
    from repro.service.client import ServiceClient

    grammar_kwargs = _server_grammar_kwargs(args)
    options = ExtractOptions(format=args.format)
    items = _batch_inputs(args)
    failures = 0
    with ServiceClient.from_address(args.server) as client:
        if items is None:
            items = [args.input]
        import os

        batch_mode = len(items) > 1 or getattr(args, "jobs", 1) != 1
        if batch_mode and args.out is None:
            raise SystemExit("batch extract requires --out DIRECTORY")
        if batch_mode:
            os.makedirs(args.out, exist_ok=True)
        from repro.parallel import _EXTRACT_SUFFIXES, _output_paths

        out_paths = (
            _output_paths(items, args.out, _EXTRACT_SUFFIXES[args.format])
            if batch_mode
            else [args.out]
        )
        rows = nulls = 0
        for source, out_path in zip(items, out_paths):
            try:
                outcome = client.extract(
                    source=source, spec=spec, options=options,
                    limits=_limits_from_args(args), **grammar_kwargs,
                )
            except Exception as exc:
                failures += 1
                print(f"error: {source}: {exc}", file=sys.stderr)
                continue
            assert outcome.text is not None
            if out_path is None:
                sys.stdout.write(outcome.text)
            else:
                with open(out_path, "w", encoding="utf-8") as handle:
                    handle.write(outcome.text)
            rows += outcome.stats.rows_out
            nulls += outcome.stats.nulls_out
        print(f"extracted {rows} row(s), {nulls} null(s) from "
              f"{len(items) - failures}/{len(items)} document(s) via {args.server}",
              file=sys.stderr)
    return 1 if failures else 0


def cmd_extract(args) -> int:
    from repro import obs
    from repro.extract import ExtractSpec, extract

    spec = ExtractSpec(rows=args.rows, fields=_parse_fields(args.field), null=args.null)

    if getattr(args, "server", None):
        if getattr(args, "ledger", None):
            raise SystemExit(
                "--ledger records local runs; give the flag to the server "
                "instead (`repro-xml serve --ledger PATH`)"
            )
        return _extract_via_server(args, spec)

    items = _batch_inputs(args)
    first_doc = items[0] if items else args.input
    grammar = _load_grammar(args, document_path=first_doc)

    if items is not None:
        if getattr(args, "ledger", None):
            raise SystemExit(
                "--ledger records single-document runs only (not batch mode)"
            )
        from repro.parallel import extract_many

        if args.out is None:
            raise SystemExit("batch extract requires --out DIRECTORY")
        batch = extract_many(
            items, grammar, spec,
            jobs=args.jobs, out_dir=args.out, format=args.format,
            limits=_limits_from_args(args), timeout=args.timeout,
        )
        stats = batch.stats
        print(f"extracted {batch.succeeded}/{batch.documents} documents "
              f"with {batch.jobs} job(s) in {batch.seconds:.2f} s")
        print(f"rows: {stats.rows_out} ({stats.nulls_out} nulls), "
              f"bytes: {stats.bytes_in} in -> {stats.bytes_out} out")
        _print_batch_errors(batch)
        return 1 if batch.errors else 0

    ledger = _open_ledger(args)
    try:
        with obs.timed("extract.command") as span:
            result = extract(
                args.input, grammar, spec, out=args.out, format=args.format,
                limits=_limits_from_args(args),
                ledger=ledger,
                provenance=_ledger_provenance(args) if ledger else None,
            )
            span.stop()
        if ledger is not None:
            print("ledger: served from recorded result" if ledger.hits
                  else "ledger: attestation recorded", file=sys.stderr)
    finally:
        if ledger is not None:
            ledger.close()
    if args.out is None:
        # Records to stdout, summary to stderr so the stream stays clean.
        assert result.text is not None
        sys.stdout.write(result.text)
        _extract_summary(result.stats, span.seconds, file=sys.stderr)
    else:
        _extract_summary(result.stats, span.seconds)
    return 0


def cmd_validate(args) -> int:
    from repro.dtd.validator import validate
    from repro.errors import ValidationError
    from repro.xmltree.builder import parse_document

    grammar = _load_grammar(args)
    with open(args.input, "r", encoding="utf-8") as handle:
        document = parse_document(handle, strip_whitespace=True)
    try:
        interpretation = validate(document, grammar)
    except ValidationError as error:
        print(f"INVALID: {error}", file=sys.stderr)
        return 1
    print(f"valid: {document.size()} nodes, {len(set(interpretation.names.values()))} distinct names")
    return 0


def cmd_generate(args) -> int:
    from repro.workloads.xmark.generator import generate_file

    written = generate_file(args.output, factor=args.factor, seed=args.seed)
    print(f"wrote {written} bytes to {args.output}")
    return 0


def cmd_run(args) -> int:
    from repro.engine.executor import QueryEngine
    from repro.projection.tree import prune_document
    from repro.dtd.validator import validate
    from repro.xmltree.builder import parse_document

    items = _batch_inputs(args)
    first_doc = items[0] if items else args.input
    grammar = (
        _load_grammar(args, document_path=first_doc)
        if (args.dtd or args.xmark or getattr(args, "infer_dtd", False))
        else None
    )

    if items is not None:
        from repro.engine.loader import load_many

        if grammar is None:
            raise SystemExit("batch run requires --dtd/--root, --xmark or --infer-dtd")
        query = args.query[0]
        reports, batch = load_many(items, grammar, args.query, jobs=args.jobs)
        results = touched = 0
        seconds = 0.0
        for report in reports:
            if report is None:
                continue
            run = QueryEngine(report.document).run(query)
            results += run.result_count
            touched += run.nodes_touched
            seconds += run.query_seconds
        print(f"queried {batch.succeeded}/{batch.documents} documents "
              f"with {batch.jobs} job(s)")
        print(f"results: {results}")
        print(f"query time: {seconds:.3f} s, nodes touched: {touched}")
        _print_batch_errors(batch)
        return 1 if batch.errors else 0

    with open(args.input, "r", encoding="utf-8") as handle:
        document = parse_document(handle, strip_whitespace=True)
    query = args.query[0]
    if args.prune:
        if grammar is None:
            raise SystemExit("--prune requires --dtd/--root, --xmark or --infer-dtd")
        projector, _ = _projector(grammar, [query])
        interpretation = validate(document, grammar)
        document = prune_document(document, interpretation, projector)
    engine = QueryEngine(document)
    report = engine.run(query)
    print(f"results: {report.result_count}")
    print(f"query time: {report.query_seconds:.3f} s, nodes touched: {report.nodes_touched}")
    print(f"modelled memory: {report.total_bytes / 1e6:.2f} MB")
    return 0


def cmd_verify_ledger(args) -> int:
    """Replay every recorded attestation (``repro-xml verify-ledger``):
    exit 0 iff no entry diverged.  Skipped entries (source gone, grammar
    unrecoverable) are reported on stderr but do not fail the run."""
    from repro.ledger import replay_ledger

    grammars = []
    if args.xmark or args.dtd:
        grammars.append(_load_grammar(args))
    report = replay_ledger(
        args.ledger, grammars=grammars, since=args.since, jobs=args.jobs
    )
    noun = "entry" if report.total == 1 else "entries"
    print(f"replayed {report.total} {noun}: {report.attested} attested, "
          f"{len(report.divergent)} divergent, {len(report.skipped)} skipped")
    for item in report.divergent:
        where = f" source={item.source}" if item.source else ""
        print(f"DIVERGENT seq={item.seq} op={item.op}{where}: {item.reason}",
              file=sys.stderr)
        if item.actual:
            print(f"  expected {item.expected}", file=sys.stderr)
            print(f"  actual   {item.actual}", file=sys.stderr)
    for item in report.skipped:
        print(f"skipped seq={item.seq} op={item.op}: {item.reason}",
              file=sys.stderr)
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    from repro.service.config import ServiceConfig
    from repro.service.server import ProjectionServer

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs or None,
        queue_limit=args.queue_limit,
        per_connection=args.per_connection,
        limits=_limits_from_args(args),
        tracing=bool(getattr(args, "trace_out", None) or getattr(args, "metrics", False)),
        ledger=getattr(args, "ledger", None),
    )
    server = ProjectionServer(config)

    def ready(srv) -> None:
        # Parsable by wrappers that need the bound port (port 0 picks one).
        print(f"serving on {config.host}:{srv.port}", flush=True)

    return server.run(ready=ready)


def _version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        import repro

        return repro.__version__


def _shared_parents():
    """The flag groups shared across subcommands, each defined exactly
    once and attached through argparse's ``parents`` mechanism — so
    ``prune``, ``extract`` and ``run`` cannot drift out of sync."""
    grammar = argparse.ArgumentParser(add_help=False)
    grammar.add_argument("--dtd", help="path to the DTD file")
    grammar.add_argument("--schema", metavar="FILE.xsd",
                         help="path to an XML Schema file (compiled to the "
                              "same grammar substrate as a DTD)")
    grammar.add_argument("--root",
                         help="root element tag (default: the DTD's first "
                              "declared element / the XSD's first global "
                              "element)")
    grammar.add_argument("--xmark", action="store_true",
                         help="use the built-in XMark DTD")
    grammar.add_argument("--infer-dtd", action="store_true",
                         help="summarise the input document into a dataguide "
                              "grammar (no DTD needed)")
    grammar.add_argument("--infer-from", metavar="GLOB",
                         help="infer a grammar from a corpus sample (a file, "
                              "glob, or directory) instead of loading a "
                              "schema; see --on-stray for documents outside "
                              "the sample's shape")
    grammar.add_argument("--on-stray", choices=("error", "copy"),
                         default="error",
                         help="what an inferred grammar does with documents "
                              "that stray from the sample: refuse loudly "
                              "(error, default) or pass them through "
                              "verbatim (copy); pruning a stray would drop "
                              "unknown content silently")

    query = argparse.ArgumentParser(add_help=False)
    query.add_argument("--query", action="append", required=True,
                       help="XPath or XQuery (repeatable: projectors union)")

    observability = argparse.ArgumentParser(add_help=False)
    observability.add_argument("--trace-out", metavar="FILE",
                               help="write a JSONL span/counter trace to FILE")
    observability.add_argument("--metrics", action="store_true",
                               help="print a metrics roll-up to stderr on exit")

    limit = argparse.ArgumentParser(add_help=False)
    limit.add_argument("--limits-profile", choices=("strict", "default", "off"),
                       default="default",
                       help="resource-limit profile for the pass (default: default)")
    limit.add_argument("--max-depth", type=int, metavar="N",
                       help="maximum element nesting depth (overrides the profile)")
    limit.add_argument("--timeout", type=float, metavar="SECONDS",
                       help="per-document wall-clock budget; in batch mode a "
                            "stuck worker is killed and only its item fails")

    jobs = argparse.ArgumentParser(add_help=False)
    jobs.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="worker processes for batch mode (0 = all cores)")

    ledger = argparse.ArgumentParser(add_help=False)
    ledger.add_argument("--ledger", metavar="PATH",
                        help="append an attestation for this run to the "
                             "ledger at PATH and serve identical re-runs "
                             "from the recorded bytes (see "
                             "`repro-xml verify-ledger`)")

    return {
        "grammar": grammar, "query": query, "obs": observability,
        "limit": limit, "jobs": jobs, "ledger": ledger,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xml", description="Type-based XML projection (VLDB 2006)"
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {_version()}")
    sub = parser.add_subparsers(dest="command", required=True)
    parents = _shared_parents()

    p = sub.add_parser("analyze", help="infer a type projector",
                       parents=[parents["grammar"], parents["query"],
                                parents["obs"]])
    p.add_argument("--cache-stats", action="store_true",
                   help="print projector-cache hit/miss counters")
    p.add_argument("--explain-sat", action="store_true",
                   help="print the satisfiability pre-pass verdict (SAT/"
                        "UNSAT with the reason, per query and per "
                        "qualifier branch)")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("prune", help="prune a document file (streaming) or a corpus",
                       parents=[parents["grammar"], parents["query"],
                                parents["obs"], parents["limit"],
                                parents["jobs"], parents["ledger"]])
    p.add_argument("input", help="document file, or a glob/directory for batch mode")
    p.add_argument("output", help="output file (or output directory in batch mode)")
    p.add_argument("--validate", action="store_true", help="validate while pruning")
    p.add_argument("--no-fast", action="store_true",
                   help="use the event pipeline instead of the fused fast path")
    p.add_argument("--server", metavar="HOST:PORT",
                   help="send the work to a running projection service "
                        "(see `repro-xml serve`) instead of pruning locally")
    p.set_defaults(func=cmd_prune)

    p = sub.add_parser("extract",
                       help="extract tabular records (JSONL/CSV) in one "
                            "streaming pass",
                       parents=[parents["grammar"], parents["obs"],
                                parents["limit"], parents["jobs"],
                                parents["ledger"]])
    p.add_argument("input", help="document file, or a glob/directory for batch mode")
    p.add_argument("--rows", required=True, metavar="PATH",
                   help="absolute path of the row elements, "
                        "e.g. /site/people/person")
    p.add_argument("--field", action="append", required=True, metavar="NAME=RELPATH",
                   help="output column: NAME=row-relative path "
                        "(name/text(), @id, address/city/text(); repeatable, "
                        "declaration order = column order)")
    p.add_argument("--format", choices=("jsonl", "csv"), default="jsonl",
                   help="record encoding (default: jsonl)")
    p.add_argument("--null", metavar="TEXT",
                   help="spelling for missing fields (default: JSON null / "
                        "empty CSV cell)")
    p.add_argument("--out", metavar="PATH",
                   help="output file (directory in batch mode; default: stdout)")
    p.add_argument("--server", metavar="HOST:PORT",
                   help="send the work to a running projection service "
                        "instead of extracting locally")
    p.set_defaults(func=cmd_extract)

    p = sub.add_parser("validate", help="validate a document",
                       parents=[parents["grammar"]])
    p.add_argument("input")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("generate", help="generate an XMark document")
    p.add_argument("--factor", type=float, default=0.01, help="scale factor (1.0 ≈ 80 MB)")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--output", required=True)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("serve", help="run the long-lived projection service",
                       parents=[parents["obs"], parents["limit"],
                                parents["ledger"]])
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="port to bind (default 0 = pick a free port; the "
                        "bound port is printed on startup)")
    p.add_argument("--jobs", type=int, default=2, metavar="N",
                   help="resident worker processes (0 = all cores)")
    p.add_argument("--queue-limit", type=int, default=64, metavar="N",
                   help="server-wide admitted-request bound; excess requests "
                        "get a structured 429-style refusal")
    p.add_argument("--per-connection", type=int, default=8, metavar="N",
                   help="in-flight request cap per client connection")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("verify-ledger",
                       help="replay every recorded attestation and report "
                            "divergences",
                       parents=[parents["grammar"]])
    p.add_argument("--ledger", required=True, metavar="PATH",
                   help="the attestation ledger to replay")
    p.add_argument("--since", type=int, metavar="N",
                   help="replay only entries with sequence number >= N")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="replay threads (each entry re-runs independently)")
    p.set_defaults(func=cmd_verify_ledger)

    p = sub.add_parser("run", help="run a query (optionally with pruning)",
                       parents=[parents["grammar"], parents["query"],
                                parents["obs"], parents["jobs"]])
    p.add_argument("input", help="document file, or a glob/directory for batch mode")
    p.add_argument("--prune", action="store_true", help="prune before running")
    p.set_defaults(func=cmd_run)

    return parser


def _configure_obs(args) -> bool:
    """Install trace/metrics sinks when the command asked for them."""
    trace_out = getattr(args, "trace_out", None)
    metrics = getattr(args, "metrics", False)
    if not trace_out and not metrics:
        return False
    from repro import obs

    sinks = []
    if trace_out:
        sinks.append(obs.JsonlSink(trace_out))
    if metrics:
        sinks.append(obs.SummarySink(sys.stderr))
    obs.configure(*sinks)
    return True


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configured = _configure_obs(args)
    from repro.errors import ReproError

    try:
        try:
            return args.func(args)
        except ReproError as error:
            # Structured refusals (syntax, validation, resource limits)
            # are expected outcomes on hostile input — report, don't
            # traceback.
            print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
            return 1
    finally:
        if configured:
            from repro import obs

            obs.shutdown()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
