"""An XSD front-end for the grammar substrate.

The paper's machinery consumes a tree grammar ``(X, E)`` — the DTD is
just one concrete syntax for it, and footnote 1 invites XML Schema:
"the extension of our approach to XML Schema simply needs some special
treatment of local elements".  This module compiles a *supported subset*
of XSD down to the existing grammar classes:

* schemas whose element tags are globally unambiguous compile to a plain
  local :class:`~repro.dtd.grammar.Grammar` (same class a DTD produces,
  so the fused fast path and every cache key behave identically);
* schemas with *local elements* — two declarations of one tag with
  different types — compile to a
  :class:`~repro.dtd.singletype.SingleTypeGrammar`, the single-type
  class that is exactly XML Schema's expressive power [Murata et al.].

All four declaration-style design patterns compile: Russian Doll
(everything inline), Salami Slice (global elements, ``ref=``), Venetian
Blind (local elements, named global types) and Garden of Eden (both
global).  The supported subset is: global and local ``xs:element``,
named and anonymous ``xs:complexType``, ``xs:sequence`` / ``xs:choice``
/ ``xs:all`` with ``minOccurs`` / ``maxOccurs``, ``ref=`` to global
elements and attributes, ``xs:attribute``, ``mixed`` content,
``xs:simpleContent`` extending a simple type, and simple-typed elements
(builtin ``xs:*`` types or named ``xs:simpleType`` restrictions — all
collapse to text, since the type system only tracks *structure*).

Everything else raises a structured
:class:`~repro.errors.UnsupportedSchemaError` naming the construct, so
callers know exactly what to rewrite.  ``xs:annotation`` and the
identity constraints (``xs:unique`` / ``xs:key`` / ``xs:keyref``) are
skipped: they do not change the language the schema accepts.

Tags are matched by *local name* — ``targetNamespace`` and prefixes are
ignored, matching how the rest of the pipeline treats tags as opaque
strings.

Compilation notes (all choices mirror ``grammar_from_dtd`` so a schema
expressible in both formalisms prunes byte-identically — the
differential suite gates this):

* a simple-typed element ``E`` becomes ``E -> tag[(E#text)*]`` plus the
  text production, the Section 6 per-element text-name heuristic;
* ``mixed="true"`` becomes the DTD mixed model
  ``(text | C1 | ... | Cn)*`` over the content model's names;
* ``xs:all`` is soundly over-approximated as ``(C1 | ... | Cn)*`` (any
  interleaving accepts every permutation; projection soundness only
  needs acceptance, Theorem 4.5);
* bounded ``minOccurs``/``maxOccurs`` unroll into sequence/optional
  copies (capped — pathological bounds raise rather than explode).
"""

from __future__ import annotations

import re

from repro.dtd.ast import AttributeDef, AttributeDefaultKind
from repro.dtd.grammar import (
    AttributeProduction,
    ElementProduction,
    Grammar,
    Production,
    TextProduction,
    attribute_name,
    text_name,
)
from repro.dtd.regex import Alt, Atom, Epsilon, Opt, Plus, Regex, Seq, Star
from repro.dtd.singletype import SingleTypeGrammar
from repro.errors import GrammarError, UnsupportedSchemaError
from repro.xmltree.nodes import Element

__all__ = ["grammar_from_xsd", "grammar_from_xsd_file", "looks_like_xsd"]

#: Unrolling bound for numeric minOccurs/maxOccurs: a model needing more
#: copies than this is almost certainly generated, and unrolling it would
#: blow up the Glushkov automaton quadratically.
MAX_OCCURS_UNROLL = 64

#: Constructs that are recognised and deliberately skipped (they never
#: change the language the schema accepts).
_SKIPPED = frozenset({"annotation", "unique", "key", "keyref"})

#: Constructs outside the subset; seeing one is a structured refusal.
_UNSUPPORTED = frozenset({
    "import", "include", "redefine", "override", "group", "attributeGroup",
    "any", "anyAttribute", "notation", "complexContent",
})

_FIRST_TAG = re.compile(r"<\s*([A-Za-z_][\w.:-]*)")


def _local(tag: str) -> str:
    """The local part of a possibly-prefixed XML name."""
    return tag.rsplit(":", 1)[-1]


def looks_like_xsd(text: str) -> bool:
    """Whether ``text`` is an XML Schema document: the first element's
    local name is ``schema``.  Cheap enough for format sniffing — no
    parse, just a scan past the prolog for the first open tag."""
    for match in _FIRST_TAG.finditer(text):
        name = match.group(1)
        if name.startswith("?") or name.startswith("!"):
            continue
        return _local(name) == "schema"
    return False


def _element_children(node: Element) -> "list[Element]":
    """Element children, with annotations and whitespace dropped and the
    unsupported constructs refused up front."""
    result: list[Element] = []
    for child in node.children:
        if not isinstance(child, Element):
            continue
        local = _local(child.tag)
        if local in _SKIPPED:
            continue
        if local in _UNSUPPORTED:
            raise UnsupportedSchemaError(
                f"xs:{local}", f"inside <{_local(node.tag)}>"
            )
        result.append(child)
    return result


class _Compiler:
    """One schema document compiled to one grammar.

    Names are allocated on a deterministic depth-first walk from the
    root element, so the same schema text always yields the same grammar
    (byte-identical fingerprint) — the same load-bearing property the
    dataguide builder pins.
    """

    def __init__(self, schema: Element) -> None:
        if _local(schema.tag) != "schema":
            raise GrammarError(
                f"not an XML Schema document (root element <{schema.tag}>)"
            )
        self.global_elements: dict[str, Element] = {}
        self.global_order: list[str] = []
        self.named_complex: dict[str, Element] = {}
        self.named_simple: set[str] = set()
        self.global_attributes: dict[str, Element] = {}
        for child in _element_children(schema):
            local = _local(child.tag)
            name = child.attributes.get("name", "")
            if local == "element":
                if not name:
                    raise GrammarError("global xs:element without a name")
                if name in self.global_elements:
                    raise GrammarError(f"duplicate global element {name!r}")
                self.global_elements[name] = child
                self.global_order.append(name)
            elif local == "complexType":
                if not name:
                    raise GrammarError("global xs:complexType without a name")
                if name in self.named_complex:
                    raise GrammarError(f"duplicate global type {name!r}")
                self.named_complex[name] = child
            elif local == "simpleType":
                if not name:
                    raise GrammarError("global xs:simpleType without a name")
                self.named_simple.add(name)
            elif local == "attribute":
                if not name:
                    raise GrammarError("global xs:attribute without a name")
                self.global_attributes[name] = child
            else:
                raise UnsupportedSchemaError(f"xs:{local}", "at schema top level")
        # (tag, type key) -> allocated grammar name; anonymous types key
        # by their node's identity (each inline type is its own type).
        self._names: dict[tuple, str] = {}
        self._taken: set[str] = set()
        self.productions: list[Production] = []

    # -- driving ---------------------------------------------------------

    def compile(self, root: "str | None" = None) -> Grammar:
        if not self.global_order:
            raise GrammarError("the schema declares no global elements")
        if root is None:
            root = self.global_order[0]
        decl = self.global_elements.get(root)
        if decl is None:
            raise GrammarError(
                f"root tag {root!r} is not a global element "
                f"(declared: {self.global_order})"
            )
        root_name = self._visit_element(decl, parent_name=None)
        tags_seen: dict[str, int] = {}
        for production in self.productions:
            if isinstance(production, ElementProduction):
                tags_seen[production.tag] = tags_seen.get(production.tag, 0) + 1
        if all(count == 1 for count in tags_seen.values()):
            return Grammar(root_name, self.productions)
        return SingleTypeGrammar(root_name, self.productions)

    # -- element declarations --------------------------------------------

    def _visit_element(self, node: Element, parent_name: "str | None") -> str:
        """Compile one element declaration (emitting its productions on
        first sight) and return its grammar name."""
        ref = node.attributes.get("ref")
        if ref is not None:
            target = self.global_elements.get(_local(ref))
            if target is None:
                raise GrammarError(f"xs:element ref to undeclared element {ref!r}")
            return self._visit_element(target, parent_name=None)
        tag = node.attributes.get("name")
        if not tag:
            raise GrammarError("xs:element without name or ref")
        self._refuse_modifiers(node, tag)
        key, content = self._type_of(node, tag)
        known = self._names.get(key)
        if known is not None:
            return known
        name = self._allocate(tag, key, parent_name)
        self._names[key] = name
        self._emit(name, tag, content)
        return name

    def _refuse_modifiers(self, node: Element, tag: str) -> None:
        for modifier in ("substitutionGroup", "abstract", "nillable", "block", "final"):
            value = node.attributes.get(modifier)
            if value and value not in ("false", "0"):
                raise UnsupportedSchemaError(modifier, f"on element {tag!r}")

    def _type_of(self, node: Element, tag: str) -> "tuple[tuple, Element | None]":
        """The element's type identity and (for complex types) the
        ``xs:complexType`` node to compile.

        The identity keys name allocation: every reference to one named
        type shares one grammar name (this is what keeps Venetian Blind
        schemas finite under recursion), while each anonymous type is a
        type of its own (local elements, the footnote 1 case).
        """
        type_ref = node.attributes.get("type")
        children = _element_children(node)
        if type_ref is not None:
            if children:
                raise GrammarError(
                    f"element {tag!r} has both type= and an inline type"
                )
            local = _local(type_ref)
            ct = self.named_complex.get(local)
            if ct is not None:
                return (tag, "ct", local), ct
            if local in self.named_simple or ":" in type_ref:
                # A named simpleType, or a prefixed builtin (xs:string,
                # xs:integer, ...): structure-wise it is just text.
                return (tag, "text"), None
            raise GrammarError(
                f"element {tag!r} references undeclared type {type_ref!r}"
            )
        if not children:
            # No type at all defaults to xs:anyType (any content) — not
            # expressible as a local/single-type content model.
            raise UnsupportedSchemaError(
                "implicit xs:anyType", f"element {tag!r} declares no type"
            )
        if len(children) > 1 or _local(children[0].tag) not in ("complexType", "simpleType"):
            raise UnsupportedSchemaError(
                f"xs:{_local(children[0].tag)}", f"inside element {tag!r}"
            )
        inline = children[0]
        if _local(inline.tag) == "simpleType":
            return (tag, "text"), None
        return (tag, "anon", id(inline)), inline

    def _allocate(self, tag: str, key: tuple, parent_name: "str | None") -> str:
        """A deterministic, collision-free grammar name for one element
        type.  Bare tags are preferred (DTD parity); local elements fall
        back to dotted disambiguation.  ``@`` and ``#`` never appear —
        they are the attribute/text name separators."""
        candidates = [tag]
        if key[1] == "ct":
            candidates.append(f"{tag}.{key[2]}")
        elif parent_name is not None:
            candidates.append(f"{parent_name}.{tag}")
        for candidate in candidates:
            if candidate not in self._taken:
                self._taken.add(candidate)
                return candidate
        index = 2
        while f"{candidates[-1]}.{index}" in self._taken:
            index += 1
        name = f"{candidates[-1]}.{index}"
        self._taken.add(name)
        return name

    def _emit(self, name: str, tag: str, ct: "Element | None") -> None:
        """Compile the content model and append this element's
        productions (element, then text, then attributes — the dataguide
        builder's order)."""
        if ct is None:
            regex: Regex = Star(Atom(text_name(name)))
            has_text = True
            attrs: tuple[AttributeDef, ...] = ()
        else:
            regex, has_text, attrs = self._compile_complex(ct, name)
        self.productions.append(ElementProduction(name, tag, regex, attrs))
        if has_text:
            self.productions.append(TextProduction(text_name(name)))
        for attr in attrs:
            self.productions.append(
                AttributeProduction(attribute_name(name, attr.name), tag, attr.name)
            )

    # -- complex types ---------------------------------------------------

    def _compile_complex(
        self, ct: Element, name: str
    ) -> "tuple[Regex, bool, tuple[AttributeDef, ...]]":
        mixed = ct.attributes.get("mixed", "false") in ("true", "1")
        particle: Regex | None = None
        attrs: list[AttributeDef] = []
        has_text = mixed
        for child in _element_children(ct):
            local = _local(child.tag)
            if local in ("sequence", "choice", "all"):
                if particle is not None:
                    raise GrammarError(f"type of {name!r} has two content models")
                particle = self._compile_particle(child, name)
            elif local == "attribute":
                attr = self._attribute_def(child, name)
                if attr is not None:
                    attrs.append(attr)
            elif local == "simpleContent":
                text_regex, extension_attrs = self._compile_simple_content(child, name)
                particle = text_regex
                has_text = True
                attrs.extend(extension_attrs)
            else:
                raise UnsupportedSchemaError(f"xs:{local}", f"in type of {name!r}")
        if particle is None:
            particle = Epsilon()
        if mixed:
            particle = self._mixed_model(name, particle)
        return particle, has_text, tuple(attrs)

    def _mixed_model(self, name: str, particle: Regex) -> Regex:
        """The DTD mixed model: text and the content model's names in a
        starred union, first occurrence order."""
        alternatives: list[Regex] = [Atom(text_name(name))]
        seen: set[str] = set()
        for atom in particle.atoms():
            if atom.name not in seen:
                seen.add(atom.name)
                alternatives.append(Atom(atom.name))
        if len(alternatives) == 1:
            return Star(alternatives[0])
        return Star(Alt(alternatives))

    def _compile_simple_content(
        self, node: Element, name: str
    ) -> "tuple[Regex, list[AttributeDef]]":
        children = _element_children(node)
        if len(children) != 1 or _local(children[0].tag) != "extension":
            construct = f"xs:{_local(children[0].tag)}" if children else "empty"
            raise UnsupportedSchemaError(
                construct, f"in simpleContent of {name!r} (only xs:extension)"
            )
        extension = children[0]
        base = extension.attributes.get("base", "")
        if _local(base) in self.named_complex:
            raise UnsupportedSchemaError(
                "xs:extension of a complex type", f"in simpleContent of {name!r}"
            )
        attrs: list[AttributeDef] = []
        for child in _element_children(extension):
            if _local(child.tag) != "attribute":
                raise UnsupportedSchemaError(
                    f"xs:{_local(child.tag)}", f"in extension of {name!r}"
                )
            attr = self._attribute_def(child, name)
            if attr is not None:
                attrs.append(attr)
        return Star(Atom(text_name(name))), attrs

    # -- particles -------------------------------------------------------

    def _compile_particle(self, node: Element, parent_name: str) -> Regex:
        local = _local(node.tag)
        if local == "element":
            inner: Regex = Atom(self._visit_element(node, parent_name))
            return self._bounded(inner, node, parent_name)
        if local in ("sequence", "choice"):
            items = [
                self._compile_particle(child, parent_name)
                for child in _element_children(node)
            ]
            if not items:
                inner = Epsilon()
            elif len(items) == 1:
                inner = items[0]  # DTD parity: (a) unwraps
            else:
                inner = Seq(items) if local == "sequence" else Alt(items)
            return self._bounded(inner, node, parent_name)
        if local == "all":
            # Sound over-approximation: any interleaving accepts every
            # permutation, and the bounds collapse into the star.
            names = [
                Atom(self._visit_element(child, parent_name))
                for child in _element_children(node)
                if _local(child.tag) == "element"
                or self._refuse_particle(child, parent_name)
            ]
            if not names:
                return Epsilon()
            return Star(names[0] if len(names) == 1 else Alt(names))
        raise UnsupportedSchemaError(f"xs:{local}", f"in content of {parent_name!r}")

    def _refuse_particle(self, node: Element, parent_name: str) -> bool:
        raise UnsupportedSchemaError(
            f"xs:{_local(node.tag)}", f"inside xs:all of {parent_name!r}"
        )

    def _bounded(self, regex: Regex, node: Element, parent_name: str) -> Regex:
        """Apply minOccurs/maxOccurs by unrolling to the DTD operators."""
        minimum = self._occurs(node, "minOccurs", parent_name)
        raw_max = node.attributes.get("maxOccurs", "1")
        if raw_max == "unbounded":
            if minimum == 0:
                return Star(regex)
            if minimum == 1:
                return Plus(regex)
            return Seq([regex] * (minimum - 1) + [Plus(regex)])
        maximum = self._occurs(node, "maxOccurs", parent_name)
        if maximum < minimum:
            raise GrammarError(
                f"maxOccurs < minOccurs in content of {parent_name!r}"
            )
        if maximum == 0:
            return Epsilon()
        if maximum > MAX_OCCURS_UNROLL:
            raise UnsupportedSchemaError(
                f"maxOccurs={maximum}",
                f"in content of {parent_name!r} "
                f"(unrolling is capped at {MAX_OCCURS_UNROLL})",
            )
        if minimum == maximum == 1:
            return regex
        if minimum == 0 and maximum == 1:
            return Opt(regex)
        parts = [regex] * minimum + [Opt(regex)] * (maximum - minimum)
        return parts[0] if len(parts) == 1 else Seq(parts)

    @staticmethod
    def _occurs(node: Element, attribute: str, parent_name: str) -> int:
        raw = node.attributes.get(attribute, "1")
        try:
            value = int(raw)
        except ValueError:
            raise GrammarError(
                f"bad {attribute}={raw!r} in content of {parent_name!r}"
            ) from None
        if value < 0:
            raise GrammarError(
                f"negative {attribute} in content of {parent_name!r}"
            )
        return value

    # -- attributes ------------------------------------------------------

    def _attribute_def(self, node: Element, owner: str) -> "AttributeDef | None":
        ref = node.attributes.get("ref")
        if ref is not None:
            target = self.global_attributes.get(_local(ref))
            if target is None:
                raise GrammarError(
                    f"xs:attribute ref to undeclared attribute {ref!r}"
                )
            name = target.attributes.get("name", "")
        else:
            name = node.attributes.get("name", "")
        if not name:
            raise GrammarError(f"xs:attribute without name or ref on {owner!r}")
        use = node.attributes.get("use", "optional")
        if use == "prohibited":
            return None
        fixed = node.attributes.get("fixed")
        default = node.attributes.get("default")
        if fixed is not None:
            kind, value = AttributeDefaultKind.FIXED, fixed
        elif default is not None:
            kind, value = AttributeDefaultKind.DEFAULT, default
        elif use == "required":
            kind, value = AttributeDefaultKind.REQUIRED, None
        else:
            kind, value = AttributeDefaultKind.IMPLIED, None
        return AttributeDef(name, "CDATA", kind, value)


def grammar_from_xsd(text: str, root: "str | None" = None) -> Grammar:
    """Compile XML Schema text to a grammar.

    ``root`` names the root element *tag* (default: the first global
    element, mirroring the DTD loader's first-declaration convention).
    Returns a plain :class:`~repro.dtd.grammar.Grammar` when every tag
    has one type, a :class:`~repro.dtd.singletype.SingleTypeGrammar`
    when the schema uses local elements.
    """
    from repro.xmltree.builder import parse_document

    document = parse_document(text)
    return _Compiler(document.root).compile(root)


def grammar_from_xsd_file(path: str, root: "str | None" = None) -> Grammar:
    """Compile an ``.xsd`` file to a grammar (see :func:`grammar_from_xsd`)."""
    with open(path, "r", encoding="utf-8") as handle:
        return grammar_from_xsd(handle.read(), root)
