"""JSON wire codec for grammars — how non-DTD grammars reach the service.

The service protocol historically named a grammar by value only for
DTDs (``{"dtd": text, "root": tag}``) because DTD text is its own
canonical serialization.  XSD-compiled and inferred grammars need an
explicit one: this module round-trips any grammar class through plain
JSON-compatible data, so a client can infer (or compile) locally once
and ship the result — the server memoizes by content hash and pins the
compiled pruner in its resident workers exactly as for DTD grammars.

Regexes encode as nested tagged lists (``["seq", [...]]``,
``["atom", name]``, ...), productions and the grammar as objects.  The
codec is intentionally strict: unknown tags or malformed shapes raise
:class:`~repro.errors.ReproError` (the server maps this to a protocol
error) rather than guessing.
"""

from __future__ import annotations

from typing import Any

from repro.dtd.ast import AttributeDef, AttributeDefaultKind
from repro.dtd.grammar import (
    AttributeProduction,
    ElementProduction,
    Grammar,
    Production,
    TextProduction,
)
from repro.dtd.regex import Alt, Atom, Empty, Epsilon, Opt, Plus, Regex, Seq, Star
from repro.dtd.singletype import SingleTypeGrammar
from repro.errors import ReproError
from repro.schema.infer import InferredGrammar

__all__ = ["grammar_to_wire", "grammar_from_wire"]


def regex_to_wire(regex: Regex) -> "list[Any]":
    if isinstance(regex, Atom):
        return ["atom", regex.name]
    if isinstance(regex, Seq):
        return ["seq", [regex_to_wire(item) for item in regex.items]]
    if isinstance(regex, Alt):
        return ["alt", [regex_to_wire(item) for item in regex.items]]
    if isinstance(regex, Star):
        return ["star", regex_to_wire(regex.inner)]
    if isinstance(regex, Plus):
        return ["plus", regex_to_wire(regex.inner)]
    if isinstance(regex, Opt):
        return ["opt", regex_to_wire(regex.inner)]
    if isinstance(regex, Epsilon):
        return ["eps"]
    if isinstance(regex, Empty):
        return ["empty"]
    raise ReproError(f"cannot encode regex node {type(regex).__name__}")


def regex_from_wire(wire: Any) -> Regex:
    if not isinstance(wire, list) or not wire or not isinstance(wire[0], str):
        raise ReproError(f"bad regex wire form: {wire!r}")
    tag, rest = wire[0], wire[1:]
    if tag == "atom" and len(rest) == 1 and isinstance(rest[0], str):
        return Atom(rest[0])
    if tag in ("seq", "alt") and len(rest) == 1 and isinstance(rest[0], list):
        items = [regex_from_wire(item) for item in rest[0]]
        return Seq(items) if tag == "seq" else Alt(items)
    if tag in ("star", "plus", "opt") and len(rest) == 1:
        inner = regex_from_wire(rest[0])
        return {"star": Star, "plus": Plus, "opt": Opt}[tag](inner)
    if tag == "eps" and not rest:
        return Epsilon()
    if tag == "empty" and not rest:
        return Empty()
    raise ReproError(f"bad regex wire form: {wire!r}")


_KIND_TO_WIRE = {
    AttributeDefaultKind.REQUIRED: "required",
    AttributeDefaultKind.IMPLIED: "implied",
    AttributeDefaultKind.FIXED: "fixed",
    AttributeDefaultKind.DEFAULT: "default",
}
_KIND_FROM_WIRE = {wire: kind for kind, wire in _KIND_TO_WIRE.items()}


def _attribute_to_wire(attr: AttributeDef) -> "dict[str, Any]":
    wire: dict[str, Any] = {
        "name": attr.name,
        "type": attr.attribute_type,
        "use": _KIND_TO_WIRE[attr.default_kind],
    }
    if attr.default_value is not None:
        wire["value"] = attr.default_value
    return wire


def _attribute_from_wire(wire: Any) -> AttributeDef:
    if not isinstance(wire, dict) or not isinstance(wire.get("name"), str):
        raise ReproError(f"bad attribute wire form: {wire!r}")
    kind = _KIND_FROM_WIRE.get(wire.get("use", "implied"))
    if kind is None:
        raise ReproError(f"bad attribute use: {wire.get('use')!r}")
    return AttributeDef(
        wire["name"], wire.get("type", "CDATA"), kind, wire.get("value")
    )


def _production_to_wire(production: Production) -> "dict[str, Any]":
    if isinstance(production, ElementProduction):
        return {
            "kind": "element",
            "name": production.name,
            "tag": production.tag,
            "regex": regex_to_wire(production.regex),
            "attributes": [
                _attribute_to_wire(attr) for attr in production.attributes
            ],
        }
    if isinstance(production, TextProduction):
        return {"kind": "text", "name": production.name}
    if isinstance(production, AttributeProduction):
        return {
            "kind": "attribute",
            "name": production.name,
            "tag": production.owner_tag,
            "attribute": production.attribute,
        }
    raise ReproError(f"cannot encode production {type(production).__name__}")


def _production_from_wire(wire: Any) -> Production:
    if not isinstance(wire, dict) or not isinstance(wire.get("name"), str):
        raise ReproError(f"bad production wire form: {wire!r}")
    kind = wire.get("kind")
    name = wire["name"]
    if kind == "element":
        if not isinstance(wire.get("tag"), str):
            raise ReproError(f"element production {name!r} needs a tag")
        attrs = tuple(
            _attribute_from_wire(attr) for attr in wire.get("attributes", [])
        )
        return ElementProduction(
            name, wire["tag"], regex_from_wire(wire.get("regex")), attrs
        )
    if kind == "text":
        return TextProduction(name)
    if kind == "attribute":
        if not isinstance(wire.get("tag"), str) or not isinstance(
            wire.get("attribute"), str
        ):
            raise ReproError(f"attribute production {name!r} needs tag/attribute")
        return AttributeProduction(name, wire["tag"], wire["attribute"])
    raise ReproError(f"bad production kind: {kind!r}")


def grammar_to_wire(grammar: Grammar) -> "dict[str, Any]":
    """Encode any grammar class as JSON-compatible data."""
    if isinstance(grammar, InferredGrammar):
        klass = "inferred"
    elif isinstance(grammar, SingleTypeGrammar):
        klass = "single_type"
    elif type(grammar) is Grammar:
        klass = "local"
    else:
        raise ReproError(
            f"cannot encode grammar class {type(grammar).__name__}"
        )
    wire: dict[str, Any] = {
        "class": klass,
        "root": grammar.root,
        "productions": [
            _production_to_wire(grammar.productions[name])
            for name in sorted(grammar.productions)
        ],
    }
    if isinstance(grammar, InferredGrammar):
        wire["on_stray"] = grammar.on_stray
        wire["sample_count"] = grammar.sample_count
    return wire


def grammar_from_wire(wire: Any) -> Grammar:
    """Decode :func:`grammar_to_wire` output back into the right class."""
    if not isinstance(wire, dict):
        raise ReproError(f"bad grammar wire form: {type(wire).__name__}")
    root = wire.get("root")
    raw = wire.get("productions")
    if not isinstance(root, str) or not isinstance(raw, list):
        raise ReproError("grammar wire form needs 'root' and 'productions'")
    productions = [_production_from_wire(item) for item in raw]
    klass = wire.get("class", "local")
    if klass == "local":
        return Grammar(root, productions)
    if klass == "single_type":
        return SingleTypeGrammar(root, productions)
    if klass == "inferred":
        return InferredGrammar(
            root,
            productions,
            on_stray=wire.get("on_stray", "error"),
            sample_count=int(wire.get("sample_count", 0)),
        )
    raise ReproError(f"bad grammar class: {klass!r}")
