"""First-class schemaless inference: dataguide grammars with a policy.

The paper's conclusion invites "dataguides/path-summaries instead" of
DTDs; :mod:`repro.dtd.dataguide` builds that summary.  This module
promotes it from an example into a mode the whole pipeline understands:
:func:`infer_grammar` samples a corpus into an :class:`InferredGrammar`,
and the grammar itself carries the *escape hatch* — Theorem 4.5
soundness only covers documents the grammar accepts, so a document that
strays from the sample must never be pruned as if it validated.

The stray check costs nothing extra: a dataguide grammar's content
models are starred unions of everything observed, so full validation
against it *is* exactly "every child tag was observed under this parent,
text only where text was observed".  The prune facade therefore forces
validation on for inferred grammars and maps the first violation to the
policy:

* ``on_stray="error"`` (default) — raise the structured
  :class:`~repro.errors.StrayDocumentError` naming the violation;
* ``on_stray="copy"`` — emit the document verbatim (identity copy), the
  always-sound fallback (a copy preserves every query answer).

Attributes are part of the check: unlike DTD validation (where an
undeclared attribute is tolerated as an authoring choice), an attribute
never seen in the sample is evidence the document strays, and silently
*dropping* it would be a wrong-bytes prune.  ``strict_attributes`` on
the grammar turns on the event validator's attribute checking.

The builder's output is deterministic — summaries materialise in sorted
order — so any ingestion order of the same corpus yields byte-identical
fingerprints (load-bearing for the projector cache, resident-worker
pins and the attestation ledger; pinned by a property test).
"""

from __future__ import annotations

import os
from typing import IO, Iterable

from repro.dtd.dataguide import DataguideBuilder
from repro.dtd.grammar import Grammar, Production
from repro.errors import ReproError

__all__ = ["InferredGrammar", "infer_grammar", "STRAY_POLICIES"]

STRAY_POLICIES = ("error", "copy")


class InferredGrammar(Grammar):
    """A dataguide grammar inferred from samples, carrying its stray
    policy.  A local tree grammar in every other respect — the fused
    fast path, the static analysis and the service treat it exactly
    like a DTD grammar, except that pruning always validates and the
    fingerprint is salted with the policy (two policies must never
    share a cache entry, a resident pin or a ledger attestation).
    """

    #: The event validator checks attributes against the productions
    #: when this is set (see the module docstring).
    strict_attributes = True

    def __init__(
        self,
        root: str,
        productions: Iterable[Production],
        *,
        on_stray: str = "error",
        sample_count: int = 0,
    ) -> None:
        if on_stray not in STRAY_POLICIES:
            raise ReproError(
                f"unknown on_stray policy {on_stray!r} "
                f"(expected one of {STRAY_POLICIES})"
            )
        super().__init__(root, productions)
        self.on_stray = on_stray
        self.sample_count = sample_count

    @property
    def fingerprint_salt(self) -> str:
        return f"on_stray={self.on_stray}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InferredGrammar(root={self.root!r}, "
            f"{len(self.productions)} names, on_stray={self.on_stray!r})"
        )


def infer_grammar(
    sample_sources: "str | os.PathLike[str] | IO[str] | Iterable[str]",
    *,
    root: "str | None" = None,
    on_stray: str = "error",
) -> InferredGrammar:
    """Infer an :class:`InferredGrammar` from a sample of a corpus.

    ``sample_sources`` follows the :func:`repro.prune_many` source
    convention: inline markup, a file path, a glob pattern, a directory
    (every ``*.xml`` inside, sorted), an open stream, or any iterable
    mixing those.  Ingestion is streaming — arbitrarily large samples
    summarise in constant memory.

    ``root`` picks the root tag when the sample's documents disagree;
    ``on_stray`` is the escape-hatch policy documents outside the
    inferred language get at prune time (see the module docstring).
    """
    from repro.parallel import expand_sources
    from repro.xmltree.parser import parse_events

    builder = DataguideBuilder()
    count = 0
    if isinstance(sample_sources, (str, os.PathLike)) or hasattr(
        sample_sources, "read"
    ):
        sample_sources = [sample_sources]  # type: ignore[list-item]
    for source in sample_sources:
        if hasattr(source, "read"):
            builder.add_events(parse_events(source))
            count += 1
            continue
        for expanded in expand_sources([source]):
            if expanded.lstrip().startswith("<"):
                builder.add_events(parse_events(expanded))
            else:
                with open(expanded, "r", encoding="utf-8") as handle:
                    builder.add_events(parse_events(handle))
            count += 1
    if count == 0:
        raise ReproError("infer_grammar got an empty sample")
    grammar_root, productions = builder.materialise(root)
    return InferredGrammar(
        grammar_root, productions, on_stray=on_stray, sample_count=count
    )
