"""Grammar acquisition beyond DTD (ROADMAP item 2).

The type system behind projection consumes a tree grammar ``(X, E)``;
the DTD front-end (:mod:`repro.dtd`) is just one way to get one.  This
package adds the other two real-world sources:

* :mod:`repro.schema.xsd` — compile a supported subset of XML Schema to
  the existing grammar classes (plain local grammars, or single-type
  grammars when the schema uses local elements);
* :mod:`repro.schema.infer` — infer an :class:`InferredGrammar` from a
  sample of a schemaless corpus (the dataguide construction), carrying
  an ``on_stray`` escape-hatch policy for documents outside the
  inferred language;
* :mod:`repro.schema.wire` — a JSON codec so both kinds of grammar ride
  the service protocol by value, like DTD text does.

:func:`repro.load_grammar` dispatches here for ``format="xsd"`` and
``infer=``; everything downstream (facades, batch, service, CLI,
static analysis) is grammar-class agnostic.
"""

from repro.schema.infer import InferredGrammar, infer_grammar
from repro.schema.wire import grammar_from_wire, grammar_to_wire
from repro.schema.xsd import grammar_from_xsd, grammar_from_xsd_file, looks_like_xsd

__all__ = [
    "InferredGrammar",
    "infer_grammar",
    "grammar_from_wire",
    "grammar_to_wire",
    "grammar_from_xsd",
    "grammar_from_xsd_file",
    "looks_like_xsd",
]
