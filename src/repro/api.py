"""The unified public pruning API: one :func:`prune` for every source.

Historically the streaming pruner grew one entry point per source kind —
``prune_string``, ``prune_file``, ``prune_stream`` and ``prune_events`` —
each with its own positional-flag signature.  This module collapses them
behind a single keyword-consistent facade::

    from repro import prune

    result = prune(xml_text, grammar, projector)          # text  -> text
    result = prune("in.xml", grammar, projector,
                   out="pruned.xml", validate=True)       # file  -> file
    result = prune(handle, grammar, projector, out=sink)  # stream-> stream
    for event in prune(events, grammar, projector):       # events-> events
        ...

``source`` dispatch: a string that (after leading whitespace) starts with
``<`` is XML markup, any other string or :class:`os.PathLike` is an input
path, an object with ``.read`` is a text stream, and any other iterable is
an event stream.  ``out`` mirrors this: ``None`` collects text (or, for an
event source, returns the pruned event iterator), a path writes a file
(removed again if pruning fails mid-stream), and an object with ``.write``
is streamed to.

Options shared by every form live in :class:`PruneOptions`; the common
ones (``fast``, ``validate``) are also accepted directly as keywords and
override the options object when given.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass, replace
from typing import IO, Any, Iterable, Iterator

from repro import obs
from repro.dtd.grammar import Grammar
from repro.errors import ReproError
from repro.limits import Limits, resolve_limits
from repro.projection.stats import PruneStats
from repro.projection.streaming import (
    _open_output,
    _prune_events,
    _prune_file,
    _prune_stream,
    _prune_string,
)
from repro.xmltree.events import Event
from repro.xmltree.lexer import DEFAULT_CHUNK_SIZE

__all__ = ["PruneOptions", "PruneResult", "prune"]


@dataclass(slots=True, frozen=True)
class PruneOptions:
    """Behavioural knobs shared by every :func:`prune` form.

    * ``fast`` — use the fused scanner-level pipeline (bulk tag scanning,
      bulk skipping of pruned regions).  Output is byte-identical to the
      event pipeline; ``False`` exists for benchmarking and debugging.
    * ``validate`` — run DTD validation in the same pass (forces the event
      pipeline: the validator must see every event).
    * ``prune_attributes`` — filter attributes not kept by the projector.
    * ``chunk_size`` — read granularity for streaming sources.
    * ``limits`` — resource bounds for the pass: a
      :class:`~repro.limits.Limits`, a profile name (``"strict"``,
      ``"default"``, ``"off"``), or ``None`` for the default profile.
      Violations raise :class:`~repro.errors.LimitExceeded` /
      :class:`~repro.errors.DeadlineExceeded`.
    * ``fallback`` — let the fast path degrade gracefully to the event
      pipeline on inputs its bulk scan cannot handle (``True``, the
      default); ``False`` surfaces the refusal instead, and ``"force"``
      skips the fast attempt entirely (a test knob: it proves the
      degraded path byte-identical to the fast one).
    """

    fast: bool = True
    validate: bool = False
    prune_attributes: bool = True
    chunk_size: int = DEFAULT_CHUNK_SIZE
    limits: "Limits | str | None" = None
    fallback: "bool | str" = True

    # -- wire form (the service protocol ships options as JSON) -----------

    def to_wire(self) -> dict[str, Any]:
        """JSON-safe form: only the fields that differ from the defaults
        (``limits`` serializes as a profile name or a bounds dict)."""
        wire: dict[str, Any] = {}
        for name in ("fast", "validate", "prune_attributes", "chunk_size", "fallback"):
            value = getattr(self, name)
            if value != getattr(DEFAULT_OPTIONS, name):
                wire[name] = value
        if self.limits is not None:
            wire["limits"] = (
                self.limits if isinstance(self.limits, str) else self.limits.as_dict()
            )
        return wire

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "PruneOptions":
        """Rebuild from :meth:`to_wire` output (unknown keys rejected so a
        client/server version skew fails loudly, not silently)."""
        fields = dict(wire)
        limits = fields.pop("limits", None)
        if isinstance(limits, dict):
            limits = Limits.from_dict(limits)
        unknown = set(fields) - {
            "fast", "validate", "prune_attributes", "chunk_size", "fallback"
        }
        if unknown:
            raise ValueError(f"unknown prune option(s): {sorted(unknown)}")
        return cls(limits=limits, **fields)


DEFAULT_OPTIONS = PruneOptions()


@dataclass(slots=True)
class PruneResult:
    """What one :func:`prune` call produced.

    Exactly one of ``text`` / ``events`` / ``output_path`` is populated
    (``output_path`` also stays ``None`` when ``out`` was an open stream —
    the markup went to the caller's sink).  ``stats`` always carries the
    :class:`~repro.projection.stats.PruneStats` counters; for an event
    source they finish filling only once the iterator is exhausted.
    """

    stats: PruneStats
    text: str | None = None
    events: Iterator[Event] | None = None
    output_path: str | None = None

    def __iter__(self) -> Iterator[Event]:
        if self.events is None:
            raise TypeError("this prune() result is not an event stream")
        return self.events


def _resolve_options(
    options: PruneOptions | None,
    fast: bool | None,
    validate: bool | None,
    prune_attributes: bool | None,
    chunk_size: int | None,
    *,
    limits: "Limits | str | None" = None,
    fallback: "bool | str | None" = None,
) -> PruneOptions:
    resolved = options if options is not None else DEFAULT_OPTIONS
    overrides: dict[str, Any] = {}
    if fast is not None:
        overrides["fast"] = fast
    if validate is not None:
        overrides["validate"] = validate
    if prune_attributes is not None:
        overrides["prune_attributes"] = prune_attributes
    if chunk_size is not None:
        overrides["chunk_size"] = chunk_size
    if limits is not None:
        overrides["limits"] = limits
    if fallback is not None:
        overrides["fallback"] = fallback
    return replace(resolved, **overrides) if overrides else resolved


def _is_markup(text: str) -> bool:
    return text.lstrip()[:1] == "<"


def prune(
    source: "str | os.PathLike[str] | IO[str] | Iterable[Event]",
    grammar: Grammar,
    projector: frozenset[str] | set[str],
    *,
    out: "str | os.PathLike[str] | IO[str] | None" = None,
    options: PruneOptions | None = None,
    fast: bool | None = None,
    validate: bool | None = None,
    prune_attributes: bool | None = None,
    chunk_size: int | None = None,
    limits: "Limits | str | None" = None,
    fallback: "bool | str | None" = None,
) -> PruneResult:
    """Prune ``source`` down to the nodes the ``projector`` keeps.

    See the module docstring for the source/out dispatch table.  Returns a
    :class:`PruneResult`; pruning streams throughout, so memory stays
    O(document depth) regardless of source size.

    ``projector`` also accepts a full :class:`~repro.core.pipeline.
    AnalysisResult` (what :func:`repro.analyze` returns).  That unlocks
    the static short-circuit: a workload the satisfiability pre-pass
    proved empty (:attr:`~repro.core.pipeline.AnalysisResult.
    provably_empty`) is answered with the bare root element *without
    opening the document* — for grammar-valid sources this is exactly
    what the full pass would have produced.  (Prolog-level comments, the
    one pre-root construct the streaming pruner echoes, are dropped; and
    ``validate=True``, ``prune_attributes=False`` or an event source
    disable the shortcut, because those contracts need the real pass.)
    """
    analysis = None
    if hasattr(projector, "projector") and hasattr(projector, "provably_empty"):
        analysis = projector
        projector = analysis.projector

    opts = _resolve_options(
        options, fast, validate, prune_attributes, chunk_size,
        limits=limits, fallback=fallback,
    )
    resolved_limits = resolve_limits(opts.limits)

    # Event-stream source: transform iterator to iterator.
    if not isinstance(source, (str, os.PathLike)) and not hasattr(source, "read"):
        if not hasattr(source, "__iter__"):
            raise TypeError(f"cannot prune source of type {type(source).__name__}")
        if out is not None:
            raise ReproError(
                "prune() of an event stream returns events; "
                "serialize them explicitly instead of passing out="
            )
        # (``fast`` is moot here: event input already paid for parsing.)
        stats = PruneStats()
        events = _prune_events(
            source, grammar, projector,
            validate=opts.validate, stats=stats,
            prune_attributes=opts.prune_attributes,
            guard=resolved_limits.guard(),
        )
        return PruneResult(stats=stats, events=events)

    is_path = isinstance(source, os.PathLike) or (
        isinstance(source, str) and not _is_markup(source)
    )
    out_is_path = out is not None and not hasattr(out, "write")

    if (
        analysis is not None
        and analysis.provably_empty
        and not opts.validate
        and opts.prune_attributes
    ):
        return _short_circuit_empty(source, grammar, out, is_path, out_is_path)

    # File -> file keeps the remove-partial-output-on-error contract.
    if is_path and out_is_path:
        stats = _prune_file(
            os.fspath(source), os.fspath(out), grammar, projector,  # type: ignore[arg-type]
            validate=opts.validate, fast=opts.fast,
            prune_attributes=opts.prune_attributes, chunk_size=opts.chunk_size,
            limits=resolved_limits, fallback=opts.fallback,
        )
        return PruneResult(stats=stats, output_path=os.fspath(out))  # type: ignore[arg-type]

    # Everything else goes through the stream core, with the source
    # opened/measured and the sink collected as needed.
    stats = PruneStats()
    if isinstance(source, str) and not is_path:
        # "replace": hostile markup may contain lone surrogates, which
        # must surface as the pipeline's structured error (if at all),
        # not as a crash in this bookkeeping line.
        stats.bytes_in = len(source.encode("utf-8", "replace"))

    def run(stream_source: "str | IO[str]", sink: IO[str]) -> None:
        _prune_stream(
            stream_source, sink, grammar, projector,
            validate=opts.validate, fast=opts.fast, chunk_size=opts.chunk_size,
            prune_attributes=opts.prune_attributes, stats=stats,
            limits=resolved_limits, fallback=opts.fallback,
        )

    def with_source(sink: IO[str]) -> None:
        if is_path:
            path = os.fspath(source)  # type: ignore[arg-type]
            stats.bytes_in = os.path.getsize(path)
            with open(path, "r", encoding="utf-8") as handle:
                run(handle, sink)
        else:
            run(source, sink)  # type: ignore[arg-type]

    if out is None:
        collector = io.StringIO()
        with_source(collector)
        return PruneResult(stats=stats, text=collector.getvalue())
    if out_is_path:
        # _open_output keeps the remove-partial-output contract and, when
        # the path cannot even be opened (unwritable), leaves any
        # pre-existing file there untouched.
        out_path = os.fspath(out)  # type: ignore[arg-type]
        with _open_output(out_path) as sink:
            with_source(sink)
        return PruneResult(stats=stats, output_path=out_path)
    with_source(out)  # type: ignore[arg-type]
    return PruneResult(stats=stats)


def _short_circuit_empty(
    source: "str | os.PathLike[str] | IO[str]",
    grammar: Grammar,
    out: "str | os.PathLike[str] | IO[str] | None",
    is_path: bool,
    out_is_path: bool,
) -> PruneResult:
    """Answer a provably-empty workload without opening the document.

    The pre-pass established that the (filtered) union projector is the
    bare root, so for any grammar-valid source the pruned markup is
    exactly ``<root/>``.  ``bytes_in`` is still measured (by size, not by
    reading); the scan counters stay zero — nothing was scanned, which is
    the whole point.
    """
    tag = grammar.tag_of(grammar.root) or grammar.root
    text = f"<{tag}/>"
    stats = PruneStats()
    stats.elements_out = 1
    stats.distinct_tags_out.add(tag)
    stats.bytes_out = len(text.encode("utf-8"))
    if is_path:
        stats.bytes_in = os.path.getsize(os.fspath(source))  # type: ignore[arg-type]
    elif isinstance(source, str):
        stats.bytes_in = len(source.encode("utf-8", "replace"))
    obs.count("static.short_circuits")
    if out is None:
        return PruneResult(stats=stats, text=text)
    if out_is_path:
        out_path = os.fspath(out)  # type: ignore[arg-type]
        with _open_output(out_path) as sink:
            sink.write(text)
        return PruneResult(stats=stats, output_path=out_path)
    out.write(text)  # type: ignore[union-attr]
    return PruneResult(stats=stats)
