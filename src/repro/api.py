"""The unified public pruning API: one :func:`prune` for every source.

Historically the streaming pruner grew one entry point per source kind —
``prune_string``, ``prune_file``, ``prune_stream`` and ``prune_events`` —
each with its own positional-flag signature.  This module collapses them
behind a single keyword-consistent facade::

    from repro import prune

    result = prune(xml_text, grammar, projector)          # text  -> text
    result = prune("in.xml", grammar, projector,
                   out="pruned.xml", validate=True)       # file  -> file
    result = prune(handle, grammar, projector, out=sink)  # stream-> stream
    for event in prune(events, grammar, projector):       # events-> events
        ...

``source`` dispatch: a string that (after leading whitespace) starts with
``<`` is XML markup, any other string or :class:`os.PathLike` is an input
path, an object with ``.read`` is a text stream, and any other iterable is
an event stream.  ``out`` mirrors this: ``None`` collects text (or, for an
event source, returns the pruned event iterator), a path writes a file
(removed again if pruning fails mid-stream), and an object with ``.write``
is streamed to.

Options shared by every form live in :class:`PruneOptions`; the common
ones (``fast``, ``validate``) are also accepted directly as keywords and
override the options object when given.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass, replace
from typing import IO, TYPE_CHECKING, Any, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (ledger uses obs)
    from repro.ledger import Ledger

from repro import obs
from repro.dtd.grammar import Grammar
from repro.errors import ReproError, StrayDocumentError, ValidationError
from repro.limits import Limits, resolve_limits
from repro.projection.stats import PruneStats
from repro.projection.streaming import (
    _open_output,
    _prune_events,
    _prune_file,
    _prune_stream,
    _prune_string,
)
from repro.xmltree.events import Event
from repro.xmltree.lexer import DEFAULT_CHUNK_SIZE

__all__ = ["PruneOptions", "PruneResult", "prune"]


@dataclass(slots=True, frozen=True)
class PruneOptions:
    """Behavioural knobs shared by every :func:`prune` form.

    * ``fast`` — use the fused scanner-level pipeline (bulk tag scanning,
      bulk skipping of pruned regions).  Output is byte-identical to the
      event pipeline; ``False`` exists for benchmarking and debugging.
    * ``validate`` — run DTD validation in the same pass (forces the event
      pipeline: the validator must see every event).
    * ``prune_attributes`` — filter attributes not kept by the projector.
    * ``chunk_size`` — read granularity for streaming sources.
    * ``limits`` — resource bounds for the pass: a
      :class:`~repro.limits.Limits`, a profile name (``"strict"``,
      ``"default"``, ``"off"``), or ``None`` for the default profile.
      Violations raise :class:`~repro.errors.LimitExceeded` /
      :class:`~repro.errors.DeadlineExceeded`.
    * ``fallback`` — let the fast path degrade gracefully to the event
      pipeline on inputs its bulk scan cannot handle (``True``, the
      default); ``False`` surfaces the refusal instead, and ``"force"``
      skips the fast attempt entirely (a test knob: it proves the
      degraded path byte-identical to the fast one).
    """

    fast: bool = True
    validate: bool = False
    prune_attributes: bool = True
    chunk_size: int = DEFAULT_CHUNK_SIZE
    limits: "Limits | str | None" = None
    fallback: "bool | str" = True

    # -- wire form (the service protocol ships options as JSON) -----------

    def to_wire(self) -> dict[str, Any]:
        """JSON-safe form: only the fields that differ from the defaults
        (``limits`` serializes as a profile name or a bounds dict)."""
        wire: dict[str, Any] = {}
        for name in ("fast", "validate", "prune_attributes", "chunk_size", "fallback"):
            value = getattr(self, name)
            if value != getattr(DEFAULT_OPTIONS, name):
                wire[name] = value
        if self.limits is not None:
            wire["limits"] = (
                self.limits if isinstance(self.limits, str) else self.limits.as_dict()
            )
        return wire

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "PruneOptions":
        """Rebuild from :meth:`to_wire` output (unknown keys rejected so a
        client/server version skew fails loudly, not silently)."""
        fields = dict(wire)
        limits = fields.pop("limits", None)
        if isinstance(limits, dict):
            limits = Limits.from_dict(limits)
        unknown = set(fields) - {
            "fast", "validate", "prune_attributes", "chunk_size", "fallback"
        }
        if unknown:
            raise ValueError(f"unknown prune option(s): {sorted(unknown)}")
        return cls(limits=limits, **fields)


DEFAULT_OPTIONS = PruneOptions()


@dataclass(slots=True)
class PruneResult:
    """What one :func:`prune` call produced.

    Exactly one of ``text`` / ``events`` / ``output_path`` is populated
    (``output_path`` also stays ``None`` when ``out`` was an open stream —
    the markup went to the caller's sink).  ``stats`` always carries the
    :class:`~repro.projection.stats.PruneStats` counters; for an event
    source they finish filling only once the iterator is exhausted.
    """

    stats: PruneStats
    text: str | None = None
    events: Iterator[Event] | None = None
    output_path: str | None = None
    #: True when the inferred-grammar escape hatch fired with
    #: ``on_stray="copy"``: the output is the source verbatim, not a
    #: prune (the document strayed from the inferred grammar).
    stray: bool = False

    def __iter__(self) -> Iterator[Event]:
        if self.events is None:
            raise TypeError("this prune() result is not an event stream")
        return self.events


def _resolve_options(
    options: PruneOptions | None,
    fast: bool | None,
    validate: bool | None,
    prune_attributes: bool | None,
    chunk_size: int | None,
    *,
    limits: "Limits | str | None" = None,
    fallback: "bool | str | None" = None,
) -> PruneOptions:
    resolved = options if options is not None else DEFAULT_OPTIONS
    overrides: dict[str, Any] = {}
    if fast is not None:
        overrides["fast"] = fast
    if validate is not None:
        overrides["validate"] = validate
    if prune_attributes is not None:
        overrides["prune_attributes"] = prune_attributes
    if chunk_size is not None:
        overrides["chunk_size"] = chunk_size
    if limits is not None:
        overrides["limits"] = limits
    if fallback is not None:
        overrides["fallback"] = fallback
    return replace(resolved, **overrides) if overrides else resolved


def _is_markup(text: str) -> bool:
    return text.lstrip()[:1] == "<"


def prune(
    source: "str | os.PathLike[str] | IO[str] | Iterable[Event]",
    grammar: Grammar,
    projector: frozenset[str] | set[str],
    *,
    out: "str | os.PathLike[str] | IO[str] | None" = None,
    options: PruneOptions | None = None,
    fast: bool | None = None,
    validate: bool | None = None,
    prune_attributes: bool | None = None,
    chunk_size: int | None = None,
    limits: "Limits | str | None" = None,
    fallback: "bool | str | None" = None,
    ledger: "Ledger | None" = None,
    provenance: dict[str, Any] | None = None,
) -> PruneResult:
    """Prune ``source`` down to the nodes the ``projector`` keeps.

    See the module docstring for the source/out dispatch table.  Returns a
    :class:`PruneResult`; pruning streams throughout, so memory stays
    O(document depth) regardless of source size.

    ``ledger`` opts this run into the attestation ledger
    (:mod:`repro.ledger`): the run is keyed by content fingerprints
    (grammar, projector + attribute flag, limits, input bytes) and its
    output hash recorded (``ledger.records``).  A key already recorded
    with retained output bytes is a *dedup hit* (``ledger.hits``): the
    stored bytes — re-verified against the recorded hash — are served
    without scanning the document, and Thm 4.5 byte-identity means they
    equal what the scan would have produced.  ``provenance`` adds
    caller-known replay context to the entry (e.g. ``{"grammar":
    {"dtd_path": ..., "root": ...}}``).  Event sources and non-rewindable
    streams cannot be content-hashed and bypass the ledger; a
    ``validate=True`` run records but is never dedup-served (validation
    must see the document).

    ``projector`` also accepts a full :class:`~repro.core.pipeline.
    AnalysisResult` (what :func:`repro.analyze` returns).  That unlocks
    the static short-circuit: a workload the satisfiability pre-pass
    proved empty (:attr:`~repro.core.pipeline.AnalysisResult.
    provably_empty`) is answered with the bare root element *without
    opening the document* — for grammar-valid sources this is exactly
    what the full pass would have produced.  (Prolog-level comments, the
    one pre-root construct the streaming pruner echoes, are dropped; and
    ``validate=True``, ``prune_attributes=False`` or an event source
    disable the shortcut, because those contracts need the real pass.)

    Pruning against an :class:`~repro.schema.infer.InferredGrammar`
    always validates (full validation against a dataguide grammar *is*
    the stray check) and applies the grammar's ``on_stray`` escape-hatch
    policy when the document lies outside the inferred language:
    ``"copy"`` emits the source verbatim (``result.stray`` is set),
    ``"error"`` raises :class:`~repro.errors.StrayDocumentError`.
    Theorem 4.5 soundness only covers accepted documents, so a stray is
    never pruned.
    """
    analysis = None
    if hasattr(projector, "projector") and hasattr(projector, "provably_empty"):
        analysis = projector
        projector = analysis.projector

    opts = _resolve_options(
        options, fast, validate, prune_attributes, chunk_size,
        limits=limits, fallback=fallback,
    )
    if getattr(grammar, "on_stray", None) is not None:
        return _prune_inferred(
            source, grammar, projector,
            analysis=analysis, out=out, opts=opts,
            ledger=ledger, provenance=provenance,
        )
    return _prune_core(
        source, grammar, projector,
        analysis=analysis, out=out, opts=opts,
        ledger=ledger, provenance=provenance,
    )


def _prune_core(
    source: "str | os.PathLike[str] | IO[str] | Iterable[Event]",
    grammar: Grammar,
    projector: frozenset[str] | set[str],
    *,
    analysis: Any,
    out: "str | os.PathLike[str] | IO[str] | None",
    opts: PruneOptions,
    ledger: "Ledger | None",
    provenance: dict[str, Any] | None,
) -> PruneResult:
    """The dispatch-and-run body shared by the plain facade and the
    inferred-grammar escape hatch (which forces validation and maps
    validation failures to its policy before/after calling this)."""
    resolved_limits = resolve_limits(opts.limits)

    # Event-stream source: transform iterator to iterator.
    if not isinstance(source, (str, os.PathLike)) and not hasattr(source, "read"):
        if not hasattr(source, "__iter__"):
            raise TypeError(f"cannot prune source of type {type(source).__name__}")
        if out is not None:
            raise ReproError(
                "prune() of an event stream returns events; "
                "serialize them explicitly instead of passing out="
            )
        # (``fast`` is moot here: event input already paid for parsing.)
        stats = PruneStats()
        events = _prune_events(
            source, grammar, projector,
            validate=opts.validate, stats=stats,
            prune_attributes=opts.prune_attributes,
            guard=resolved_limits.guard(),
        )
        return PruneResult(stats=stats, events=events)

    is_path = isinstance(source, os.PathLike) or (
        isinstance(source, str) and not _is_markup(source)
    )
    out_is_path = out is not None and not hasattr(out, "write")

    if (
        analysis is not None
        and analysis.provably_empty
        and not opts.validate
        and opts.prune_attributes
    ):
        return _short_circuit_empty(source, grammar, out, is_path, out_is_path)

    led = None
    if ledger is not None:
        led = _ledger_begin(
            ledger, source, grammar, opts, resolved_limits, provenance,
            is_path, projector,
        )
        if led is not None and not opts.validate:
            served = _serve_prune_hit(ledger, led[0], out, out_is_path)
            if served is not None:
                return served

    # File -> file keeps the remove-partial-output-on-error contract.
    if is_path and out_is_path:
        stats = _prune_file(
            os.fspath(source), os.fspath(out), grammar, projector,  # type: ignore[arg-type]
            validate=opts.validate, fast=opts.fast,
            prune_attributes=opts.prune_attributes, chunk_size=opts.chunk_size,
            limits=resolved_limits, fallback=opts.fallback,
        )
        if led is not None:
            _ledger_record(ledger, led, "prune", stats,
                           output_path=os.fspath(out))  # type: ignore[arg-type]
        return PruneResult(stats=stats, output_path=os.fspath(out))  # type: ignore[arg-type]

    # Everything else goes through the stream core, with the source
    # opened/measured and the sink collected as needed.
    stats = PruneStats()
    if isinstance(source, str) and not is_path:
        # "replace": hostile markup may contain lone surrogates, which
        # must surface as the pipeline's structured error (if at all),
        # not as a crash in this bookkeeping line.
        stats.bytes_in = len(source.encode("utf-8", "replace"))

    def run(stream_source: "str | IO[str]", sink: IO[str]) -> None:
        _prune_stream(
            stream_source, sink, grammar, projector,
            validate=opts.validate, fast=opts.fast, chunk_size=opts.chunk_size,
            prune_attributes=opts.prune_attributes, stats=stats,
            limits=resolved_limits, fallback=opts.fallback,
        )

    def with_source(sink: IO[str]) -> None:
        if is_path:
            path = os.fspath(source)  # type: ignore[arg-type]
            stats.bytes_in = os.path.getsize(path)
            with open(path, "r", encoding="utf-8") as handle:
                run(handle, sink)
        else:
            run(source, sink)  # type: ignore[arg-type]

    if out is None:
        collector = io.StringIO()
        with_source(collector)
        text = collector.getvalue()
        if led is not None:
            _ledger_record(ledger, led, "prune", stats, text=text)
        return PruneResult(stats=stats, text=text)
    if out_is_path:
        # _open_output keeps the remove-partial-output contract and, when
        # the path cannot even be opened (unwritable), leaves any
        # pre-existing file there untouched.
        out_path = os.fspath(out)  # type: ignore[arg-type]
        with _open_output(out_path) as sink:
            with_source(sink)
        if led is not None:
            _ledger_record(ledger, led, "prune", stats, output_path=out_path)
        return PruneResult(stats=stats, output_path=out_path)
    if led is not None:
        # Hash the stream output as it passes; the bytes themselves go to
        # the caller's sink, so the entry attests but cannot dedup-serve.
        from repro.ledger.canonical import HashingSink

        tee = HashingSink(tee=out)
        with_source(tee)  # type: ignore[arg-type]
        _ledger_record(ledger, led, "prune", stats,
                       output_hash=tee.hexdigest())
        return PruneResult(stats=stats)
    with_source(out)  # type: ignore[arg-type]
    return PruneResult(stats=stats)


# -- the inferred-grammar escape hatch ---------------------------------------


def _prune_inferred(
    source: "str | os.PathLike[str] | IO[str] | Iterable[Event]",
    grammar: Grammar,
    projector: frozenset[str] | set[str],
    *,
    analysis: Any,
    out: "str | os.PathLike[str] | IO[str] | None",
    opts: PruneOptions,
    ledger: "Ledger | None",
    provenance: dict[str, Any] | None,
) -> PruneResult:
    """Prune against an inferred grammar: validate-and-prune in one
    pass, and apply the grammar's ``on_stray`` policy on a violation.

    Validation is forced on because for a dataguide grammar it *is* the
    stray check: the content models are starred unions of everything
    observed in the sample, so the first event outside them (an unseen
    child, text where none was seen, an unseen attribute) is exactly the
    first point where the document strays.  Forcing validation also
    forces the event pipeline — a stray inside a bulk-skipped pruned
    region would be invisible to the fused fast path.
    """
    opts = replace(opts, validate=True)
    policy = grammar.on_stray  # type: ignore[attr-defined]

    is_stream = hasattr(source, "read")
    is_events = (
        not isinstance(source, (str, os.PathLike)) and not is_stream
    )
    if is_events:
        if policy == "copy":
            raise ReproError(
                'on_stray="copy" cannot replay an event stream; '
                "prune the markup/path/stream form instead"
            )
        result = _prune_core(
            source, grammar, projector,
            analysis=analysis, out=out, opts=opts,
            ledger=ledger, provenance=provenance,
        )
        assert result.events is not None
        result.events = _stray_guard(result.events)
        return result

    if policy == "copy":
        if is_stream:
            # Buffer so the copy fallback can replay the source.
            source = source.read()  # type: ignore[union-attr]
        out_is_stream = out is not None and hasattr(out, "write")
        # A caller-owned sink cannot be un-written, so buffer the prune
        # and only forward it once the document fully validated.
        sink = io.StringIO() if out_is_stream else out
        try:
            result = _prune_core(
                source, grammar, projector,
                analysis=analysis, out=sink, opts=opts,
                ledger=ledger, provenance=provenance,
            )
        except ValidationError:
            obs.count("schema.strays")
            return _copy_verbatim(source, out)
        if out_is_stream:
            out.write(sink.getvalue())  # type: ignore[union-attr]
        return result

    try:
        return _prune_core(
            source, grammar, projector,
            analysis=analysis, out=out, opts=opts,
            ledger=ledger, provenance=provenance,
        )
    except StrayDocumentError:
        raise
    except ValidationError as exc:
        obs.count("schema.strays")
        raise StrayDocumentError(str(exc), exc.node_id) from exc


def _stray_guard(events: Iterator[Event]) -> Iterator[Event]:
    """Re-raise lazy validation failures of an event-source prune as the
    structured stray refusal."""
    try:
        for event in events:
            yield event
    except StrayDocumentError:
        raise
    except ValidationError as exc:
        obs.count("schema.strays")
        raise StrayDocumentError(str(exc), exc.node_id) from exc


def _copy_verbatim(
    source: "str | os.PathLike[str]",
    out: "str | os.PathLike[str] | IO[str] | None",
) -> PruneResult:
    """The ``on_stray="copy"`` fallback: the source, byte for byte.  A
    verbatim copy preserves every query answer, so it is always sound —
    just not pruned.  ``result.stray`` marks it."""
    is_path = isinstance(source, os.PathLike) or not _is_markup(source)
    stats = PruneStats()
    if is_path:
        path = os.fspath(source)
        stats.bytes_in = os.path.getsize(path)
        stats.bytes_out = stats.bytes_in
        if out is not None and not hasattr(out, "write"):
            out_path = os.fspath(out)  # type: ignore[arg-type]
            with open(path, "r", encoding="utf-8") as handle:
                with _open_output(out_path) as sink:
                    while True:
                        chunk = handle.read(DEFAULT_CHUNK_SIZE)
                        if not chunk:
                            break
                        sink.write(chunk)
            return PruneResult(stats=stats, output_path=out_path, stray=True)
        with open(path, "r", encoding="utf-8") as handle:
            if out is not None:
                while True:
                    chunk = handle.read(DEFAULT_CHUNK_SIZE)
                    if not chunk:
                        break
                    out.write(chunk)  # type: ignore[union-attr]
                return PruneResult(stats=stats, stray=True)
            text = handle.read()
        return PruneResult(stats=stats, text=text, stray=True)
    text = source  # type: ignore[assignment]
    stats.bytes_in = len(text.encode("utf-8", "replace"))
    stats.bytes_out = stats.bytes_in
    if out is None:
        return PruneResult(stats=stats, text=text, stray=True)
    if not hasattr(out, "write"):
        out_path = os.fspath(out)  # type: ignore[arg-type]
        with _open_output(out_path) as sink:
            sink.write(text)
        return PruneResult(stats=stats, output_path=out_path, stray=True)
    out.write(text)  # type: ignore[union-attr]
    return PruneResult(stats=stats, stray=True)


def _short_circuit_empty(
    source: "str | os.PathLike[str] | IO[str]",
    grammar: Grammar,
    out: "str | os.PathLike[str] | IO[str] | None",
    is_path: bool,
    out_is_path: bool,
) -> PruneResult:
    """Answer a provably-empty workload without opening the document.

    The pre-pass established that the (filtered) union projector is the
    bare root, so for any grammar-valid source the pruned markup is
    exactly ``<root/>``.  ``bytes_in`` is still measured (by size, not by
    reading); the scan counters stay zero — nothing was scanned, which is
    the whole point.
    """
    tag = grammar.tag_of(grammar.root) or grammar.root
    text = f"<{tag}/>"
    stats = PruneStats()
    stats.elements_out = 1
    stats.distinct_tags_out.add(tag)
    stats.bytes_out = len(text.encode("utf-8"))
    if is_path:
        stats.bytes_in = os.path.getsize(os.fspath(source))  # type: ignore[arg-type]
    elif isinstance(source, str):
        stats.bytes_in = len(source.encode("utf-8", "replace"))
    obs.count("static.short_circuits")
    if out is None:
        return PruneResult(stats=stats, text=text)
    if out_is_path:
        out_path = os.fspath(out)  # type: ignore[arg-type]
        with _open_output(out_path) as sink:
            sink.write(text)
        return PruneResult(stats=stats, output_path=out_path)
    out.write(text)  # type: ignore[union-attr]
    return PruneResult(stats=stats)


# -- attestation-ledger plumbing (shared with the extract facade) -----------


def _ledger_begin(
    ledger: "Ledger",
    source: "str | os.PathLike[str] | IO[str]",
    grammar: Grammar,
    opts: PruneOptions,
    resolved_limits: Limits,
    provenance: dict[str, Any] | None,
    is_path: bool,
    projector: "frozenset[str] | set[str] | None",
    workload_fp: str | None = None,
) -> "tuple[tuple[str, str, str, str], dict[str, Any]] | None":
    """Fingerprint this run for the ledger: the key tuple plus the
    auto-built provenance.  ``None`` for sources that cannot be hashed
    without consuming them (open streams) — those runs bypass the ledger
    rather than recording an unverifiable entry."""
    from repro.core.cache import grammar_fingerprint, projector_fingerprint
    from repro.ledger.canonical import hash_file, hash_text, limits_fingerprint

    if is_path:
        input_hash = hash_file(os.fspath(source))  # type: ignore[arg-type]
    elif isinstance(source, str):
        input_hash = hash_text(source)
    else:
        return None
    if workload_fp is None:
        assert projector is not None
        workload_fp = projector_fingerprint(projector, opts.prune_attributes)
    key = (
        grammar_fingerprint(grammar),
        workload_fp,
        limits_fingerprint(resolved_limits),
        input_hash,
    )
    prov: dict[str, Any] = {
        "source": os.path.abspath(os.fspath(source)) if is_path else None,  # type: ignore[arg-type]
    }
    if projector is not None:
        prov["projector"] = sorted(projector)
        prov["prune_attributes"] = opts.prune_attributes
    if provenance:
        for name, value in provenance.items():
            prov.setdefault(name, value)
    return key, prov


def _serve_prune_hit(
    ledger: "Ledger",
    key: "tuple[str, str, str, str]",
    out: "str | os.PathLike[str] | IO[str] | None",
    out_is_path: bool,
) -> PruneResult | None:
    """Serve a recorded, hash-verified result instead of scanning.  The
    stats come back ``==`` to the recorded fresh run's, and the bytes are
    the recorded bytes — by Thm 4.5 byte-identity, exactly the bytes a
    fresh prune of the same (grammar, projector, input) would emit."""
    hit = ledger.fetch(key)
    if hit is None:
        return None
    entry, payload = hit
    from repro.ledger.ledger import decode_stats

    stats = decode_stats(entry.stats)
    if not isinstance(stats, PruneStats):  # pragma: no cover - defensive
        return None
    text = payload["text"]
    if out is None:
        return PruneResult(stats=stats, text=text)
    if out_is_path:
        out_path = os.fspath(out)  # type: ignore[arg-type]
        with _open_output(out_path) as sink:
            sink.write(text)
        return PruneResult(stats=stats, output_path=out_path)
    out.write(text)  # type: ignore[union-attr]
    return PruneResult(stats=stats)


def _ledger_record(
    ledger: "Ledger",
    led: "tuple[tuple[str, str, str, str], dict[str, Any]]",
    op: str,
    stats: Any,
    *,
    text: str | None = None,
    output_path: str | None = None,
    output_hash: str | None = None,
    records: "list[dict[str, Any]] | None" = None,
    extra_provenance: dict[str, Any] | None = None,
) -> None:
    """Append the attestation for a completed run (and retain the output
    bytes for dedup when they are available without a re-read cost or
    recoverable from the written file)."""
    from repro.ledger.canonical import hash_file, hash_records, hash_text
    from repro.ledger.ledger import encode_stats

    key, prov = led
    if extra_provenance:
        prov = {**prov, **extra_provenance}
    if output_hash is None:
        if text is not None:
            output_hash = hash_text(text)
        elif output_path is not None:
            output_hash = hash_file(output_path)
        else:  # pragma: no cover - callers always pass one of the three
            return
    if text is None and output_path is not None and ledger.store is not None:
        try:
            with open(output_path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:  # pragma: no cover - racing deletion
            text = None
    result: dict[str, Any] | None = None
    if text is not None:
        result = {"kind": op, "text": text}
        if records is not None:
            result["records"] = records
    ledger.record(
        op=op,
        grammar_fp=key[0],
        workload_fp=key[1],
        limits_fp=key[2],
        input_hash=key[3],
        output_hash=output_hash,
        records_hash=hash_records(records) if records is not None else None,
        stats=encode_stats(stats),
        provenance=prov,
        result=result,
    )
