"""High-level static-analysis pipeline: queries in, type projector out.

This is the main user-facing entry point of the library::

    from repro import analyze
    result = analyze(grammar, ["//book[author='Dante']/title"])
    pruned = prune_document(document, grammar, result.projector)

The pipeline chains: parse → (Sections 3.3/4.3) approximation into XPathℓ
→ (Figure 2) projector inference, one projector per extracted path, and
unions them (projectors are closed under union — Section 5 uses this for
bunches of queries).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.inference import infer_type
from repro.core.projector import ProjectorInference
from repro.dtd.grammar import Grammar
from repro.errors import AnalysisError
from repro.xpath import ast as xp
from repro.xpath.approximation import Approximation, approximate_query
from repro.xpath.parser import parse_xpath
from repro.xpath.xpathl import PathL, SimplePath

QueryLike = "str | xp.Expr | PathL"


@dataclass(slots=True)
class AnalysisResult:
    """Outcome of analysing a bunch of queries against one grammar.

    ``projector`` is the union projector covering every query;
    ``per_query`` maps each input query (by position) to its own
    projector; ``analysis_seconds`` is the wall-clock cost of the static
    analysis — the paper's claim is that this is negligible (< 0.5 s even
    for large DTDs and long paths, Section 6).
    """

    grammar: Grammar
    projector: frozenset[str]
    per_query: list[frozenset[str]] = field(default_factory=list)
    paths: list[PathL] = field(default_factory=list)
    analysis_seconds: float = 0.0

    @property
    def selectivity(self) -> float:
        """Fraction of reachable grammar names kept by the projector —
        a document-independent proxy for pruning power."""
        reachable = self.grammar.reachable_names()
        if not reachable:
            return 1.0
        return len(self.projector & reachable) / len(reachable)


def _to_pathl(query: "str | xp.Expr | PathL") -> Approximation:
    if isinstance(query, PathL):
        return Approximation(query)
    if isinstance(query, SimplePath):
        return Approximation(PathL(query.steps))
    expr = parse_xpath(query) if isinstance(query, str) else query
    if not isinstance(expr, xp.Expr):
        raise AnalysisError(f"not a query: {query!r}")
    return approximate_query(expr)


def _analyze_pathl(
    grammar: Grammar,
    inference: ProjectorInference,
    pathl: PathL,
    materialize: bool,
) -> frozenset[str]:
    """Projector for one XPathℓ path (handling the document-root anchor)."""
    from repro.xpath.xpathl import element_rooted

    from repro.xpath.ast import Axis, KindTest

    rooted = element_rooted(pathl)
    if rooted is None:
        # The path selects nothing from the document node: keeping just the
        # root is sound (the query answer is empty either way).
        return frozenset((grammar.root,))
    projector = set(inference.infer_path(rooted))
    last = rooted.steps[-1] if rooted.steps else None
    ends_in_subtree = (
        last is not None
        and last.axis is Axis.DESCENDANT_OR_SELF
        and isinstance(last.test, KindTest)
        and last.test.kind == "node"
        and last.condition is None
    )
    if materialize or ends_in_subtree:
        # Materialised results must keep whole subtrees *including
        # attributes*: the type-level descendant closure excludes attribute
        # names (the XPath descendant axis never selects them), so a path
        # ending in descendant-or-self::node — the Figure 3 materialisation
        # marker — gets the attribute-inclusive closure here.
        result_type = infer_type(grammar, rooted)
        projector |= grammar.descendant_closure(result_type.tau)
    projector.add(grammar.root)
    return frozenset(projector)


def analyze_query(
    grammar: Grammar,
    query: "str | xp.Expr | PathL",
    materialize: bool = True,
) -> frozenset[str]:
    """Infer a sound projector for a single XPath query.

    ``materialize=True`` (the default, and what any engine that *returns*
    results needs) also keeps the subtrees of the answer nodes:
    ``τ' ∪ A_E(τ'', descendant)``, end of Section 4.2.
    """
    approximation = _to_pathl(query)
    inference = ProjectorInference(grammar)
    projector = set(_analyze_pathl(grammar, inference, approximation.main, materialize))
    for side_path in approximation.absolute_paths:
        projector |= _analyze_pathl(grammar, inference, side_path, materialize=False)
    return frozenset(projector)


def analyze(
    grammar: Grammar,
    queries: "list[str | xp.Expr | PathL] | str | xp.Expr | PathL",
    materialize: bool = True,
) -> AnalysisResult:
    """Infer the union projector for one query or a bunch of queries."""
    if not isinstance(queries, list):
        queries = [queries]
    started = time.perf_counter()
    per_query: list[frozenset[str]] = []
    paths: list[PathL] = []
    for query in queries:
        approximation = _to_pathl(query)
        paths.append(approximation.main)
        per_query.append(analyze_query(grammar, query, materialize=materialize))
    union = grammar.union_projectors(per_query) if per_query else frozenset((grammar.root,))
    elapsed = time.perf_counter() - started
    result = AnalysisResult(
        grammar=grammar,
        projector=grammar.check_projector(union),
        per_query=per_query,
        paths=paths,
        analysis_seconds=elapsed,
    )
    return result


def type_of_query(grammar: Grammar, query: "str | xp.Expr | PathL") -> frozenset[str]:
    """The Figure 1 *type* of a query: names that may generate answer
    nodes (Theorem 4.4)."""
    from repro.xpath.xpathl import element_rooted

    approximation = _to_pathl(query)
    rooted = element_rooted(approximation.main)
    if rooted is None:
        return frozenset()
    return infer_type(grammar, rooted).tau


def analyze_xquery(
    grammar: Grammar,
    queries: "list[str] | str",
    rewrite: bool = True,
) -> AnalysisResult:
    """Infer the union projector for one or more XQuery queries
    (Section 5): optional pre-extraction rewriting, Figure 3 path
    extraction, one projector per extracted path, union.

    Extracted paths already encode materialisation (the ``m`` flag adds
    ``descendant-or-self::node`` where results are computed), so no
    additional materialisation pass is applied.
    """
    from repro.xquery.extraction import extract_paths
    from repro.xquery.parser import parse_xquery
    from repro.xquery.rewrite import rewrite_query

    if not isinstance(queries, list):
        queries = [queries]
    started = time.perf_counter()
    inference = ProjectorInference(grammar)
    per_query: list[frozenset[str]] = []
    all_paths: list[PathL] = []
    for query in queries:
        parsed = parse_xquery(query) if isinstance(query, str) else query
        if rewrite:
            parsed = rewrite_query(parsed)
        paths = extract_paths(parsed)
        all_paths.extend(paths)
        projector: set[str] = {grammar.root}
        for path in paths:
            projector |= _analyze_pathl(grammar, inference, path, materialize=False)
        per_query.append(frozenset(projector))
    union = grammar.union_projectors(per_query) if per_query else frozenset((grammar.root,))
    elapsed = time.perf_counter() - started
    return AnalysisResult(
        grammar=grammar,
        projector=grammar.check_projector(union),
        per_query=per_query,
        paths=all_paths,
        analysis_seconds=elapsed,
    )
