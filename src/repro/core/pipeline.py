"""High-level static-analysis pipeline: queries in, type projector out.

This is the main user-facing entry point of the library::

    from repro import analyze, prune_document
    result = analyze(grammar, ["//book[author='Dante']/title"])
    pruned = prune_document(document, interpretation, result.projector)

(``interpretation`` is the ℑ produced by :func:`repro.validate` — the
pruner needs it to map nodes to grammar names, Definition 2.4.)

The pipeline chains: parse → (Sections 3.3/4.3) approximation into XPathℓ
→ (Figure 2) projector inference, one projector per extracted path, and
unions them (projectors are closed under union — Section 5 uses this for
bunches of queries).  XQuery goes through the Section 5 rewriting and the
Figure 3 path extraction first; :func:`analyze` routes each query by the
``language`` keyword (``"auto"`` uses the token-aware
:func:`repro.querylang.looks_like_xquery`).

Each call produces an ``"analysis"`` span with one nested
``"analysis.query"`` span per query (:mod:`repro.obs`); the span data is
the source of truth for analysis timing, with
:attr:`AnalysisResult.analysis_seconds` kept as a compatibility property.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro import obs
from repro.core.inference import infer_type
from repro.core.projector import ProjectorInference
from repro.dtd.grammar import Grammar
from repro.errors import AnalysisError
from repro.querylang import looks_like_xquery
from repro.static.sat import (
    QueryVerdict,
    classify_path,
    classify_paths,
    filter_projector,
)
from repro.xpath import ast as xp
from repro.xpath.approximation import Approximation, approximate_query
from repro.xpath.parser import parse_xpath
from repro.xpath.xpathl import PathL, SimplePath

QueryLike = "str | xp.Expr | PathL"


@dataclass(slots=True)
class AnalysisResult:
    """Outcome of analysing a bunch of queries against one grammar.

    ``projector`` is the union projector covering every query;
    ``per_query`` maps each input query (by position) to its own
    projector; ``per_query_paths`` holds the XPathℓ paths extracted from
    each query (one list per query — an XQuery may contribute several);
    ``languages`` records how each query was routed.  ``span`` is the
    :class:`repro.obs.Span` of the analysis — the paper's claim is that
    its duration is negligible (< 0.5 s even for large DTDs and long
    paths, Section 6).
    """

    grammar: Grammar
    projector: frozenset[str]
    per_query: list[frozenset[str]] = field(default_factory=list)
    paths: list[PathL] = field(default_factory=list)
    per_query_paths: list[list[PathL]] = field(default_factory=list)
    languages: list[str] = field(default_factory=list)
    span: "obs.Span | None" = None
    verdicts: list[QueryVerdict] = field(default_factory=list)

    @property
    def all_unsat(self) -> bool:
        """Whether the pre-pass proved *every* query unsatisfiable.

        False when the pre-pass did not run (``analyze(static=False)``)
        or the workload was empty — absence of verdicts is not a proof.
        """
        return bool(self.verdicts) and not any(
            verdict.satisfiable for verdict in self.verdicts
        )

    @property
    def provably_empty(self) -> bool:
        """Whether pruning any grammar-valid document under this analysis
        provably yields the bare root element: every query is UNSAT *and*
        the (filtered) union projector kept nothing but the root.

        The second conjunct matters — an UNSAT query can still have a
        non-trivial projector (its path dies only past names that do
        occur), and those names must stay in the pruned output.
        """
        return self.all_unsat and self.projector == frozenset((self.grammar.root,))

    @property
    def analysis_seconds(self) -> float:
        """Wall-clock cost of the static analysis.

        Deprecated alias for ``span.seconds`` — new code should read the
        obs span (or subscribe a sink) instead; kept as a computed
        property for compatibility.
        """
        return self.span.seconds if self.span is not None else 0.0

    @property
    def selectivity(self) -> float:
        """Fraction of reachable grammar names kept by the projector —
        a document-independent proxy for pruning power."""
        reachable = self.grammar.reachable_names()
        if not reachable:
            return 1.0
        return len(self.projector & reachable) / len(reachable)


def _to_pathl(query: "str | xp.Expr | PathL") -> Approximation:
    if isinstance(query, PathL):
        return Approximation(query)
    if isinstance(query, SimplePath):
        return Approximation(PathL(query.steps))
    expr = parse_xpath(query) if isinstance(query, str) else query
    if not isinstance(expr, xp.Expr):
        raise AnalysisError(f"not a query: {query!r}")
    return approximate_query(expr)


def _analyze_pathl(
    grammar: Grammar,
    inference: ProjectorInference,
    pathl: PathL,
    materialize: bool,
) -> frozenset[str]:
    """Projector for one XPathℓ path (handling the document-root anchor)."""
    from repro.xpath.xpathl import element_rooted

    from repro.xpath.ast import Axis, KindTest

    rooted = element_rooted(pathl)
    if rooted is None:
        # The path selects nothing from the document node: keeping just the
        # root is sound (the query answer is empty either way).
        return frozenset((grammar.root,))
    projector = set(inference.infer_path(rooted))
    last = rooted.steps[-1] if rooted.steps else None
    ends_in_subtree = (
        last is not None
        and last.axis is Axis.DESCENDANT_OR_SELF
        and isinstance(last.test, KindTest)
        and last.test.kind == "node"
        and last.condition is None
    )
    if materialize or ends_in_subtree:
        # Materialised results must keep whole subtrees *including
        # attributes*: the type-level descendant closure excludes attribute
        # names (the XPath descendant axis never selects them), so a path
        # ending in descendant-or-self::node — the Figure 3 materialisation
        # marker — gets the attribute-inclusive closure here.
        result_type = infer_type(grammar, rooted)
        projector |= grammar.descendant_closure(result_type.tau)
    projector.add(grammar.root)
    return frozenset(projector)


def _query_language(query: "str | xp.Expr | PathL", language: str) -> str:
    """Resolve one query's language under the ``language`` policy."""
    if language == "auto":
        if isinstance(query, str):
            return "xquery" if looks_like_xquery(query) else "xpath"
        if isinstance(query, (PathL, SimplePath, xp.Expr)):
            return "xpath"
        # Anything else in auto mode is assumed to be a parsed XQuery
        # expression (the XQuery AST is a plain union of dataclasses).
        return "xquery"
    if language not in ("xpath", "xquery"):
        raise AnalysisError(f"unknown query language {language!r}")
    return language


def _analyze_xpath_query(
    grammar: Grammar,
    inference: ProjectorInference,
    query: "str | xp.Expr | PathL",
    materialize: bool,
) -> tuple[frozenset[str], list[PathL]]:
    """Projector + extracted paths for a single XPath query."""
    return _analyze_approximation(grammar, inference, _to_pathl(query), materialize)


def _analyze_approximation(
    grammar: Grammar,
    inference: ProjectorInference,
    approximation: Approximation,
    materialize: bool,
) -> tuple[frozenset[str], list[PathL]]:
    """Projector + paths for an already-approximated XPath query."""
    projector = set(
        _analyze_pathl(grammar, inference, approximation.main, materialize)
    )
    for side_path in approximation.absolute_paths:
        projector |= _analyze_pathl(grammar, inference, side_path, materialize=False)
    return frozenset(projector), [approximation.main]


def _analyze_xquery_query(
    grammar: Grammar,
    inference: ProjectorInference,
    query: str,
    rewrite: bool,
) -> tuple[frozenset[str], list[PathL]]:
    """Projector + extracted paths for a single XQuery query (Section 5):
    optional pre-extraction rewriting, Figure 3 path extraction, one
    projector per extracted path, union.

    Extracted paths already encode materialisation (the ``m`` flag adds
    ``descendant-or-self::node`` where results are computed), so no
    additional materialisation pass is applied.
    """
    from repro.xquery.extraction import extract_paths
    from repro.xquery.parser import parse_xquery
    from repro.xquery.rewrite import rewrite_query

    parsed = parse_xquery(query) if isinstance(query, str) else query
    if rewrite:
        parsed = rewrite_query(parsed)
    paths = extract_paths(parsed)
    projector: set[str] = {grammar.root}
    for path in paths:
        projector |= _analyze_pathl(grammar, inference, path, materialize=False)
    return frozenset(projector), list(paths)


def analyze(
    grammar: Grammar,
    queries: "list[str | xp.Expr | PathL] | str | xp.Expr | PathL",
    materialize: bool = True,
    *,
    language: str = "auto",
    rewrite: bool = True,
    static: bool = True,
) -> AnalysisResult:
    """Infer the union projector for one query or a bunch of queries.

    ``language`` routes each query: ``"xpath"``, ``"xquery"``, or
    ``"auto"`` (the default — per-query token-aware detection, so mixed
    workloads just work).  ``materialize=True`` (the default, and what any
    engine that *returns* results needs) also keeps the subtrees of XPath
    answer nodes: ``τ' ∪ A_E(τ'', descendant)``, end of Section 4.2;
    XQuery paths carry their own materialisation markers.  ``rewrite``
    applies the Section 5 XQuery rewriting before path extraction.

    ``static=True`` (the default) runs the satisfiability pre-pass
    (:mod:`repro.static.sat`) alongside inference: per-query verdicts in
    :attr:`AnalysisResult.verdicts`, a provably-redundant-work skip for
    τ-empty queries, and an occurrence filter on the union projector.
    Every static effect is byte-identity-preserving on grammar-valid
    documents — ``static=False`` yields the same pruned bytes, just
    without the verdicts (the differential tests assert exactly this).
    """
    if not isinstance(queries, list):
        queries = [queries]
    inference = ProjectorInference(grammar)
    per_query: list[frozenset[str]] = []
    per_query_paths: list[list[PathL]] = []
    languages: list[str] = []
    verdicts: list[QueryVerdict] = []
    with obs.timed("analysis", queries=len(queries), language=language) as span:
        for query in queries:
            kind = _query_language(query, language)
            label = query if isinstance(query, str) else repr(query)
            with obs.span("analysis.query", language=kind, query=label):
                if kind == "xquery":
                    projector, paths = _analyze_xquery_query(
                        grammar, inference, query, rewrite
                    )
                    if static:
                        verdicts.append(classify_paths(grammar, paths, label))
                else:
                    approximation = _to_pathl(query)
                    verdict = (
                        classify_path(grammar, approximation.main, label)
                        if static
                        else None
                    )
                    if (
                        verdict is not None
                        and verdict.tau_empty
                        and not approximation.absolute_paths
                        and all(
                            step.condition is None
                            for step in approximation.main.steps
                        )
                    ):
                        # A τ-empty *qualifier-free* path provably infers
                        # the root-only projector (dead continuations
                        # empty every rule's kept-set).  Qualified steps
                        # are excluded: Figure 2's condition rule unions
                        # the qualifier projectors whenever the step
                        # itself is live, even under a dead tail, so
                        # skipping the inference there would drop names
                        # the real inference keeps.
                        projector = frozenset((grammar.root,))
                        paths = [approximation.main]
                    else:
                        projector, paths = _analyze_approximation(
                            grammar, inference, approximation, materialize
                        )
                    if verdict is not None:
                        verdicts.append(verdict)
            languages.append(kind)
            per_query.append(projector)
            per_query_paths.append(paths)
        union = (
            grammar.union_projectors(per_query)
            if per_query
            else frozenset((grammar.root,))
        )
        if static and per_query:
            filtered = filter_projector(grammar, union)
            if len(filtered) < len(union):
                span.count("static.filtered_names", len(union) - len(filtered))
            union = filtered
        unsat = sum(1 for verdict in verdicts if not verdict.satisfiable)
        if unsat:
            span.count("static.unsat_queries", unsat)
            obs.count("static.unsat_queries", unsat)
        span.count("queries", len(queries))
        span.count("projector_size", len(union))
    return AnalysisResult(
        grammar=grammar,
        projector=grammar.check_projector(union),
        per_query=per_query,
        paths=[path for paths in per_query_paths for path in paths],
        per_query_paths=per_query_paths,
        languages=languages,
        span=span,
        verdicts=verdicts,
    )


def type_of_query(grammar: Grammar, query: "str | xp.Expr | PathL") -> frozenset[str]:
    """The Figure 1 *type* of a query: names that may generate answer
    nodes (Theorem 4.4)."""
    from repro.xpath.xpathl import element_rooted

    approximation = _to_pathl(query)
    rooted = element_rooted(approximation.main)
    if rooted is None:
        return frozenset()
    return infer_type(grammar, rooted).tau


# -- deprecated entry points --------------------------------------------------


def analyze_query(
    grammar: Grammar,
    query: "str | xp.Expr | PathL",
    materialize: bool = True,
) -> frozenset[str]:
    """Deprecated: use ``analyze(grammar, query, language="xpath")`` and
    read ``.projector``."""
    warnings.warn(
        'analyze_query is deprecated; use analyze(grammar, query, '
        'language="xpath").projector instead',
        DeprecationWarning,
        stacklevel=2,
    )
    inference = ProjectorInference(grammar)
    projector, _ = _analyze_xpath_query(grammar, inference, query, materialize)
    return projector


def analyze_xquery(
    grammar: Grammar,
    queries: "list[str] | str",
    rewrite: bool = True,
) -> AnalysisResult:
    """Deprecated: use ``analyze(grammar, queries, language="xquery")``."""
    warnings.warn(
        'analyze_xquery is deprecated; use analyze(grammar, queries, '
        'language="xquery") instead',
        DeprecationWarning,
        stacklevel=2,
    )
    return analyze(grammar, queries, language="xquery", rewrite=rewrite)
