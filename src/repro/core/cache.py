"""Projector cache and multi-query workloads (the paper's Section 4.4).

Projectors are closed under union, so a *bunch* of queries over the same
DTD is served by one pruned document: infer a projector per query, union
them, prune once.  In a workload setting (a query log, a benchmark sweep,
an engine serving repeated templates) the same queries recur against the
same grammar, and the static analysis — cheap but not free — can be
memoized outright.

:class:`ProjectorCache` memoizes per-query projector inference keyed by
``(grammar fingerprint, language, materialization, normalized query)``.
The grammar key is a content fingerprint (:func:`grammar_fingerprint`),
not object identity, so reloading the same DTD from disk still hits.
Entries are LRU-evicted.  Cache behaviour reports through
:mod:`repro.obs` (``cache.hits`` / ``cache.misses`` / ``cache.evictions``
counters); :attr:`ProjectorCache.stats` exposes the same numbers as a
:class:`CacheStats` snapshot for programmatic use.

A module-level :func:`default_cache` serves the CLI and the engine loader
so repeated invocations inside one process share inference results.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass

from repro import obs
from repro.core.pipeline import AnalysisResult, analyze
from repro.dtd.grammar import (
    AttributeProduction,
    ElementProduction,
    Grammar,
    TextProduction,
)
from repro.querylang import looks_like_xquery
from repro.static.sat import QueryVerdict, filter_projector

#: Cache-key marker naming the static pre-pass generation.  Keys carry it
#: so entries written with (or without) the satisfiability pre-pass can
#: never be confused with each other — the fingerprint of a cached
#: analysis stays honest about what produced it.
STATIC_PREPASS_TAG = "sat1"

# -- grammar fingerprinting -------------------------------------------------

_FINGERPRINTS: "weakref.WeakKeyDictionary[Grammar, str]" = weakref.WeakKeyDictionary()


def grammar_fingerprint(grammar: Grammar) -> str:
    """Content hash of a grammar: root, productions, attribute lists.

    Regexes serialize through their stable ``__str__``; production order
    is normalized, so two grammars parsed from the same DTD text —
    whether or not they are the same object — fingerprint identically.
    Memoized per grammar instance (grammars are immutable after
    construction).
    """
    try:
        return _FINGERPRINTS[grammar]
    except KeyError:
        pass
    hasher = hashlib.sha256()
    hasher.update(type(grammar).__name__.encode())
    hasher.update(b"\x00")
    hasher.update(grammar.root.encode())
    # Behaviour-bearing state outside the productions (e.g. an inferred
    # grammar's on_stray policy) must key caches, pins and the ledger too.
    salt = getattr(grammar, "fingerprint_salt", "")
    if salt:
        hasher.update(b"\x00")
        hasher.update(salt.encode())
    for name in sorted(grammar.productions):
        production = grammar.productions[name]
        if isinstance(production, ElementProduction):
            attrs = ",".join(a.name for a in production.attributes)
            line = f"E\x00{name}\x00{production.tag}\x00{production.regex}\x00{attrs}"
        elif isinstance(production, AttributeProduction):
            line = f"A\x00{name}\x00{production.owner_tag}\x00{production.attribute}"
        elif isinstance(production, TextProduction):
            line = f"T\x00{name}"
        else:  # pragma: no cover - future production kinds
            line = f"?\x00{name}\x00{production!r}"
        hasher.update(b"\x01")
        hasher.update(line.encode())
    digest = hasher.hexdigest()
    _FINGERPRINTS[grammar] = digest
    return digest


def projector_fingerprint(
    projector: "frozenset[str] | set[str]", prune_attributes: bool = True
) -> str:
    """Content hash of a projector as *workload identity*: the sorted
    name set plus the attribute-pruning flag (the one option besides the
    projector that decides which bytes a prune keeps).  Together with
    :func:`grammar_fingerprint` this keys the attestation ledger
    (:mod:`repro.ledger`) — two runs with equal fingerprints are provably
    the same pruning function applied to the same input."""
    hasher = hashlib.sha256()
    hasher.update(b"attrs\x00" if prune_attributes else b"noattrs\x00")
    for name in sorted(projector):
        hasher.update(name.encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


# -- the cache --------------------------------------------------------------


@dataclass(slots=True)
class CacheStats:
    """Point-in-time snapshot of one cache's behaviour.

    The live accounting is the :mod:`repro.obs` counter set
    (``cache.hits``/``cache.misses``/``cache.evictions``); this dataclass
    is the programmatic view :attr:`ProjectorCache.stats` returns (hits
    prove the workload path works).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


def _normalize_query(query: str) -> str:
    """Collapse insignificant whitespace so trivial re-spellings of the
    same query share a cache entry.  (Whitespace inside string literals
    is significant — leave queries containing literals untouched.)"""
    if '"' in query or "'" in query:
        return query.strip()
    return " ".join(query.split())


class ProjectorCache:
    """LRU memo of per-query projector inference across grammars.

    Concurrency-safe: every operation that touches the LRU order or the
    hit/miss accounting runs under one reentrant lock, so the projection
    service (and any threaded caller) can share :func:`default_cache`
    without corrupting the :class:`~collections.OrderedDict`.  Inference
    for a miss also runs under the lock — misses for the same workload
    recur rarely, and serializing them keeps a thundering herd of threads
    from all inferring the same projector at once.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        # key -> (per-query projector, pre-pass verdict or None).  The
        # stored projector is deliberately *unfiltered*: the occurrence
        # filter is only byte-safe applied to a whole workload's union
        # (filtering per query first can break cross-query chains), so
        # :meth:`analyze` filters after unioning.
        self._entries: "OrderedDict[tuple[str, str, str, bool, str], tuple[frozenset[str], QueryVerdict | None]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        """Snapshot of this cache's hit/miss/eviction counts."""
        with self._lock:
            return CacheStats(
                hits=self._hits, misses=self._misses, evictions=self._evictions
            )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0

    def projector_for_query(
        self,
        grammar: Grammar,
        query: str,
        materialize: bool = True,
        xquery: bool | None = None,
    ) -> frozenset[str]:
        """Infer (or recall) the projector for one query string."""
        return self.entry_for_query(grammar, query, materialize, xquery)[0]

    def entry_for_query(
        self,
        grammar: Grammar,
        query: str,
        materialize: bool = True,
        xquery: bool | None = None,
    ) -> "tuple[frozenset[str], QueryVerdict | None]":
        """The cached ``(projector, verdict)`` pair for one query string,
        inferring (projector *and* satisfiability verdict together — one
        miss pays for both) on first sight."""
        if xquery is None:
            xquery = looks_like_xquery(query)
        key = (
            STATIC_PREPASS_TAG,
            grammar_fingerprint(grammar),
            "xquery" if xquery else "xpath",
            bool(materialize),
            _normalize_query(query),
        )
        with self._lock:
            entries = self._entries
            cached = entries.get(key)
            if cached is not None:
                self._hits += 1
                obs.count("cache.hits")
                entries.move_to_end(key)
                return cached
            self._misses += 1
            obs.count("cache.misses")
            result = analyze(
                grammar, query,
                materialize=materialize,
                language="xquery" if xquery else "xpath",
            )
            entry = (
                result.per_query[0],
                result.verdicts[0] if result.verdicts else None,
            )
            entries[key] = entry
            if len(entries) > self.max_entries:
                entries.popitem(last=False)
                self._evictions += 1
                obs.count("cache.evictions")
            return entry

    def projector_for_spec(self, grammar: Grammar, spec) -> frozenset[str]:
        """Infer (or recall) the union projector an extract spec needs.

        ``spec`` is duck-typed (anything with ``fingerprint()`` and
        ``projector_queries()`` — in practice an
        :class:`~repro.extract.spec.ExtractSpec`; the indirection keeps
        this module free of an extract import).  The cache key is the
        spec's *content fingerprint* under the ``"extract"`` language
        tag, so re-declaring an identical workload — same row path, same
        fields in the same order — skips the whole analysis.
        """
        key = (
            STATIC_PREPASS_TAG,
            grammar_fingerprint(grammar),
            "extract",
            True,
            spec.fingerprint(),
        )
        with self._lock:
            entries = self._entries
            cached = entries.get(key)
            if cached is not None:
                self._hits += 1
                obs.count("cache.hits")
                entries.move_to_end(key)
                return cached[0]
            self._misses += 1
            obs.count("cache.misses")
            per_query = [
                analyze(
                    grammar, query, materialize=materialize, language="xpath"
                ).per_query[0]
                for query, materialize in spec.projector_queries()
            ]
            projector = grammar.check_projector(
                grammar.union_projectors(per_query)
            )
            entries[key] = (projector, None)
            if len(entries) > self.max_entries:
                entries.popitem(last=False)
                self._evictions += 1
                obs.count("cache.evictions")
            return projector

    def analyze(
        self,
        grammar: Grammar,
        queries: "list[str] | str",
        materialize: bool = True,
    ) -> AnalysisResult:
        """Union projector for a (mixed XPath/XQuery) workload, served
        from the cache where possible — the Section 4.4 "bunch of
        queries, one pruning" deployment.

        Satisfiability verdicts ride along on the cached entries, and the
        union projector gets the same occurrence filter
        :func:`repro.core.pipeline.analyze` applies — cached and fresh
        analyses of one workload are indistinguishable, verdicts and all.
        """
        if isinstance(queries, str):
            queries = [queries]
        with obs.timed("analysis", queries=len(queries), cached=True) as span:
            per_query: list[frozenset[str]] = []
            verdicts: list[QueryVerdict] = []
            for query in queries:
                projector, verdict = self.entry_for_query(
                    grammar, query, materialize=materialize
                )
                per_query.append(projector)
                if verdict is not None:
                    verdicts.append(verdict)
            union = (
                grammar.union_projectors(per_query)
                if per_query
                else frozenset((grammar.root,))
            )
            if per_query:
                union = filter_projector(grammar, union)
            unsat = sum(1 for verdict in verdicts if not verdict.satisfiable)
            if unsat:
                span.count("static.unsat_queries", unsat)
                obs.count("static.unsat_queries", unsat)
            span.count("queries", len(queries))
            span.count("projector_size", len(union))
        return AnalysisResult(
            grammar=grammar,
            projector=grammar.check_projector(union),
            per_query=per_query,
            span=span,
            verdicts=verdicts,
        )


_DEFAULT_CACHE = ProjectorCache()


def default_cache() -> ProjectorCache:
    """The process-wide cache shared by the CLI and the engine loader."""
    return _DEFAULT_CACHE


def resolve_projector(
    grammar: Grammar,
    queries_or_projector: "frozenset[str] | set[str] | list[str] | str",
    cache: ProjectorCache | None = None,
    materialize: bool = True,
) -> frozenset[str]:
    """Normalize the "queries or projector" argument batch entry points
    accept: an already-inferred projector (any set of names) is checked
    and frozen; a query string or list is analyzed — through ``cache``,
    or the process-wide default — into the union projector.

    This is the parent-side half of the Section 4.4 amortization: callers
    fanning one workload across many documents (or worker processes)
    resolve the projector exactly once here and ship the frozen set.
    """
    if isinstance(queries_or_projector, (set, frozenset)):
        return grammar.check_projector(frozenset(queries_or_projector))
    if cache is None:
        cache = default_cache()
    return cache.analyze(grammar, queries_or_projector, materialize=materialize).projector


def resolve_spec_projector(
    grammar: Grammar,
    spec,
    cache: ProjectorCache | None = None,
) -> frozenset[str]:
    """The extract-spec counterpart of :func:`resolve_projector`: infer
    the spec's union projector through ``cache`` (or the process-wide
    default), keyed by the spec's content fingerprint."""
    if cache is None:
        cache = default_cache()
    return cache.projector_for_spec(grammar, spec)
