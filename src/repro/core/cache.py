"""Projector cache and multi-query workloads (the paper's Section 4.4).

Projectors are closed under union, so a *bunch* of queries over the same
DTD is served by one pruned document: infer a projector per query, union
them, prune once.  In a workload setting (a query log, a benchmark sweep,
an engine serving repeated templates) the same queries recur against the
same grammar, and the static analysis — cheap but not free — can be
memoized outright.

:class:`ProjectorCache` memoizes per-query projector inference keyed by
``(grammar fingerprint, language, materialization, normalized query)``.
The grammar key is a content fingerprint (:func:`grammar_fingerprint`),
not object identity, so reloading the same DTD from disk still hits.
Entries are LRU-evicted; :class:`CacheStats` makes hit rates observable.

A module-level :func:`default_cache` serves the CLI and the engine loader
so repeated invocations inside one process share inference results.
"""

from __future__ import annotations

import hashlib
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.pipeline import (
    AnalysisResult,
    analyze_query,
    analyze_xquery,
)
from repro.dtd.grammar import (
    AttributeProduction,
    ElementProduction,
    Grammar,
    TextProduction,
)
from repro.querylang import looks_like_xquery

# -- grammar fingerprinting -------------------------------------------------

_FINGERPRINTS: "weakref.WeakKeyDictionary[Grammar, str]" = weakref.WeakKeyDictionary()


def grammar_fingerprint(grammar: Grammar) -> str:
    """Content hash of a grammar: root, productions, attribute lists.

    Regexes serialize through their stable ``__str__``; production order
    is normalized, so two grammars parsed from the same DTD text —
    whether or not they are the same object — fingerprint identically.
    Memoized per grammar instance (grammars are immutable after
    construction).
    """
    try:
        return _FINGERPRINTS[grammar]
    except KeyError:
        pass
    hasher = hashlib.sha256()
    hasher.update(type(grammar).__name__.encode())
    hasher.update(b"\x00")
    hasher.update(grammar.root.encode())
    for name in sorted(grammar.productions):
        production = grammar.productions[name]
        if isinstance(production, ElementProduction):
            attrs = ",".join(a.name for a in production.attributes)
            line = f"E\x00{name}\x00{production.tag}\x00{production.regex}\x00{attrs}"
        elif isinstance(production, AttributeProduction):
            line = f"A\x00{name}\x00{production.owner_tag}\x00{production.attribute}"
        elif isinstance(production, TextProduction):
            line = f"T\x00{name}"
        else:  # pragma: no cover - future production kinds
            line = f"?\x00{name}\x00{production!r}"
        hasher.update(b"\x01")
        hasher.update(line.encode())
    digest = hasher.hexdigest()
    _FINGERPRINTS[grammar] = digest
    return digest


# -- the cache --------------------------------------------------------------


@dataclass(slots=True)
class CacheStats:
    """Observable cache behaviour (hits prove the workload path works)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


def _normalize_query(query: str) -> str:
    """Collapse insignificant whitespace so trivial re-spellings of the
    same query share a cache entry.  (Whitespace inside string literals
    is significant — leave queries containing literals untouched.)"""
    if '"' in query or "'" in query:
        return query.strip()
    return " ".join(query.split())


class ProjectorCache:
    """LRU memo of per-query projector inference across grammars."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[tuple[str, str, bool, str], frozenset[str]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.stats = CacheStats()

    def projector_for_query(
        self,
        grammar: Grammar,
        query: str,
        materialize: bool = True,
        xquery: bool | None = None,
    ) -> frozenset[str]:
        """Infer (or recall) the projector for one query string."""
        if xquery is None:
            xquery = looks_like_xquery(query)
        key = (
            grammar_fingerprint(grammar),
            "xquery" if xquery else "xpath",
            bool(materialize),
            _normalize_query(query),
        )
        entries = self._entries
        cached = entries.get(key)
        if cached is not None:
            self.stats.hits += 1
            entries.move_to_end(key)
            return cached
        self.stats.misses += 1
        if xquery:
            projector = analyze_xquery(grammar, [query]).projector
        else:
            projector = analyze_query(grammar, query, materialize=materialize)
        entries[key] = projector
        if len(entries) > self.max_entries:
            entries.popitem(last=False)
            self.stats.evictions += 1
        return projector

    def analyze(
        self,
        grammar: Grammar,
        queries: "list[str] | str",
        materialize: bool = True,
    ) -> AnalysisResult:
        """Union projector for a (mixed XPath/XQuery) workload, served
        from the cache where possible — the Section 4.4 "bunch of
        queries, one pruning" deployment."""
        if isinstance(queries, str):
            queries = [queries]
        started = time.perf_counter()
        per_query = [
            self.projector_for_query(grammar, query, materialize=materialize)
            for query in queries
        ]
        union = (
            grammar.union_projectors(per_query)
            if per_query
            else frozenset((grammar.root,))
        )
        elapsed = time.perf_counter() - started
        return AnalysisResult(
            grammar=grammar,
            projector=grammar.check_projector(union),
            per_query=per_query,
            analysis_seconds=elapsed,
        )


_DEFAULT_CACHE = ProjectorCache()


def default_cache() -> ProjectorCache:
    """The process-wide cache shared by the CLI and the engine loader."""
    return _DEFAULT_CACHE
