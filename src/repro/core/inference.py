"""The XPathℓ type system of Figure 1: ``Σ ⊢E Path : Σ′``.

An environment ``Σ = (τ, κ)`` pairs the current *type* (names the current
node set may have) with a *context* (names encountered on the traversal —
the device that keeps upward axes precise, Section 4.1).  The invariants,
preserved by every rule:

* well-formedness: ``κ ⊆ τ ∪ A_E(τ, ancestor)``;
* ``τ ⊆ κ`` (the current names are part of the traversal).

The judgement is deterministic and total on XPathℓ; see
:func:`infer_type`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import EMPTY, NameSet, TypeOperators
from repro.dtd.grammar import Grammar
from repro.xpath.ast import Axis, KindTest, NodeTest
from repro.xpath.xpathl import LStep, PathL, SimplePath


@dataclass(frozen=True, slots=True)
class Env:
    """``Σ = (τ, κ)``."""

    tau: NameSet
    kappa: NameSet

    @property
    def is_empty(self) -> bool:
        return not self.tau

    def __iter__(self):
        return iter((self.tau, self.kappa))


def initial_env(grammar: Grammar) -> Env:
    """``({X}, {X})`` — the judgement's starting point (Theorem 4.4)."""
    return Env(frozenset((grammar.root,)), frozenset((grammar.root,)))


_EMPTY_ENV = Env(EMPTY, EMPTY)

_NODE = KindTest("node")


def _is_node_test(test: NodeTest) -> bool:
    return isinstance(test, KindTest) and test.kind == "node"


class TypeInference:
    """Figure 1, bound to one grammar, with memoisation."""

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self.ops = TypeOperators(grammar)
        self._memo: dict[tuple, Env] = {}

    # -- public ----------------------------------------------------------------

    def infer(self, env: Env, steps: tuple[LStep, ...]) -> Env:
        """``env ⊢E steps : result`` (rule 7 composes steps left to
        right)."""
        for step in steps:
            if env.is_empty:
                return _EMPTY_ENV
            env = self._infer_step(env, step)
        return env

    def infer_path(self, env: Env, path: PathL | SimplePath) -> Env:
        return self.infer(env, path.steps)

    # -- one step ----------------------------------------------------------------

    def _infer_step(self, env: Env, step: LStep) -> Env:
        key = (env.tau, env.kappa, step)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._infer_step_uncached(env, step)
        if result.is_empty:
            # Normalise dead environments so well-formedness (κ ⊆ τ ∪
            # A_E(τ, ancestor)) holds trivially.
            result = _EMPTY_ENV
        self._memo[key] = result
        return result

    def _infer_step_uncached(self, env: Env, step: LStep) -> Env:
        ops = self.ops
        # Rule 6: Axis::Test[Cond]  ≡  Axis::Test / self::node[Cond]
        if step.condition is not None and not (step.axis is Axis.SELF and _is_node_test(step.test)):
            bare = LStep(step.axis, step.test)
            conditional = LStep(Axis.SELF, _NODE, step.condition)
            return self._infer_step(self._infer_step(env, bare), conditional)
        # Rule 5: Axis::Test  ≡  Axis::node / self::Test   (Axis ≠ self)
        if step.axis is not Axis.SELF and not _is_node_test(step.test):
            axis_step = LStep(step.axis, _NODE)
            test_step = LStep(Axis.SELF, step.test)
            return self._infer_step(self._infer_step(env, axis_step), test_step)

        if step.axis is Axis.SELF:
            if step.condition is not None:
                return self._infer_condition(env, step.condition)
            # Rule 3: self::Test.
            tau = ops.test(env.tau, step.test)
            return Env(tau, ops.context_restrict(env.kappa, tau))

        # Rules 1 and 2: Axis::node for a non-self axis.
        if step.axis.is_upward:
            tau = ops.axis(env.tau, step.axis) & env.kappa
            return Env(tau, ops.context_restrict(env.kappa, tau))
        tau = ops.axis(env.tau, step.axis)
        # κ ∪ τ′ alone can violate well-formedness: a childless name in κ
        # (a text name, an empty element) is neither in τ′ nor an ancestor
        # of it, yet would stay in the context forever.  Restricting to
        # chains that end in τ′ is sound — upward rules only ever take
        # κ ∩ A_E(τ, ancestor), and a type-level non-ancestor of τ′ can
        # never be a document-level ancestor of a τ′ node.
        return Env(tau, ops.context_restrict(env.kappa | tau, tau))

    def _infer_condition(self, env: Env, condition: tuple[SimplePath, ...]) -> Env:
        """Rule 4: ``self::node[P1 or ... or Pn]`` keeps the names for
        which at least one disjunct may yield a non-empty result."""
        ops = self.ops
        kept: set[str] = set()
        for name in env.tau:
            singleton = frozenset((name,))
            local = Env(singleton, ops.context_restrict(env.kappa, singleton))
            for disjunct in condition:
                if not self.infer(local, disjunct.steps).is_empty:
                    kept.add(name)
                    break
        tau = frozenset(kept)
        return Env(tau, ops.context_restrict(env.kappa, tau))


def infer_type(grammar: Grammar, path: PathL | SimplePath, env: Env | None = None) -> Env:
    """One-shot Figure 1 judgement from ``({X}, {X})`` (or ``env``)."""
    inference = TypeInference(grammar)
    return inference.infer_path(env if env is not None else initial_env(grammar), path)
