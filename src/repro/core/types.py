"""Single-step typing — the paper's ``A_E`` and ``T_E`` (Definition 4.1).

``A_E(τ, Axis)`` maps a set of names through an axis at the type level;
``T_E(τ, Test)`` filters a set of names by a node test.  Lemma 4.2 states
their soundness: if ``ℑ(S) ⊆ τ`` then ``ℑ([[Axis]](S)) ⊆ A_E(τ, Axis)``
and ``ℑ(S :: Test) ⊆ T_E(τ, Test)``.

Attributes (our data-model extension, matching the paper's implementation)
ride along: the ``attribute`` axis maps to attribute names; the child /
descendant axes never produce them (XPath's child axis does not select
attributes).
"""

from __future__ import annotations

from repro.dtd.grammar import (
    AttributeProduction,
    ElementProduction,
    Grammar,
    TextProduction,
)
from repro.errors import AnalysisError
from repro.xpath.ast import Axis, KindTest, NameTest, NodeTest

NameSet = frozenset[str]

EMPTY: NameSet = frozenset()


def _child_descendants(grammar: Grammar, name: str, cache: dict[str, NameSet]) -> NameSet:
    """Transitive closure of the *child* relation (attributes excluded) —
    the type-level descendant axis."""
    cached = cache.get(name)
    if cached is not None:
        return cached
    seen: set[str] = set()
    frontier = list(grammar.children_of(name))
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        frontier.extend(grammar.children_of(current))
    result = frozenset(seen)
    cache[name] = result
    return result


class TypeOperators:
    """``A_E`` / ``T_E`` bound to one grammar, with closure caches."""

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self._descendant_cache: dict[str, NameSet] = {}
        self._ancestor_cache: dict[str, NameSet] = {}

    # -- A_E -----------------------------------------------------------------

    def axis(self, names: NameSet, axis: Axis) -> NameSet:
        """``A_E(τ, Axis)`` for the XPathℓ axes."""
        grammar = self.grammar
        if axis is Axis.SELF:
            return names
        if axis is Axis.CHILD:
            result: set[str] = set()
            for name in names:
                result |= grammar.children_of(name)
            return frozenset(result)
        if axis is Axis.DESCENDANT:
            result = set()
            for name in names:
                result |= _child_descendants(grammar, name, self._descendant_cache)
            return frozenset(result)
        if axis is Axis.DESCENDANT_OR_SELF:
            return names | self.axis(names, Axis.DESCENDANT)
        if axis is Axis.PARENT:
            result = set()
            for name in names:
                result |= grammar.parents_of(name)
            return frozenset(result)
        if axis is Axis.ANCESTOR:
            result = set()
            for name in names:
                result |= self._ancestors(name)
            return frozenset(result)
        if axis is Axis.ANCESTOR_OR_SELF:
            return names | self.axis(names, Axis.ANCESTOR)
        if axis is Axis.ATTRIBUTE:
            result = set()
            for name in names:
                result |= grammar.attributes_of(name)
            return frozenset(result)
        raise AnalysisError(f"axis {axis.value} is not typable (rewrite it first)")

    def _ancestors(self, name: str) -> NameSet:
        cached = self._ancestor_cache.get(name)
        if cached is not None:
            return cached
        seen: set[str] = set()
        frontier = list(self.grammar.parents_of(name))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.grammar.parents_of(current))
        result = frozenset(seen)
        self._ancestor_cache[name] = result
        return result

    # -- T_E -----------------------------------------------------------------

    def test(self, names: NameSet, test: NodeTest) -> NameSet:
        """``T_E(τ, Test)``."""
        grammar = self.grammar
        if isinstance(test, KindTest):
            if test.kind == "node":
                return names
            if test.kind == "text":
                return frozenset(
                    name for name in names
                    if isinstance(grammar.production(name), TextProduction)
                )
            if test.kind == "element":
                return frozenset(
                    name for name in names
                    if isinstance(grammar.production(name), ElementProduction)
                )
            # comment() / processing-instruction() select nothing typable.
            return EMPTY
        assert isinstance(test, NameTest)
        if test.name is None:  # '*': elements (or attributes on @*)
            return frozenset(
                name for name in names
                if not isinstance(grammar.production(name), TextProduction)
            )
        matched: set[str] = set()
        for name in names:
            production = grammar.production(name)
            if isinstance(production, ElementProduction) and production.tag == test.name:
                matched.add(name)
            elif isinstance(production, AttributeProduction) and production.attribute == test.name:
                matched.add(name)
        return frozenset(matched)

    # -- context helper --------------------------------------------------------

    def context_restrict(self, kappa: NameSet, tau: NameSet) -> NameSet:
        """``κ ∩ (τ ∪ A_E(τ, ancestor))`` — the context update used by the
        ``self::Test`` and upward rules of Figure 1: keep only context
        names lying on chains that end in ``τ``."""
        return kappa & (tau | self.axis(tau, Axis.ANCESTOR))
