"""The Section 6 depth heuristic, via depth unfolding.

The paper's implementation "keeps track of the depth of elements in the
paths in order to improve pruning, especially in presence of recursive
DTDs (this latter heuristics could be embedded in the formal treatment,
but we preferred to keep it simpler)".

We embed it without new inference machinery: *unfold the grammar by
depth*.  Each name ``Y`` becomes the family ``(Y, 0) … (Y, K-1)`` plus a
``(Y, ⊤)`` bucket for depths ≥ K; the edge ``Y ⇒ Z`` becomes
``(Y, d) ⇒ (Z, d+1)`` (saturating at ⊤).  The result is a *single-type*
tree grammar — two depths of one tag are distinct names resolved by parent
context — so validation, the Figures 1/2 inference, and both pruners run
unchanged on it, and Theorem 4.5 on the unfolded grammar *is* the
soundness of depth-aware pruning.

The payoff is on recursive schemas: for the TREE use case
(``section`` nests in ``section``), the query ``/book/section/title``
keeps only depth-correct sections — the plain name projector keeps them
at every depth.

    unfolded = depth_unfolded_grammar(grammar, max_depth=8)
    interpretation = validate(document, unfolded)
    projector = analyze(unfolded, [query]).projector
    pruned = prune_document(document, interpretation, projector)
"""

from __future__ import annotations

from repro.dtd.grammar import (
    AttributeProduction,
    ElementProduction,
    Grammar,
    Production,
    TextProduction,
    attribute_name,
)
from repro.dtd.regex import (
    Alt,
    Atom,
    Empty,
    Epsilon,
    Opt,
    Plus,
    Regex,
    Seq,
    Star,
)
from repro.dtd.singletype import SingleTypeGrammar

#: Separator between the base name and the depth tag.  '§' (§) cannot
#: appear in element tags, so unfolded names never collide with real ones.
DEPTH_SEPARATOR = "§"
TOP = "inf"


def depth_name(name: str, depth: "int | str") -> str:
    """The unfolded name for ``name`` at ``depth`` (an int or ``TOP``)."""
    return f"{name}{DEPTH_SEPARATOR}{depth}"


def base_name(unfolded: str) -> str:
    """Invert :func:`depth_name`."""
    return unfolded.rsplit(DEPTH_SEPARATOR, 1)[0]


def depth_of(unfolded: str) -> "int | str":
    token = unfolded.rsplit(DEPTH_SEPARATOR, 1)[1]
    # Attribute names carry a '@attr' suffix after the depth tag.
    token = token.split("@", 1)[0]
    return TOP if token == TOP else int(token)


def _rename(regex: Regex, child_depth: "int | str") -> Regex:
    if isinstance(regex, Atom):
        return Atom(depth_name(regex.name, child_depth))
    if isinstance(regex, (Empty, Epsilon)):
        return regex
    if isinstance(regex, Seq):
        return Seq([_rename(item, child_depth) for item in regex.items])
    if isinstance(regex, Alt):
        return Alt([_rename(item, child_depth) for item in regex.items])
    if isinstance(regex, Star):
        return Star(_rename(regex.inner, child_depth))
    if isinstance(regex, Plus):
        return Plus(_rename(regex.inner, child_depth))
    if isinstance(regex, Opt):
        return Opt(_rename(regex.inner, child_depth))
    raise TypeError(f"unknown regex node {regex!r}")


def depth_unfolded_grammar(grammar: Grammar, max_depth: int = 8) -> SingleTypeGrammar:
    """Unfold ``grammar`` by depth (0 … max_depth-1, then the ⊤ bucket).

    Every document valid for ``grammar`` is valid for the unfolded grammar
    (contents are isomorphic level by level), and its interpretation maps
    each node to ``(name, its depth)`` — which is exactly the extra
    information the depth heuristic prunes with.
    """
    if max_depth < 1:
        raise ValueError("max_depth must be at least 1")
    depths: list["int | str"] = list(range(max_depth)) + [TOP]

    def child_depth(depth: "int | str") -> "int | str":
        if depth == TOP:
            return TOP
        return depth + 1 if depth + 1 < max_depth else TOP

    productions: list[Production] = []
    for name, production in grammar.productions.items():
        for depth in depths:
            unfolded = depth_name(name, depth)
            if isinstance(production, ElementProduction):
                productions.append(
                    ElementProduction(
                        unfolded,
                        production.tag,
                        _rename(production.regex, child_depth(depth)),
                        production.attributes,
                    )
                )
                for attr in production.attributes:
                    productions.append(
                        AttributeProduction(
                            attribute_name(unfolded, attr.name),
                            production.tag,
                            attr.name,
                        )
                    )
            elif isinstance(production, TextProduction):
                productions.append(TextProduction(unfolded))
            # AttributeProductions of the base grammar are re-derived above
            # (their names key on the unfolded owner).

    return SingleTypeGrammar(depth_name(grammar.root, 0), productions)


def fold_names(projector: frozenset[str]) -> dict[str, set]:
    """Summarise an unfolded projector as ``base name -> kept depths``
    (for inspection and reports)."""
    folded: dict[str, set] = {}
    for unfolded in projector:
        folded.setdefault(base_name(unfolded), set()).add(depth_of(unfolded))
    return folded
