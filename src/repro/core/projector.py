"""Projector inference — the ``Σ ⊩E P : τ`` rules of Figure 2.

Given an XPathℓ path and a grammar, infer the set of names whose nodes
must survive pruning for the path to evaluate identically on the pruned
document (Theorem 4.5: soundness; Theorem 4.7: completeness on
\\*-guarded, non-recursive, parent-unambiguous grammars and
strongly-specified paths).

Shape of the algorithm (mirroring the figure):

* *Base rules* handle a final step with and without a condition;
* *Encoded rules* normalise every non-final step into one of the three
  primitive forms ``self::Test``, ``self::node[Cond]``, ``Axis::node``;
* *Primitive rules* use the Figure 1 type system both to advance the
  environment and to *filter out* names whose continuation type is empty —
  the key precision device for ``descendant``/``ancestor`` steps.

The ``-or-self`` axes (not in the paper's formal core but in its
implementation) are handled by the set equation
``[[axis-or-self::node/P]] = [[P]] ∪ [[axis::node/P]]``.
"""

from __future__ import annotations

from repro.core.inference import Env, TypeInference, initial_env
from repro.core.types import EMPTY, NameSet
from repro.dtd.grammar import Grammar
from repro.errors import AnalysisError
from repro.xpath.ast import Axis, KindTest, NodeTest
from repro.xpath.xpathl import LStep, PathL, SimplePath

_NODE = KindTest("node")


def _is_node_test(test: NodeTest) -> bool:
    return isinstance(test, KindTest) and test.kind == "node"


class ProjectorInference:
    """Figure 2, bound to one grammar, with memoisation."""

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self.types = TypeInference(grammar)
        self._memo: dict[tuple, NameSet] = {}

    # -- public ------------------------------------------------------------

    def infer(self, env: Env, steps: tuple[LStep, ...]) -> NameSet:
        """``env ⊩E steps : τ``."""
        if not steps:
            # An empty continuation needs nothing beyond what the caller
            # already collected.
            return EMPTY
        if not env.tau:
            return EMPTY
        if len(env.tau) > 1:
            # Decomposition rule: union over singleton sub-environments
            # (same context).
            result: set[str] = set()
            for name in sorted(env.tau):
                result |= self.infer(Env(frozenset((name,)), env.kappa), steps)
            return frozenset(result)
        key = (env.tau, env.kappa, steps)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        computed = self._infer_singleton(env, steps)
        self._memo[key] = computed
        return computed

    def infer_path(self, path: PathL | SimplePath, env: Env | None = None) -> NameSet:
        """Top-level entry: the starting names (normally the grammar root)
        are always part of the result, so even a statically-dead path
        yields a usable projector ({X} — prune everything)."""
        if env is None:
            env = initial_env(self.grammar)
        return self.infer(env, path.steps) | env.tau

    # -- the rules (singleton τ) ------------------------------------------------

    def _infer_singleton(self, env: Env, steps: tuple[LStep, ...]) -> NameSet:
        step, rest = steps[0], steps[1:]

        # ---- base rules (final step) ----
        if not rest:
            if step.condition is None:
                # Σ ⊢ Step : (τ, κ)  ⟹  Σ ⊩ Step : τ ∪ κ
                result_env = self.types.infer(env, (step,))
                return result_env.tau | result_env.kappa
            # Σ ⊩ Step[Cond]/self::node : τ  ⟹  Σ ⊩ Step[Cond] : τ
            return self.infer(env, (step, LStep(Axis.SELF, _NODE)))

        # ---- encoded rules ----
        # Axis::Test[Cond]/P  ⟹  Axis::Test/self::node[Cond]/P
        if step.condition is not None and not (step.axis is Axis.SELF and _is_node_test(step.test)):
            bare = LStep(step.axis, step.test)
            conditional = LStep(Axis.SELF, _NODE, step.condition)
            return self.infer(env, (bare, conditional) + rest)
        # Axis::Test/P  ⟹  Axis::node/self::Test/P   (Axis ≠ self, Test ≠ node)
        if step.axis is not Axis.SELF and not _is_node_test(step.test):
            return self.infer(env, (LStep(step.axis, _NODE), LStep(Axis.SELF, step.test)) + rest)

        # ---- -or-self unfolding:  [[axis-or-self::node/P]] = [[P]] ∪ [[axis::node/P]]
        if step.axis is Axis.DESCENDANT_OR_SELF:
            return self.infer(env, rest) | self.infer(env, (LStep(Axis.DESCENDANT, _NODE),) + rest)
        if step.axis is Axis.ANCESTOR_OR_SELF:
            return self.infer(env, rest) | self.infer(env, (LStep(Axis.ANCESTOR, _NODE),) + rest)

        # ---- primitive rules ----
        if step.axis is Axis.SELF:
            if step.condition is not None:
                return self._rule_conditional_self(env, step, rest)
            return self._rule_self_test(env, step, rest)
        if step.axis in (Axis.CHILD, Axis.PARENT, Axis.ATTRIBUTE):
            return self._rule_one_step_axis(env, step.axis, rest)
        if step.axis is Axis.DESCENDANT:
            return self._rule_recursive_axis(env, Axis.DESCENDANT, Axis.CHILD, rest)
        if step.axis is Axis.ANCESTOR:
            return self._rule_recursive_axis(env, Axis.ANCESTOR, Axis.PARENT, rest)
        raise AnalysisError(f"axis {step.axis.value} is outside XPathℓ")

    def _rule_self_test(self, env: Env, step: LStep, rest: tuple[LStep, ...]) -> NameSet:
        # ({Y}, κ) ⊢ self::Test : Σ    Σ ⊩ P : τ
        # ----------------------------------------
        # ({Y}, κ) ⊩ self::Test/P : {Y} ∪ τ
        sigma = self.types.infer(env, (step,))
        return env.tau | self.infer(sigma, rest)

    def _rule_conditional_self(self, env: Env, step: LStep, rest: tuple[LStep, ...]) -> NameSet:
        # ({Y}, κ) ⊢ self::node[P1 or ... or Pn] : Σ
        # Σ ⊩ P : τ      Σ ⊩ Pi : τi
        # --------------------------------------------------
        # ({Y}, κ) ⊩ self::node[...]/P : {Y} ∪ τ ∪ τ1 ∪ ... ∪ τn
        assert step.condition is not None
        sigma = self.types.infer(env, (step,))
        result = set(env.tau)
        result |= self.infer(sigma, rest)
        for disjunct in step.condition:
            result |= self.infer(sigma, disjunct.steps)
        return frozenset(result)

    def _rule_one_step_axis(self, env: Env, axis: Axis, rest: tuple[LStep, ...]) -> NameSet:
        # ({Y}, κ) ⊢ Axis::node : ({X1..Xn}, κ')
        # ({Xi}, κ') ⊢ P : Σi       (τ, κ') ⊩ P : τ'
        # --------------------------------------------   τ = {Xi | Σi_τ ≠ ∅}
        # ({Y}, κ) ⊩ Axis::node/P : {Y} ∪ τ ∪ τ'
        sigma = self.types.infer(env, (LStep(axis, _NODE),))
        kept = frozenset(
            name for name in sigma.tau
            if not self.types.infer(Env(frozenset((name,)), sigma.kappa), rest).is_empty
        )
        tail = self.infer(Env(kept, sigma.kappa), rest)
        return env.tau | kept | tail

    def _rule_recursive_axis(
        self, env: Env, axis: Axis, one_step: Axis, rest: tuple[LStep, ...]
    ) -> NameSet:
        # Figure 2, last two rules (desc / ancs):
        # ({Y}, κ) ⊢ axis::node : ({X1..Xn}, κ')
        # ({Xi}, κ') ⊢ axis::node/P : Σi
        # τ = {Xi | Σi_τ ≠ ∅} ∪ {Y}
        # (τ, κ') ⊩ one_step::node/P : τ'
        # --------------------------------
        # ({Y}, κ) ⊩ axis::node/P : τ ∪ τ'
        axis_step = LStep(axis, _NODE)
        sigma = self.types.infer(env, (axis_step,))
        kept = set(env.tau)
        for name in sigma.tau:
            continuation = self.types.infer(
                Env(frozenset((name,)), sigma.kappa), (axis_step,) + rest
            )
            if not continuation.is_empty:
                kept.add(name)
        tail = self.infer(Env(frozenset(kept), sigma.kappa), (LStep(one_step, _NODE),) + rest)
        return frozenset(kept) | tail


def infer_projector(grammar: Grammar, path: PathL | SimplePath, env: Env | None = None) -> NameSet:
    """One-shot Figure 2 judgement ``({X}, {X}) ⊩E P : τ``.

    The result is the *query answering* projector: it preserves the node
    set ``[[P]]`` but not necessarily the subtrees below the answers.  Use
    :func:`materialized_projector` when results must be serialised.
    """
    inference = ProjectorInference(grammar)
    return inference.infer_path(path, env)


def materialized_projector(grammar: Grammar, path: PathL | SimplePath) -> NameSet:
    """The materialisation variant (end of Section 4.2):
    ``τ' ∪ A_E(τ'', descendant)`` where ``⊩ P : τ'`` and ``⊢ P : (τ'', _)``
    — the answers' subtrees (including attributes) survive pruning so the
    result can be output."""
    from repro.core.inference import infer_type

    answering = infer_projector(grammar, path)
    result_type = infer_type(grammar, path)
    return answering | grammar.descendant_closure(result_type.tau)
