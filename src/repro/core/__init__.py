"""Core static analysis: the paper's type system and projector inference.

* :mod:`repro.core.types`      — A_E / T_E (Definition 4.1);
* :mod:`repro.core.inference`  — the Figure 1 type system;
* :mod:`repro.core.projector`  — the Figure 2 projector inference;
* :mod:`repro.core.pipeline`   — the user-facing analyze() entry point.
"""

from repro.core.cache import (
    CacheStats,
    ProjectorCache,
    default_cache,
    grammar_fingerprint,
)
from repro.core.depth import depth_unfolded_grammar, fold_names
from repro.core.inference import Env, TypeInference, infer_type, initial_env
from repro.core.pipeline import (
    AnalysisResult,
    analyze,
    analyze_query,
    analyze_xquery,
    type_of_query,
)
from repro.core.projector import (
    ProjectorInference,
    infer_projector,
    materialized_projector,
)
from repro.core.types import TypeOperators

__all__ = [
    "AnalysisResult",
    "CacheStats",
    "Env",
    "ProjectorCache",
    "ProjectorInference",
    "TypeInference",
    "TypeOperators",
    "analyze",
    "analyze_query",
    "analyze_xquery",
    "default_cache",
    "depth_unfolded_grammar",
    "fold_names",
    "grammar_fingerprint",
    "infer_projector",
    "infer_type",
    "initial_env",
    "materialized_projector",
    "type_of_query",
]
