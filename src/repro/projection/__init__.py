"""Type-driven projection: in-memory (Def 2.7) and streaming pruning.

The unified streaming entry point is :func:`repro.prune` (see
:mod:`repro.api`); ``prune_events`` / ``prune_stream`` / ``prune_file`` /
``prune_string`` remain as deprecated aliases.
"""

from repro.projection.fastpath import FastPruner
from repro.projection.prunetable import PruneTable, TagPlan, compile_prune_table
from repro.projection.stats import PruneStats, compare_documents, measure_document
from repro.projection.streaming import (
    StreamingPruner,
    prune_events,
    prune_file,
    prune_stream,
    prune_string,
)
from repro.projection.tree import prune_document, prune_tree

__all__ = [
    "FastPruner",
    "PruneStats",
    "PruneTable",
    "StreamingPruner",
    "TagPlan",
    "compile_prune_table",
    "compare_documents",
    "measure_document",
    "prune_document",
    "prune_events",
    "prune_file",
    "prune_stream",
    "prune_string",
    "prune_tree",
]
