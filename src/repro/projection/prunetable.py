"""Compiled prune tables: the per-grammar decision tables behind pruning.

The streaming pruner makes exactly three decisions per node of the input
document: (1) does the projector keep this element?  (2) does character
data directly under it survive?  (3) which of its declared attributes are
dropped?  All three are functions of the *grammar name* of the element
alone (Section 2.2: a DTD is a local tree grammar, so the tag — or, for
single-type grammars, the parent's name plus the tag — determines the
name), so they can be compiled once per ``(grammar, projector)`` pair into
a flat table instead of being re-derived event by event.

:func:`compile_prune_table` builds (and memoises) that table.  Both the
event-level :class:`~repro.projection.streaming.StreamingPruner` and the
fused scanner-level :class:`~repro.projection.fastpath.FastPruner` consume
it, which is what keeps the two paths behaviourally identical.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

from repro.dtd.grammar import ElementProduction, Grammar, attribute_name
from repro.errors import ProjectorError


@dataclass(frozen=True, slots=True)
class TagPlan:
    """Everything the pruner needs to know about one element name.

    ``prunable`` lists the *declared* attributes whose grammar name the
    projector drops; undeclared attributes are invisible to the analysis
    and always kept.  An empty set means every attribute survives, so the
    hot path can skip filtering entirely.
    """

    name: str
    tag: str
    keep: bool
    text_kept: bool
    prunable: frozenset[str]


class PruneTable:
    """Flat keep/skip/filter table for one ``(grammar, projector)`` pair.

    ``local`` is True when element names are resolved by tag alone (plain
    DTD grammars): lookups go through ``by_tag``.  Otherwise (single-type
    grammars — XML Schema local elements) resolution needs the parent's
    name and lookups go through ``by_parent`` keyed ``(parent_name, tag)``
    with ``None`` standing for the document root.
    """

    __slots__ = (
        "grammar",
        "projector",
        "prune_attributes",
        "local",
        "by_tag",
        "by_parent",
        "root_plan",
    )

    def __init__(
        self,
        grammar: Grammar,
        projector: frozenset[str],
        prune_attributes: bool,
    ) -> None:
        self.grammar = grammar
        self.projector = grammar.check_projector(projector)
        if grammar.root not in self.projector:
            raise ProjectorError("projector does not keep the document root")
        self.prune_attributes = prune_attributes
        # A grammar that does not override name resolution is local: the
        # tag alone decides, and one dict probe per element suffices.
        self.local = type(grammar).child_element_name is Grammar.child_element_name

        plans: dict[str, TagPlan] = {}
        for name, production in grammar.productions.items():
            if isinstance(production, ElementProduction):
                plans[name] = self._plan(name, production)

        self.by_tag: dict[str, TagPlan] = {}
        self.by_parent: dict[tuple[str | None, str], TagPlan] = {}
        if self.local:
            for name, plan in plans.items():
                resolved = grammar.name_of_tag(plan.tag)
                if resolved == name:
                    self.by_tag[plan.tag] = plan
        else:
            for parent, production in grammar.productions.items():
                if not isinstance(production, ElementProduction):
                    continue
                for child_tag in {
                    plans[child].tag
                    for child in grammar.children_of(parent)
                    if child in plans
                }:
                    child_name = grammar.child_element_name(parent, child_tag)
                    if child_name is not None and child_name in plans:
                        self.by_parent[(parent, child_tag)] = plans[child_name]
            root_name = grammar.child_element_name(None, plans[grammar.root].tag)
            if root_name is not None:
                self.by_parent[(None, plans[grammar.root].tag)] = plans[root_name]
        self.root_plan = plans[grammar.root]

    def _plan(self, name: str, production: ElementProduction) -> TagPlan:
        grammar = self.grammar
        text_child = grammar.text_child_of(name)
        text_kept = text_child is not None and text_child in self.projector
        if self.prune_attributes:
            prunable = frozenset(
                attr.name
                for attr in production.attributes
                if attribute_name(name, attr.name) not in self.projector
            )
        else:
            prunable = frozenset()
        return TagPlan(
            name=name,
            tag=production.tag,
            keep=name in self.projector,
            text_kept=text_kept,
            prunable=prunable,
        )

    def resolve(self, parent_name: str | None, tag: str) -> TagPlan | None:
        """Plan for a ``tag`` element under ``parent_name`` (None = root);
        None if the grammar declares no such element there."""
        if self.local:
            return self.by_tag.get(tag)
        return self.by_parent.get((parent_name, tag))


# Tables are memoised per grammar instance: a multi-query workload reuses
# one table per distinct projector, and the cache dies with the grammar.
_TABLES: "weakref.WeakKeyDictionary[Grammar, dict]" = weakref.WeakKeyDictionary()


def compile_prune_table(
    grammar: Grammar,
    projector: frozenset[str] | set[str],
    prune_attributes: bool = True,
) -> PruneTable:
    """Build (or fetch the memoised) prune table for a projector."""
    frozen = frozenset(projector)
    key = (frozen, prune_attributes)
    per_grammar = _TABLES.setdefault(grammar, {})
    table = per_grammar.get(key)
    if table is None:
        table = PruneTable(grammar, frozen, prune_attributes)
        per_grammar[key] = table
    return table
