"""Type-driven projection of in-memory documents (Definition 2.7).

``prune_document(t, ℑ, π)`` computes ``t \\ℑ π``: every node whose name is
not in the projector is replaced by the empty forest (its whole subtree
disappears).  Pruned nodes keep their original identifiers, which is what
lets tests compare query answers across the original and pruned documents
by id (Theorem 4.5).
"""

from __future__ import annotations

from typing import Literal

from repro.dtd.grammar import Grammar, attribute_name
from repro.dtd.validator import Interpretation
from repro.errors import ProjectorError
from repro.obs import get_tracer
from repro.xmltree.nodes import Document, Element, Node, Text

AttributePolicy = Literal["auto", "all"]


def prune_tree(
    node: Node,
    interpretation: Interpretation,
    projector: frozenset[str],
    attribute_policy: AttributePolicy = "auto",
) -> Node | None:
    """Def 2.7 on a subtree; returns the pruned copy or None if erased.

    Iterative (explicit work stack) so arbitrarily deep documents prune
    without hitting the interpreter's recursion limit.
    """
    grammar = interpretation.grammar
    if interpretation[node.node_id] not in projector:
        return None
    if isinstance(node, Text):
        copy: Node = Text(node.value)
        copy.node_id = node.node_id
        return copy
    assert isinstance(node, Element)

    def copy_element(source: Element) -> Element:
        name = interpretation[source.node_id]
        attributes = _kept_attributes(source, name, grammar, projector, attribute_policy)
        duplicate = Element(source.tag, attributes)
        duplicate.node_id = source.node_id
        return duplicate

    root_copy = copy_element(node)
    # Each entry pairs an original element with its already-created copy;
    # children are examined breadth-up via an explicit stack.
    stack: list[tuple[Element, Element]] = [(node, root_copy)]
    while stack:
        original, duplicate = stack.pop()
        for child in original.children:
            if interpretation[child.node_id] not in projector:
                continue
            if isinstance(child, Text):
                text_copy = Text(child.value)
                text_copy.node_id = child.node_id
                duplicate.append(text_copy)
            else:
                assert isinstance(child, Element)
                child_copy = copy_element(child)
                duplicate.append(child_copy)
                stack.append((child, child_copy))
    return root_copy


def _kept_attributes(
    element: Element,
    name: str,
    grammar: Grammar,
    projector: frozenset[str],
    policy: AttributePolicy,
) -> dict[str, str]:
    if policy == "all" or not element.attributes:
        return dict(element.attributes)
    grammar_names = grammar.names()
    kept: dict[str, str] = {}
    for attr, value in element.attributes.items():
        attr_name = attribute_name(name, attr)
        # Undeclared attributes have no grammar name: always kept (they are
        # invisible to the analysis, so pruning them could be unsound).
        if attr_name not in grammar_names or attr_name in projector:
            kept[attr] = value
    return kept


def prune_document(
    document: Document,
    interpretation: Interpretation,
    projector: frozenset[str] | set[str],
    attribute_policy: AttributePolicy = "auto",
) -> Document:
    """``t \\ℑ π`` for a whole document.

    The projector must contain the root name (an empty pruned document has
    no XML serialisation); :class:`ProjectorError` otherwise.

    With tracing enabled (:mod:`repro.obs`) the pass reports a ``"prune"``
    span (``mode="tree"``) with node in/out counters — the in-memory
    counterpart of the streaming pruner's span.
    """
    tracer = get_tracer()
    with tracer.span("prune", mode="tree") as span:
        frozen = interpretation.grammar.check_projector(frozenset(projector))
        root = prune_tree(document.root, interpretation, frozen, attribute_policy)
        if root is None:
            raise ProjectorError(
                "the projector does not retain the document root; "
                "the pruned document would be empty"
            )
        assert isinstance(root, Element)
        pruned = Document(root, renumber=False)
        if tracer.enabled:
            span.count("nodes_in", document.size())
            span.count("nodes_out", pruned.size())
            span.count("projector_size", len(frozen))
    return pruned
