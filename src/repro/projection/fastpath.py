"""Fused parse → prune → serialize fast path.

The event pipeline (``parse_events → prune_events → write_events``) builds
an :class:`~repro.xmltree.events.Event` object for every node of the
*input* document — including every node of subtrees the projector is
about to discard.  Profiling shows parsing dominates the pipeline, so the
fast path fuses all three stages onto the scanner:

* tags are read **in bulk**: the scanner jumps straight to the closing
  ``>`` (quote-aware, so ``>`` inside attribute values is handled) and a
  compiled regex splits name and attributes at C speed — no
  char-by-char name scanning and no event objects;
* pruned subtrees are **bulk-skipped**: only a tag stack is maintained
  for well-formedness (tag nesting, attribute syntax, entity references,
  comment/CDATA termination are still checked) — no attribute dicts and
  no text strings are materialised;
* kept content is serialized straight back out with buffered writes;
* all keep/skip/filter decisions come from the same compiled
  :class:`~repro.projection.prunetable.PruneTable` as the event pruner,
  so both paths produce byte-identical output and identical
  :class:`~repro.projection.stats.PruneStats` (the property tests in
  ``tests/test_fastpath.py`` enforce this).

:meth:`FastPruner.write` is the markup-to-markup hot path;
:meth:`FastPruner.events` exposes the same fused traversal as an event
stream (pruned regions still bulk-skipped) for consumers like the
prune-while-loading tree builder.
"""

from __future__ import annotations

import re
from typing import IO, TYPE_CHECKING, Iterator

from repro.dtd.grammar import Grammar
from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.limits import LimitGuard
from repro.obs import get_tracer
from repro.projection.prunetable import PruneTable, TagPlan, compile_prune_table
from repro.projection.stats import PruneStats
from repro.xmltree.events import (
    Characters,
    Comment,
    EndDocument,
    EndElement,
    Event,
    ProcessingInstruction,
    StartElement,
)
from repro.xmltree.lexer import DEFAULT_CHUNK_SIZE, Scanner, Source
from repro.xmltree.parser import EventParser, expand_entities, expand_entity
from repro.xmltree.serializer import WRITE_BUFFER_SIZE, escape_attribute, escape_text

# The scanner's name alphabet (ASCII subset + full non-ASCII passthrough)
# as a regex, so a whole tag read in bulk can be split in one match
# instead of per-character ``read_name`` calls.
_NAME = r"(?:[A-Za-z_:]|[^\x00-\x7f])(?:[A-Za-z0-9_.:\-]|[^\x00-\x7f])*"
_START_TAG_RE = re.compile(
    r"(" + _NAME + r")"
    r"((?:\s+" + _NAME + r"\s*=\s*(?:\"[^\"]*\"|'[^']*'))*)"
    r"\s*\Z"
)
_ATTR_RE = re.compile(r"\s+(" + _NAME + r")\s*=\s*(?:\"([^\"]*)\"|'([^']*)')")
_END_TAG_RE = re.compile(r"(" + _NAME + r")\s*\Z")
# Closing tag with its leading '/', for the skip loop's zero-advance path.
_CLOSE_TAG_RE = re.compile(r"/(" + _NAME + r")\s*\Z")


def _read_text_run(scanner: Scanner) -> str:
    """One character-data run (entity references expanded), mirroring
    ``EventParser._parse_text``."""
    pieces: list[str] = []
    while True:
        pieces.append(scanner.read_until_any("<&"))
        char = scanner.peek()
        if char == "" or char == "<":
            return "".join(pieces)
        scanner.advance()  # '&'
        name = scanner.read_until(";", "entity reference")
        pieces.append(expand_entity(name, scanner))


def _skip_text_run(scanner: Scanner) -> bool:
    """Consume one character-data run without materialising it; entity
    references are still validated.  Returns whether the run was
    non-empty (every reference expands to at least one character)."""
    saw = False
    while True:
        if scanner.skip_until_any("<&"):
            saw = True
        if scanner.peek() != "&":
            return saw
        scanner.advance()
        name = scanner.read_until(";", "entity reference")
        expand_entity(name, scanner)
        saw = True


def _toplevel_text(scanner: Scanner) -> None:
    """Text outside the root element: only whitespace (possibly spelled
    as character references) is allowed."""
    text = _read_text_run(scanner)
    if text.strip():
        raise scanner.error("character data outside the root element")


def _check_duplicates(scanner: Scanner, tag: str, names: list[str]) -> None:
    seen: set[str] = set()
    for name in names:
        if name in seen:
            raise scanner.error(f"duplicate attribute {name!r} on <{tag}>")
        seen.add(name)


class FastPruner:
    """Scanner-level pruning pipeline compiled from a prune table."""

    def __init__(
        self,
        grammar: Grammar,
        projector: frozenset[str] | set[str],
        prune_attributes: bool = True,
        stats: PruneStats | None = None,
        guard: "LimitGuard | None" = None,
    ) -> None:
        self.grammar = grammar
        self.table: PruneTable = compile_prune_table(
            grammar, frozenset(projector), prune_attributes
        )
        self.projector = self.table.projector
        self.stats = stats
        #: Per-pass resource guard (:mod:`repro.limits`): bounds depth —
        #: including inside bulk-skipped subtrees — plus token size, input
        #: size and wall clock via the scanner.  Not pickled: guards are
        #: per call, never per configuration.
        self.guard = guard

    def __reduce__(self):
        # Pickling ships only (grammar, projector, flag) — the compiled
        # table is rebuilt (and memoised per process) on the receiving
        # side, and per-document stats stay process-local.  This is what
        # lets repro.parallel validate the configuration once in the
        # parent and hand the same pruner to every worker.
        return (
            FastPruner,
            (self.grammar, self.projector, self.table.prune_attributes),
        )

    # -- markup to markup (the hot path) ---------------------------------

    def write(
        self,
        source: Source,
        sink: IO[str],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        buffer_size: int = WRITE_BUFFER_SIZE,
    ) -> int:
        """Prune ``source`` straight into ``sink``; returns characters
        written.  Output is byte-identical to the event pipeline's
        (``write_events(..., declaration=False)``)."""
        guard = self.guard
        scanner = Scanner(source, chunk_size, guard=guard)
        helper = EventParser(scanner)
        stats = self.stats
        table = self.table
        local = table.local
        by_tag = table.by_tag
        by_parent = table.by_parent

        out: list[str] = []
        out_length = 0
        written = 0
        #: Rendered ``"<tag attrs"`` of the last kept start tag, held back
        #: one step so content-free elements collapse to ``<tag/>`` exactly
        #: as the event serializer's one-event lookahead does.
        pending: str | None = None
        open_kept: list[tuple[str, TagPlan]] = []
        seen_root = False

        helper._parse_prolog()  # consumes an XML declaration if present

        while True:
            if guard is not None:
                guard.tick()
            if not open_kept:
                scanner.skip_whitespace()
                if scanner.at_eof():
                    break
                if scanner.peek() != "<":
                    _toplevel_text(scanner)
                    continue
            else:
                plan = open_kept[-1][1]
                if plan.text_kept:
                    text = _read_text_run(scanner)
                    if text:
                        if stats is not None:
                            stats.texts_in += 1
                            stats.texts_out += 1
                        if pending is not None:
                            out.append(pending)
                            out.append(">")
                            out_length += len(pending) + 1
                            pending = None
                        piece = escape_text(text)
                        if len(piece) >= buffer_size:
                            # A run already larger than the buffer goes to
                            # the sink directly — joining it into ``out``
                            # first would only copy it once more.
                            if out:
                                written += out_length
                                sink.write("".join(out))
                                out.clear()
                                out_length = 0
                            written += len(piece)
                            sink.write(piece)
                        else:
                            out.append(piece)
                            out_length += len(piece)
                elif _skip_text_run(scanner):
                    if stats is not None:
                        stats.texts_in += 1
                if scanner.at_eof():
                    raise scanner.error(f"unclosed element <{open_kept[-1][0]}>")
            scanner.advance()  # '<' — text runs stop only at '<' or EOF
            char = scanner.peek()
            if char == "!":
                scanner.advance()
                if scanner.try_consume("--"):
                    text = scanner.read_until("-->", "comment")
                    if "--" in text:
                        raise scanner.error("'--' not allowed inside a comment")
                    if pending is not None:
                        out.append(pending)
                        out.append(">")
                        out_length += len(pending) + 1
                        pending = None
                    piece = f"<!--{text}-->"
                    out.append(piece)
                    out_length += len(piece)
                elif scanner.try_consume("[CDATA["):
                    if not open_kept:
                        raise scanner.error("CDATA section outside the root element")
                    text = scanner.read_until("]]>", "CDATA section")
                    if stats is not None:
                        stats.texts_in += 1
                    if open_kept[-1][1].text_kept:
                        if stats is not None:
                            stats.texts_out += 1
                        if pending is not None:
                            out.append(pending)
                            out.append(">")
                            out_length += len(pending) + 1
                            pending = None
                        piece = escape_text(text)
                        if len(piece) >= buffer_size:
                            if out:
                                written += out_length
                                sink.write("".join(out))
                                out.clear()
                                out_length = 0
                            written += len(piece)
                            sink.write(piece)
                        else:
                            out.append(piece)
                            out_length += len(piece)
                elif scanner.startswith("DOCTYPE"):
                    if seen_root:
                        raise scanner.error("DOCTYPE after the root element")
                    helper._parse_doctype()  # validated, no output
                else:
                    raise scanner.error("unrecognised markup declaration")
            elif char == "?":
                scanner.advance()
                target = scanner.read_name("processing-instruction target")
                data = scanner.read_until("?>", "processing instruction").lstrip()
                if pending is not None:
                    out.append(pending)
                    out.append(">")
                    out_length += len(pending) + 1
                    pending = None
                piece = f"<?{target} {data}?>" if data else f"<?{target}?>"
                out.append(piece)
                out_length += len(piece)
            elif char == "/":
                scanner.advance()
                raw = scanner.read_tag_content("closing tag")
                match = _END_TAG_RE.match(raw)
                if match is None:
                    raise scanner.error(f"malformed closing tag </{raw[:20]}>")
                tag = match.group(1)
                if not open_kept:
                    raise scanner.error(f"closing tag </{tag}> with no open element")
                expected = open_kept.pop()[0]
                if expected != tag:
                    raise scanner.error(
                        f"mismatched closing tag </{tag}>, expected </{expected}>"
                    )
                if pending is not None:
                    out.append(pending)
                    out.append("/>")
                    out_length += len(pending) + 2
                    pending = None
                else:
                    piece = f"</{tag}>"
                    out.append(piece)
                    out_length += len(piece)
            else:
                if seen_root and not open_kept:
                    raise scanner.error("multiple root elements")
                raw = scanner.read_tag_content("start tag")
                empty = raw.endswith("/")
                content = raw[:-1] if empty else raw
                match = _START_TAG_RE.match(content)
                if match is None:
                    raise scanner.error(f"malformed start tag <{content[:20]}>")
                tag = match.group(1)
                attrs_text = match.group(2)
                if local:
                    plan = by_tag.get(tag)
                else:
                    parent = open_kept[-1][1].name if open_kept else None
                    plan = by_parent.get((parent, tag))
                if plan is None:
                    # Attribute syntax/entity errors still win over the
                    # undeclared-element error, exactly as the event
                    # pipeline's parser runs ahead of its pruner.
                    if attrs_text:
                        self._validate_skipped_attributes(scanner, tag, attrs_text)
                    raise ValidationError(f"undeclared element <{tag}>")
                seen_root = True
                if plan.keep:
                    if attrs_text:
                        rendered, count_in, count_out = self._render_attributes(
                            scanner, tag, attrs_text, plan.prunable
                        )
                    else:
                        rendered, count_in, count_out = "", 0, 0
                    if stats is not None:
                        stats.elements_in += 1
                        stats.attributes_in += count_in
                        stats.distinct_tags_in.add(tag)
                        stats.elements_out += 1
                        stats.attributes_out += count_out
                        stats.distinct_tags_out.add(tag)
                    if pending is not None:
                        out.append(pending)
                        out.append(">")
                        out_length += len(pending) + 1
                    markup = f"<{tag}{rendered}"
                    if empty:
                        out.append(markup)
                        out.append("/>")
                        out_length += len(markup) + 2
                        pending = None
                    else:
                        pending = markup
                        open_kept.append((tag, plan))
                        if guard is not None:
                            guard.check_depth(len(open_kept))
                else:
                    count = (
                        self._validate_skipped_attributes(scanner, tag, attrs_text)
                        if attrs_text
                        else 0
                    )
                    if stats is not None:
                        stats.elements_in += 1
                        stats.attributes_in += count
                        stats.distinct_tags_in.add(tag)
                    if not empty:
                        self._skip_subtree(scanner, tag, stats, len(open_kept))
            if out_length >= buffer_size:
                written += out_length
                sink.write("".join(out))
                out.clear()
                out_length = 0
            if not open_kept and seen_root:
                scanner.skip_whitespace()
                if scanner.at_eof():
                    break
        if open_kept:
            raise scanner.error(f"unclosed element <{open_kept[-1][0]}>")
        if not seen_root:
            raise scanner.error("document has no root element")
        if out:
            written += out_length
            sink.write("".join(out))
        tracer = get_tracer()
        if tracer.enabled:
            # Process-wide fused-scan counters (per-document quantities
            # travel on the caller's "prune" span via PruneStats).
            tracer.count("fastpath.documents")
            tracer.count("fastpath.chars_out", written)
            if stats is not None:
                tracer.count("fastpath.tags_scanned", stats.elements_in)
        return written

    # -- markup to events -------------------------------------------------

    def events(
        self, source: Source, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> Iterator[Event]:
        """The same fused traversal as an event stream: identical to
        ``prune_events(parse_events(source), ...)`` but pruned subtrees
        are bulk-skipped instead of parsed into events."""
        guard = self.guard
        scanner = Scanner(source, chunk_size, guard=guard)
        helper = EventParser(scanner)
        stats = self.stats
        table = self.table
        local = table.local
        open_kept: list[tuple[str, TagPlan]] = []
        seen_root = False

        yield helper._parse_prolog()

        while True:
            if guard is not None:
                guard.tick()
            if not open_kept:
                scanner.skip_whitespace()
                if scanner.at_eof():
                    break
                if scanner.peek() != "<":
                    _toplevel_text(scanner)
                    continue
            else:
                plan = open_kept[-1][1]
                if plan.text_kept:
                    text = _read_text_run(scanner)
                    if text:
                        if stats is not None:
                            stats.texts_in += 1
                            stats.texts_out += 1
                        yield Characters(text)
                elif _skip_text_run(scanner):
                    if stats is not None:
                        stats.texts_in += 1
                if scanner.at_eof():
                    raise scanner.error(f"unclosed element <{open_kept[-1][0]}>")
            scanner.advance()  # '<' — text runs stop only at '<' or EOF
            char = scanner.peek()
            if char == "!":
                scanner.advance()
                if scanner.try_consume("--"):
                    text = scanner.read_until("-->", "comment")
                    if "--" in text:
                        raise scanner.error("'--' not allowed inside a comment")
                    yield Comment(text)
                elif scanner.try_consume("[CDATA["):
                    if not open_kept:
                        raise scanner.error("CDATA section outside the root element")
                    text = scanner.read_until("]]>", "CDATA section")
                    if stats is not None:
                        stats.texts_in += 1
                    if open_kept[-1][1].text_kept:
                        if stats is not None:
                            stats.texts_out += 1
                        yield Characters(text)
                elif scanner.startswith("DOCTYPE"):
                    if seen_root:
                        raise scanner.error("DOCTYPE after the root element")
                    yield helper._parse_doctype()
                else:
                    raise scanner.error("unrecognised markup declaration")
            elif char == "?":
                scanner.advance()
                target = scanner.read_name("processing-instruction target")
                data = scanner.read_until("?>", "processing instruction").lstrip()
                yield ProcessingInstruction(target, data)
            elif char == "/":
                scanner.advance()
                raw = scanner.read_tag_content("closing tag")
                match = _END_TAG_RE.match(raw)
                if match is None:
                    raise scanner.error(f"malformed closing tag </{raw[:20]}>")
                tag = match.group(1)
                if not open_kept:
                    raise scanner.error(f"closing tag </{tag}> with no open element")
                expected = open_kept.pop()[0]
                if expected != tag:
                    raise scanner.error(
                        f"mismatched closing tag </{tag}>, expected </{expected}>"
                    )
                yield EndElement(tag)
            else:
                if seen_root and not open_kept:
                    raise scanner.error("multiple root elements")
                raw = scanner.read_tag_content("start tag")
                empty = raw.endswith("/")
                content = raw[:-1] if empty else raw
                match = _START_TAG_RE.match(content)
                if match is None:
                    raise scanner.error(f"malformed start tag <{content[:20]}>")
                tag = match.group(1)
                attrs_text = match.group(2)
                if local:
                    plan = table.by_tag.get(tag)
                else:
                    parent = open_kept[-1][1].name if open_kept else None
                    plan = table.by_parent.get((parent, tag))
                if plan is None:
                    if attrs_text:
                        self._validate_skipped_attributes(scanner, tag, attrs_text)
                    raise ValidationError(f"undeclared element <{tag}>")
                seen_root = True
                if plan.keep:
                    if attrs_text:
                        attributes, count_in = self._collect_attributes(
                            scanner, tag, attrs_text, plan.prunable
                        )
                    else:
                        attributes, count_in = {}, 0
                    if stats is not None:
                        stats.elements_in += 1
                        stats.attributes_in += count_in
                        stats.distinct_tags_in.add(tag)
                        stats.elements_out += 1
                        stats.attributes_out += len(attributes)
                        stats.distinct_tags_out.add(tag)
                    yield StartElement(tag, attributes)
                    if empty:
                        yield EndElement(tag)
                    else:
                        open_kept.append((tag, plan))
                        if guard is not None:
                            guard.check_depth(len(open_kept))
                else:
                    count = (
                        self._validate_skipped_attributes(scanner, tag, attrs_text)
                        if attrs_text
                        else 0
                    )
                    if stats is not None:
                        stats.elements_in += 1
                        stats.attributes_in += count
                        stats.distinct_tags_in.add(tag)
                    if not empty:
                        self._skip_subtree(scanner, tag, stats, len(open_kept))
            if not open_kept and seen_root:
                scanner.skip_whitespace()
                if scanner.at_eof():
                    break
        if open_kept:
            raise scanner.error(f"unclosed element <{open_kept[-1][0]}>")
        if not seen_root:
            raise scanner.error("document has no root element")
        yield EndDocument()

    # -- attribute helpers -------------------------------------------------

    def _render_attributes(
        self, scanner: Scanner, tag: str, attrs_text: str, prunable: frozenset[str]
    ) -> tuple[str, int, int]:
        """Serialize a kept element's attributes (filtered and
        re-escaped); returns ``(markup, attributes seen, attributes
        kept)``."""
        pieces: list[str] = []
        names: list[str] = []
        count_out = 0
        for match in _ATTR_RE.finditer(attrs_text):
            name = match.group(1)
            value = match.group(2)
            if value is None:
                value = match.group(3)
            names.append(name)
            if "&" in value:
                value = expand_entities(value, scanner)
            if name not in prunable:
                count_out += 1
                pieces.append(f' {name}="{escape_attribute(value)}"')
        if len(names) > 1:
            _check_duplicates(scanner, tag, names)
        return "".join(pieces), len(names), count_out

    def _collect_attributes(
        self, scanner: Scanner, tag: str, attrs_text: str, prunable: frozenset[str]
    ) -> tuple[dict[str, str], int]:
        """Like :meth:`_render_attributes` but producing the (filtered)
        attribute dict for the event stream."""
        attributes: dict[str, str] = {}
        names: list[str] = []
        for match in _ATTR_RE.finditer(attrs_text):
            name = match.group(1)
            value = match.group(2)
            if value is None:
                value = match.group(3)
            names.append(name)
            if "&" in value:
                value = expand_entities(value, scanner)
            if name not in prunable:
                attributes[name] = value
        if len(names) > 1:
            _check_duplicates(scanner, tag, names)
        return attributes, len(names)

    def _validate_skipped_attributes(
        self, scanner: Scanner, tag: str, attrs_text: str
    ) -> int:
        """Well-formedness checks (entity validity, uniqueness) for a
        discarded element's attributes; returns how many there were."""
        names: list[str] = []
        for match in _ATTR_RE.finditer(attrs_text):
            names.append(match.group(1))
            value = match.group(2)
            if value is None:
                value = match.group(3)
            if "&" in value:
                expand_entities(value, scanner)  # validate references
        if len(names) > 1:
            _check_duplicates(scanner, tag, names)
        return len(names)

    # -- bulk skipping -----------------------------------------------------

    def _skip_subtree(
        self,
        scanner: Scanner,
        first_tag: str,
        stats: PruneStats | None,
        base_depth: int = 0,
    ) -> None:
        """Bulk-skip the content of a discarded element up to and
        including its end tag, maintaining only a tag stack for
        well-formedness and the stats counters the event path would have
        gathered.  ``base_depth`` is the kept-element nesting above this
        subtree, so the depth limit sees the document's true depth even
        inside discarded regions."""
        guard = self.guard
        open_tags = [first_tag]
        if guard is not None:
            guard.check_depth(base_depth + 1)
        while open_tags:
            if guard is not None:
                guard.tick()
            saw, opened, char = scanner.skip_text_open()
            while not opened:
                if char == "":
                    raise scanner.error(f"unclosed element <{open_tags[-1]}>")
                scanner.advance()  # '&'
                name = scanner.read_until(";", "entity reference")
                expand_entity(name, scanner)
                saw = True
                more, opened, char = scanner.skip_text_open()
                saw = saw or more
            if saw and stats is not None:
                stats.texts_in += 1
            if char == "!":
                scanner.advance()
                if scanner.try_consume("--"):
                    text = scanner.read_until("-->", "comment")
                    if "--" in text:
                        raise scanner.error("'--' not allowed inside a comment")
                elif scanner.try_consume("[CDATA["):
                    scanner.skip_until("]]>", "CDATA section")
                    if stats is not None:
                        stats.texts_in += 1
                elif scanner.startswith("DOCTYPE"):
                    raise scanner.error("DOCTYPE after the root element")
                else:
                    raise scanner.error("unrecognised markup declaration")
            elif char == "?":
                scanner.advance()
                scanner.read_name("processing-instruction target")
                scanner.skip_until("?>", "processing instruction")
            elif char == "/":
                raw = scanner.read_tag_content("closing tag")  # includes '/'
                match = _CLOSE_TAG_RE.match(raw)
                if match is None:
                    raise scanner.error(f"malformed closing tag <{raw[:20]}>")
                closing = match.group(1)
                expected = open_tags.pop()
                if expected != closing:
                    raise scanner.error(
                        f"mismatched closing tag </{closing}>, expected </{expected}>"
                    )
            else:
                raw = scanner.read_tag_content("start tag")
                empty = raw.endswith("/")
                content = raw[:-1] if empty else raw
                match = _START_TAG_RE.match(content)
                if match is None:
                    raise scanner.error(f"malformed start tag <{content[:20]}>")
                tag = match.group(1)
                attrs_text = match.group(2)
                count = (
                    self._validate_skipped_attributes(scanner, tag, attrs_text)
                    if attrs_text
                    else 0
                )
                if stats is not None:
                    stats.elements_in += 1
                    stats.attributes_in += count
                    stats.distinct_tags_in.add(tag)
                if not empty:
                    open_tags.append(tag)
                    if guard is not None:
                        guard.check_depth(base_depth + len(open_tags))
