"""Pruning statistics — the quantities Table 1 reports."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmltree.nodes import Document, Element, Text


@dataclass(slots=True)
class PruneStats:
    """Counters gathered by one pruning pass.

    ``*_in`` count the original document, ``*_out`` the pruned one;
    ``bytes_*`` measure serialised markup size (the paper's "document
    size" columns).
    """

    elements_in: int = 0
    elements_out: int = 0
    texts_in: int = 0
    texts_out: int = 0
    attributes_in: int = 0
    attributes_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    distinct_tags_in: set[str] = field(default_factory=set)
    distinct_tags_out: set[str] = field(default_factory=set)

    @property
    def nodes_in(self) -> int:
        return self.elements_in + self.texts_in

    @property
    def nodes_out(self) -> int:
        return self.elements_out + self.texts_out

    @property
    def node_ratio(self) -> float:
        """Pruned / original node count (lower = more pruning)."""
        return self.nodes_out / self.nodes_in if self.nodes_in else 1.0

    @property
    def size_ratio(self) -> float:
        """Pruned / original byte size — Table 1's "Gain in Size" column
        expresses this as a percentage."""
        return self.bytes_out / self.bytes_in if self.bytes_in else 1.0

    @property
    def size_percent(self) -> float:
        return 100.0 * self.size_ratio

    def as_counters(self) -> dict[str, int]:
        """The counters an observability span carries for one pruning pass
        (:mod:`repro.obs`) — field for field the Table 1 quantities, so a
        trace can substantiate the Section 6 size/complexity claims."""
        return {
            "elements_in": self.elements_in,
            "elements_out": self.elements_out,
            "texts_in": self.texts_in,
            "texts_out": self.texts_out,
            "attributes_in": self.attributes_in,
            "attributes_out": self.attributes_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "nodes_in": self.nodes_in,
            "nodes_out": self.nodes_out,
            "tags_in": len(self.distinct_tags_in),
            "tags_out": len(self.distinct_tags_out),
        }

    def snapshot(self) -> tuple:
        """Capture the counters so an aborted pass can be rolled back
        (the fast→streaming fallback re-reads the document and must not
        double-count what the abandoned fast pass already saw)."""
        return (
            self.elements_in,
            self.elements_out,
            self.texts_in,
            self.texts_out,
            self.attributes_in,
            self.attributes_out,
            self.bytes_in,
            self.bytes_out,
            set(self.distinct_tags_in),
            set(self.distinct_tags_out),
        )

    def restore(self, snap: tuple) -> None:
        """Roll the counters back to a :meth:`snapshot`."""
        (
            self.elements_in,
            self.elements_out,
            self.texts_in,
            self.texts_out,
            self.attributes_in,
            self.attributes_out,
            self.bytes_in,
            self.bytes_out,
            self.distinct_tags_in,
            self.distinct_tags_out,
        ) = snap

    def merge(self, other: "PruneStats") -> "PruneStats":
        """Accumulate another pass's counters into this one (corpus-level
        aggregation for batch pruning); returns ``self``."""
        self.elements_in += other.elements_in
        self.elements_out += other.elements_out
        self.texts_in += other.texts_in
        self.texts_out += other.texts_out
        self.attributes_in += other.attributes_in
        self.attributes_out += other.attributes_out
        self.bytes_in += other.bytes_in
        self.bytes_out += other.bytes_out
        self.distinct_tags_in |= other.distinct_tags_in
        self.distinct_tags_out |= other.distinct_tags_out
        return self

    @property
    def complexity_reduction(self) -> float:
        """Reduction in the number of distinct element tags — the paper's
        observation that pruning also reduces document *complexity*, which
        is what lets engines process pruned documents larger than the
        unpruned maximum (Section 6, "Quite informative as well...")."""
        if not self.distinct_tags_in:
            return 0.0
        return 1.0 - len(self.distinct_tags_out) / len(self.distinct_tags_in)


def measure_document(document: Document) -> tuple[int, int, int, set[str]]:
    """(elements, texts, attributes, distinct tags) of a document."""
    elements = texts = attributes = 0
    tags: set[str] = set()
    for node in document.iter():
        if isinstance(node, Element):
            elements += 1
            attributes += len(node.attributes)
            tags.add(node.tag)
        elif isinstance(node, Text):
            texts += 1
    return elements, texts, attributes, tags


def compare_documents(original: Document, pruned: Document) -> PruneStats:
    """Build stats from two in-memory documents (serialised sizes use the
    canonical serializer)."""
    from repro.xmltree.serializer import serialize

    stats = PruneStats()
    stats.elements_in, stats.texts_in, stats.attributes_in, stats.distinct_tags_in = measure_document(original)
    stats.elements_out, stats.texts_out, stats.attributes_out, stats.distinct_tags_out = measure_document(pruned)
    stats.bytes_in = len(serialize(original))
    stats.bytes_out = len(serialize(pruned))
    return stats
