"""Pipeline observability: nestable spans, counters, pluggable sinks.

The paper's central empirical claim is quantitative — pruning time is
"diluted in the parsing/validation phase" and memory drops with the
projector's selectivity (Section 6) — so every pipeline stage must be able
to report what it did and what it cost without ad-hoc ``time.perf_counter``
calls scattered through the code.  This module is that substrate:

* :class:`Tracer` — hands out nestable timed :class:`Span`\\ s
  (``with tracer.span("prune", doc=path):``) and aggregates monotonic
  counters and gauges (bytes in/out, nodes kept/skipped, cache hits);
* sinks — :class:`MemorySink` (tests), :class:`JsonlSink` (one JSON object
  per line, the format ``--trace-out`` and the benchmarks share) and
  :class:`SummarySink` (human-readable roll-up, ``--metrics``);
* a module-level **no-op default**: until :func:`configure` installs a real
  tracer, :func:`get_tracer` returns a shared :class:`NullTracer` whose
  spans and counters do nothing, so the disabled path costs one attribute
  check per *stage*, never per node.

Instrumented stages accumulate hot-loop quantities locally (e.g. in
:class:`~repro.projection.stats.PruneStats`) and attach them to a span
once, on exit — tracing on or off, no per-token tracer calls ever happen.

Record format (what sinks receive, and what JSONL lines contain)::

    {"type": "span", "name": "prune", "seconds": 0.123, "start": ...,
     "depth": 1, "parent": "load", "attrs": {...}, "counters": {...}}
    {"type": "counter", "name": "cache.hits", "value": 42}
    {"type": "gauge", "name": "load.model_bytes", "value": 1048576}
    {"type": "histogram", "name": "service.request_seconds", "count": 120,
     "mean": ..., "min": ..., "max": ..., "p50": ..., "p95": ..., "p99": ...}

Counter, gauge and histogram records are emitted as aggregate totals on
:func:`flush` (and by :func:`shutdown`); span records are emitted as each
span closes.  Histogram quantiles are linearly interpolated
(:func:`quantile`); :class:`Histogram` is also usable standalone, which is
how the projection service reports its latency distribution natively.
"""

from __future__ import annotations

import atexit
import contextlib
import json
import math
import os
import random
import sys
import time
from typing import IO, Any, Iterator, Sequence

__all__ = [
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "NullTracer",
    "Span",
    "SummarySink",
    "SummaryFormatter",
    "Tracer",
    "absorb",
    "capture",
    "configure",
    "count",
    "counter",
    "disable",
    "enabled",
    "flush",
    "gauge",
    "get_tracer",
    "observe",
    "quantile",
    "shutdown",
    "span",
    "timed",
]


# -- distribution math -------------------------------------------------------


def quantile(samples: Sequence[float], q: float) -> float:
    """Linearly-interpolated quantile of ``samples`` at ``q`` in [0, 1].

    Uses the "inclusive" method (rank ``q * (n - 1)`` interpolated between
    the two nearest order statistics) — the same cut points as
    ``statistics.quantiles(..., method="inclusive")`` and numpy's default.
    Nearest-rank selection via ``round(q * (n - 1))`` is *not* equivalent:
    banker's rounding snaps to whichever neighbouring sample is nearer,
    which misreports tail percentiles (p95/p99) badly on small sample
    counts.  Every latency figure in the repo goes through this function.
    """
    if not samples:
        raise ValueError("quantile() of no samples")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = q * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class Histogram:
    """A streaming distribution metric: observe values, read interpolated
    quantiles.

    Keeps exact min/max/count/sum plus a bounded reservoir of samples
    (uniform reservoir sampling, deterministic seed) so a long-running
    service can report p50/p95/p99 latency without unbounded memory.
    Below ``limit`` observations the quantiles are exact.
    """

    __slots__ = ("name", "limit", "count", "total", "minimum", "maximum",
                 "_samples", "_rng")

    def __init__(self, name: str, limit: int = 8192) -> None:
        if limit < 1:
            raise ValueError("histogram reservoir limit must be >= 1")
        self.name = name
        self.limit = limit
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._samples: list[float] = []
        self._rng = random.Random(0x5EED)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self._samples) < self.limit:
            self._samples.append(value)
        else:
            index = self._rng.randrange(self.count)
            if index < self.limit:
                self._samples[index] = value

    def quantile(self, q: float) -> float:
        return quantile(self._samples, q)

    def snapshot(self) -> dict[str, Any]:
        """The JSON-ready summary (``count`` is 0 when nothing was seen)."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.total / self.count,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def record(self) -> dict[str, Any]:
        return {"type": "histogram", "name": self.name, **self.snapshot()}

    def clear(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._samples.clear()


# -- spans -------------------------------------------------------------------


class Span:
    """One timed region of the pipeline.

    Use as a context manager (the normal case) or drive
    :meth:`start`/:meth:`finish` manually.  Attach stage quantities with
    :meth:`count` and :meth:`set`; they land in the emitted record's
    ``counters`` and ``attrs`` maps.
    """

    __slots__ = ("name", "attrs", "counters", "started", "seconds", "_tracer", "parent", "depth")

    def __init__(
        self,
        name: str,
        attrs: dict[str, Any] | None = None,
        tracer: "Tracer | None" = None,
        parent: str | None = None,
        depth: int = 0,
    ) -> None:
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.counters: dict[str, int | float] = {}
        self.started: float = 0.0
        self.seconds: float = 0.0
        self.parent = parent
        self.depth = depth
        self._tracer = tracer

    @property
    def enabled(self) -> bool:
        """Whether this span reports to a live tracer (see
        :attr:`NullSpan.enabled`)."""
        return self._tracer is not None

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def count(self, name: str, amount: int | float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def merge_counters(self, counters: dict[str, int | float]) -> None:
        for name, amount in counters.items():
            self.count(name, amount)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "Span":
        self.started = time.perf_counter()
        return self

    def stop(self) -> "Span":
        """Freeze the duration now, without emitting — lets a stage time
        its hot region, then attach counters computed afterwards (which
        land in the record when the ``with`` block closes)."""
        self.seconds = time.perf_counter() - self.started
        return self

    def finish(self) -> "Span":
        if not self.seconds:
            self.seconds = time.perf_counter() - self.started
        if self._tracer is not None:
            self._tracer._close_span(self)
        return self

    def __enter__(self) -> "Span":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.finish()

    def record(self) -> dict[str, Any]:
        return {
            "type": "span",
            "name": self.name,
            "seconds": self.seconds,
            "start": self.started,
            "depth": self.depth,
            "parent": self.parent,
            "attrs": self.attrs,
            "counters": self.counters,
        }


class NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    enabled = False
    name = ""
    seconds = 0.0
    attrs: dict[str, Any] = {}
    counters: dict[str, int | float] = {}

    def set(self, **attrs: Any) -> "NullSpan":
        return self

    def count(self, name: str, amount: int | float = 1) -> None:
        pass

    def merge_counters(self, counters: dict[str, int | float]) -> None:
        pass

    def start(self) -> "NullSpan":
        return self

    def stop(self) -> "NullSpan":
        return self

    def finish(self) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = NullSpan()


# -- sinks -------------------------------------------------------------------


class MemorySink:
    """Collects records in a list — the test double."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def record(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    # -- conveniences for assertions ------------------------------------

    def spans(self, name: str | None = None) -> list[dict[str, Any]]:
        return [
            r for r in self.records
            if r["type"] == "span" and (name is None or r["name"] == name)
        ]

    def counters(self) -> dict[str, int | float]:
        return {
            r["name"]: r["value"] for r in self.records if r["type"] == "counter"
        }

    def gauges(self) -> dict[str, int | float]:
        return {r["name"]: r["value"] for r in self.records if r["type"] == "gauge"}

    def histograms(self) -> dict[str, dict[str, Any]]:
        return {
            r["name"]: {k: v for k, v in r.items() if k not in ("type", "name")}
            for r in self.records
            if r["type"] == "histogram"
        }


class JsonlSink:
    """One JSON object per line, to a path or an open text stream.

    This is the on-disk trace format (``--trace-out``), shared with the
    benchmark reports so traces and ``BENCH_*`` numbers stay comparable.
    """

    def __init__(self, target: "str | IO[str]") -> None:
        if isinstance(target, str):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owned = True
        else:
            self._stream = target
            self._owned = False
        self._closed = False
        # Trailing trace lines must survive processes that never call
        # flush() explicitly — short-lived CLI runs, SIGTERM'd servers
        # whose drain path is the last thing that runs.  The pid guard
        # keeps forked children (worker pools) from flushing the
        # parent's buffered lines a second time at their own exit.
        self._pid = os.getpid()
        atexit.register(self._atexit_close)

    def _atexit_close(self) -> None:
        if os.getpid() == self._pid:
            self.close()
        elif self._owned and not self._closed:
            # A forked child exiting normally: its inherited copy of the
            # buffer holds lines the parent already owns, and interpreter
            # finalization would flush them a second time.  Closing the
            # child's descriptor first makes that flush fail, discarding
            # the duplicate (the parent's fd is untouched — fork copied
            # the descriptor table).
            self._closed = True
            with contextlib.suppress(Exception):
                os.close(self._stream.fileno())
            with contextlib.suppress(Exception):
                self._stream.close()

    def record(self, record: dict[str, Any]) -> None:
        self._stream.write(json.dumps(record, sort_keys=True, default=_jsonable))
        self._stream.write("\n")

    def flush(self) -> None:
        if not self._closed:
            self._stream.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self._atexit_close)
        self._stream.flush()
        if self._owned:
            self._stream.close()


def _jsonable(value: Any) -> Any:
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)


class SummaryFormatter:
    """Rolls span/counter records up into a short human-readable report."""

    def __init__(self) -> None:
        #: name -> [count, total seconds, max seconds]
        self._spans: dict[str, list[float]] = {}
        self._counters: dict[str, int | float] = {}
        self._gauges: dict[str, int | float] = {}
        self._histograms: dict[str, dict[str, Any]] = {}

    def add(self, record: dict[str, Any]) -> None:
        kind = record["type"]
        if kind == "span":
            entry = self._spans.setdefault(record["name"], [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += record["seconds"]
            entry[2] = max(entry[2], record["seconds"])
            for name, value in record["counters"].items():
                key = f"{record['name']}.{name}"
                self._counters[key] = self._counters.get(key, 0) + value
        elif kind == "counter":
            self._counters[record["name"]] = record["value"]
        elif kind == "gauge":
            self._gauges[record["name"]] = record["value"]
        elif kind == "histogram":
            self._histograms[record["name"]] = record

    def lines(self) -> Iterator[str]:
        if self._spans:
            yield "spans (count / total / max):"
            for name in sorted(self._spans):
                count, total, peak = self._spans[name]
                yield (
                    f"  {name:<24s} {int(count):6d}  "
                    f"{total * 1000:10.1f} ms  {peak * 1000:10.1f} ms"
                )
        if self._counters:
            yield "counters:"
            for name in sorted(self._counters):
                yield f"  {name:<40s} {self._counters[name]}"
        if self._gauges:
            yield "gauges:"
            for name in sorted(self._gauges):
                yield f"  {name:<40s} {self._gauges[name]}"
        if self._histograms:
            yield "histograms (count / p50 / p95 / p99):"
            for name in sorted(self._histograms):
                record = self._histograms[name]
                if not record.get("count"):
                    yield f"  {name:<24s}      0"
                    continue
                yield (
                    f"  {name:<24s} {record['count']:6d}  "
                    f"{record['p50'] * 1000:10.2f} ms  "
                    f"{record['p95'] * 1000:10.2f} ms  "
                    f"{record['p99'] * 1000:10.2f} ms"
                )


class SummarySink:
    """Human-readable roll-up, written on :meth:`close` (``--metrics``)."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._formatter = SummaryFormatter()
        self._closed = False

    def record(self, record: dict[str, Any]) -> None:
        self._formatter.add(record)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        lines = list(self._formatter.lines())
        if lines:
            self._stream.write("-- metrics " + "-" * 28 + "\n")
            for line in lines:
                self._stream.write(line + "\n")
            self._stream.flush()


# -- tracers -----------------------------------------------------------------


class Tracer:
    """Live tracer: spans nest via an explicit stack, counters aggregate.

    Not thread-safe by design — the pipeline is single-threaded and the
    per-event cost of locks would defeat the purpose.  Use one tracer per
    worker if that ever changes.
    """

    enabled = True

    def __init__(self, *sinks: Any) -> None:
        self.sinks: list[Any] = list(sinks)
        self._counters: dict[str, int | float] = {}
        self._gauges: dict[str, int | float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._stack: list[Span] = []

    # -- spans -----------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        parent = self._stack[-1].name if self._stack else None
        span = Span(name, attrs, tracer=self, parent=parent, depth=len(self._stack))
        self._stack.append(span)
        return span

    def _close_span(self, span: Span) -> None:
        # Tolerate out-of-order finishes (a caller keeping a span object
        # around): pop up to and including the span if present.
        if span in self._stack:
            while self._stack:
                if self._stack.pop() is span:
                    break
        self._emit(span.record())

    # -- counters and gauges ---------------------------------------------

    def count(self, name: str, amount: int | float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: int | float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Feed one sample into the named :class:`Histogram` (created on
        first use); the aggregate record is emitted on :meth:`flush`."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        histogram.observe(value)

    @property
    def counters(self) -> dict[str, int | float]:
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, int | float]:
        return dict(self._gauges)

    @property
    def histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    # -- cross-process merging -------------------------------------------

    def emit(self, record: dict[str, Any]) -> None:
        """Feed one already-built record straight to the sinks (used to
        replay records captured in another process)."""
        self._emit(record)

    def absorb(
        self,
        records: "list[dict[str, Any]] | tuple[dict[str, Any], ...]" = (),
        counters: dict[str, int | float] | None = None,
        gauges: dict[str, int | float] | None = None,
    ) -> None:
        """Merge another tracer's output into this one.

        Worker processes cannot share the parent's tracer, so they trace
        into a local :class:`MemorySink`, ship ``(records, counters,
        gauges)`` back, and the parent absorbs them: span records are
        re-emitted to this tracer's sinks verbatim, counters accumulate
        into the aggregates, gauges overwrite (last writer wins, as for
        local gauges).
        """
        for record in records:
            self._emit(record)
        if counters:
            for name, amount in counters.items():
                self.count(name, amount)
        if gauges:
            for name, value in gauges.items():
                self.gauge(name, value)

    # -- sink plumbing ---------------------------------------------------

    def _emit(self, record: dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.record(record)

    def flush(self) -> None:
        """Emit aggregate counter/gauge/histogram records and flush every
        sink."""
        for name in sorted(self._counters):
            self._emit({"type": "counter", "name": name, "value": self._counters[name]})
        for name in sorted(self._gauges):
            self._emit({"type": "gauge", "name": name, "value": self._gauges[name]})
        for name in sorted(self._histograms):
            self._emit(self._histograms[name].record())
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        self.flush()
        for sink in self.sinks:
            sink.close()


class NullTracer:
    """The zero-cost default: every operation is a constant no-op."""

    enabled = False
    sinks: list[Any] = []
    counters: dict[str, int | float] = {}
    gauges: dict[str, int | float] = {}
    histograms: dict[str, Histogram] = {}

    def span(self, name: str, **attrs: Any) -> NullSpan:
        return _NULL_SPAN

    def count(self, name: str, amount: int | float = 1) -> None:
        pass

    def gauge(self, name: str, value: int | float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def emit(self, record: dict[str, Any]) -> None:
        pass

    def absorb(
        self,
        records: "list[dict[str, Any]] | tuple[dict[str, Any], ...]" = (),
        counters: dict[str, int | float] | None = None,
        gauges: dict[str, int | float] | None = None,
    ) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


_NULL_TRACER = NullTracer()
_tracer: "Tracer | NullTracer" = _NULL_TRACER


# -- module-level façade -----------------------------------------------------


def get_tracer() -> "Tracer | NullTracer":
    """The process-wide tracer (the no-op one unless :func:`configure`\\ d)."""
    return _tracer


def enabled() -> bool:
    return _tracer.enabled


def configure(*sinks: Any) -> Tracer:
    """Install (and return) a live tracer reporting to ``sinks``.

    Replaces any previously configured tracer (which is closed first).
    """
    global _tracer
    if _tracer.enabled:
        _tracer.close()
    _tracer = Tracer(*sinks)
    return _tracer


def disable() -> None:
    """Close the live tracer (flushing its sinks) and restore the no-op."""
    global _tracer
    if _tracer.enabled:
        _tracer.close()
    _tracer = _NULL_TRACER


def shutdown() -> None:
    """Alias of :func:`disable` with CLI-friendly naming."""
    disable()


def span(name: str, **attrs: Any) -> "Span | NullSpan":
    """A span on the current tracer (no-op span while disabled)."""
    return _tracer.span(name, **attrs)


def timed(name: str, **attrs: Any) -> Span:
    """A span that *always* measures wall time, reporting to the tracer
    only if one is configured.

    Stages whose results carry durations (analysis, loading, query
    execution) need the measurement regardless of tracing; this keeps
    their timing and their trace in one place.
    """
    tracer = _tracer
    if tracer.enabled:
        return tracer.span(name, **attrs)  # type: ignore[return-value]
    return Span(name, attrs)


def count(name: str, amount: int | float = 1) -> None:
    _tracer.count(name, amount)


def gauge(name: str, value: int | float) -> None:
    _tracer.gauge(name, value)


def counter(name: str) -> int | float:
    """The current aggregate value of one counter on the live tracer
    (``0`` while tracing is disabled or before the first increment).
    Gives subsystems that keep *contract* counters — e.g. the attestation
    ledger's ``ledger.hits`` / ``ledger.records`` — a read-back without
    reaching into tracer internals."""
    return _tracer.counters.get(name, 0)


def observe(name: str, value: float) -> None:
    """One sample into the named histogram on the current tracer (no-op
    while tracing is disabled)."""
    _tracer.observe(name, value)


def flush() -> None:
    _tracer.flush()


def absorb(
    records: "list[dict[str, Any]] | tuple[dict[str, Any], ...]" = (),
    counters: dict[str, int | float] | None = None,
    gauges: dict[str, int | float] | None = None,
) -> None:
    """Merge records/counters captured elsewhere (typically a worker
    process) into the current tracer; no-op while tracing is disabled."""
    _tracer.absorb(records, counters, gauges)


class capture:
    """Context manager for tests: installs a fresh tracer with a
    :class:`MemorySink` and restores the previous tracer on exit::

        with obs.capture() as sink:
            ...
        assert sink.spans("prune")
    """

    def __init__(self, *extra_sinks: Any) -> None:
        self._extra = extra_sinks
        self._previous: "Tracer | NullTracer | None" = None
        self.sink = MemorySink()

    def __enter__(self) -> MemorySink:
        global _tracer
        self._previous = _tracer
        _tracer = Tracer(self.sink, *self._extra)
        return self.sink

    def __exit__(self, exc_type, exc, tb) -> None:
        global _tracer
        _tracer.flush()
        _tracer = self._previous if self._previous is not None else _NULL_TRACER
