"""Type-based XML projection — a reproduction of Benzaken, Castagna,
Colazzo & Nguyên, "Type-Based XML Projection", VLDB 2006.

The package surface is the workload API: load a grammar, analyze a
workload (queries or an extract spec), then prune or extract in one
streaming pass.  Everything else lives in its submodule
(``repro.dtd``, ``repro.projection``, ``repro.xpath``, ...).

Quickstart::

    from repro import ExtractSpec, analyze, extract, load_grammar, prune

    grammar = load_grammar(DTD_TEXT)            # DTD text, path, or XML
    result = analyze(grammar, ["//book[author='Dante']/title"])
    pruned = prune(XML_TEXT, grammar, result.projector)

    spec = ExtractSpec(rows="/bib/book",
                       fields={"title": "title/text()", "isbn": "@isbn"})
    rows = extract(XML_TEXT, grammar, spec).records

See README.md for the full tour and DESIGN.md for the paper-to-module map.
"""

import warnings as _warnings

from repro.api import PruneOptions, PruneResult, prune
from repro.core.pipeline import AnalysisResult, analyze
from repro.errors import StrayDocumentError, UnsupportedSchemaError
from repro.extract.api import ExtractOptions, ExtractResult
from repro.extract.api import extract as extract  # binds over the submodule name
from repro.extract.spec import ExtractSpec
from repro.limits import Limits
from repro.loading import load_grammar
from repro.parallel import BatchError, BatchResult, extract_many, prune_many
from repro.schema.infer import InferredGrammar, infer_grammar

__version__ = "1.0.0"

__all__ = [
    "AnalysisResult",
    "BatchError",
    "BatchResult",
    "ExtractOptions",
    "ExtractResult",
    "ExtractSpec",
    "InferredGrammar",
    "Limits",
    "PruneOptions",
    "PruneResult",
    "StrayDocumentError",
    "UnsupportedSchemaError",
    "__version__",
    "analyze",
    "extract",
    "extract_many",
    "infer_grammar",
    "load_grammar",
    "prune",
    "prune_many",
]

#: Pre-1.0-surface names that used to be re-exported here, mapped to the
#: submodule that owns them.  Each resolves lazily (PEP 562) with a
#: DeprecationWarning naming the canonical import — the strict-CI job
#: runs with ``-W error::DeprecationWarning`` to keep the repo itself
#: off this path.
_DEPRECATED = {
    "CacheStats": "repro.core.cache",
    "DeadlineExceeded": "repro.errors",
    "EncodingError": "repro.errors",
    "FastPruner": "repro.projection.fastpath",
    "Grammar": "repro.dtd.grammar",
    "Interpretation": "repro.dtd.validator",
    "LimitExceeded": "repro.errors",
    "ProjectorCache": "repro.core.cache",
    "PruneTable": "repro.projection.prunetable",
    "QueryEngine": "repro.engine.executor",
    "ReproError": "repro.errors",
    "ResourceError": "repro.errors",
    "XPathEvaluator": "repro.xpath.evaluator",
    "XQueryEvaluator": "repro.xquery.evaluator",
    "analyze_grammar": "repro.dtd.properties",
    "analyze_query": "repro.core.pipeline",
    "analyze_xquery": "repro.core.pipeline",
    "compile_prune_table": "repro.projection.prunetable",
    "default_cache": "repro.core.cache",
    "grammar_fingerprint": "repro.core.cache",
    "grammar_from_dtd": "repro.dtd.grammar",
    "grammar_from_text": "repro.dtd.grammar",
    "infer_projector": "repro.core.projector",
    "infer_type": "repro.core.inference",
    "looks_like_xquery": "repro.querylang",
    "materialized_projector": "repro.core.projector",
    "parse_document": "repro.xmltree.builder",
    "parse_dtd": "repro.dtd.parser",
    "prune_document": "repro.projection.tree",
    "prune_events": "repro.projection.streaming",
    "prune_file": "repro.projection.streaming",
    "prune_stream": "repro.projection.streaming",
    "prune_string": "repro.projection.streaming",
    "serialize": "repro.xmltree.serializer",
    "type_of_query": "repro.core.pipeline",
    "validate": "repro.dtd.validator",
}


def __getattr__(name: str):
    home = _DEPRECATED.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    _warnings.warn(
        f"importing {name!r} from the top-level 'repro' package is "
        f"deprecated; use 'from {home} import {name}' instead",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(home), name)


def __dir__():
    return sorted(set(globals()) | set(_DEPRECATED))
