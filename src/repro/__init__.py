"""Type-based XML projection — a reproduction of Benzaken, Castagna,
Colazzo & Nguyên, "Type-Based XML Projection", VLDB 2006.

Quickstart::

    from repro import grammar_from_text, parse_document, validate
    from repro import analyze, prune_document

    grammar = grammar_from_text(DTD_TEXT, "bib")
    document = parse_document(XML_TEXT)
    interpretation = validate(document, grammar)
    result = analyze(grammar, ["//book[author='Dante']/title"])
    pruned = prune_document(document, interpretation, result.projector)

See README.md for the full tour and DESIGN.md for the paper-to-module map.
"""

from repro import obs
from repro.api import PruneOptions, PruneResult, prune
from repro.core.cache import CacheStats, ProjectorCache, default_cache, grammar_fingerprint
from repro.core.inference import infer_type
from repro.core.pipeline import (
    AnalysisResult,
    analyze,
    analyze_query,
    analyze_xquery,
    type_of_query,
)
from repro.core.projector import infer_projector, materialized_projector
from repro.dtd.grammar import Grammar, grammar_from_dtd, grammar_from_text
from repro.dtd.parser import parse_dtd
from repro.dtd.properties import analyze_grammar
from repro.dtd.validator import Interpretation, validate
from repro.engine.executor import QueryEngine
from repro.errors import (
    DeadlineExceeded,
    EncodingError,
    LimitExceeded,
    ReproError,
    ResourceError,
)
from repro.limits import Limits
from repro.parallel import BatchError, BatchResult, prune_many
from repro.projection.fastpath import FastPruner
from repro.projection.prunetable import PruneTable, compile_prune_table
from repro.projection.streaming import prune_events, prune_file, prune_stream, prune_string
from repro.querylang import looks_like_xquery
from repro.projection.tree import prune_document
from repro.xmltree.builder import parse_document
from repro.xmltree.serializer import serialize
from repro.xpath.evaluator import XPathEvaluator
from repro.xquery.evaluator import XQueryEvaluator

__version__ = "1.0.0"

__all__ = [
    "AnalysisResult",
    "BatchError",
    "BatchResult",
    "CacheStats",
    "DeadlineExceeded",
    "EncodingError",
    "FastPruner",
    "Grammar",
    "Interpretation",
    "LimitExceeded",
    "Limits",
    "ProjectorCache",
    "PruneTable",
    "QueryEngine",
    "ReproError",
    "ResourceError",
    "XPathEvaluator",
    "XQueryEvaluator",
    "__version__",
    "analyze",
    "analyze_grammar",
    "analyze_query",
    "analyze_xquery",
    "compile_prune_table",
    "default_cache",
    "grammar_fingerprint",
    "grammar_from_dtd",
    "grammar_from_text",
    "infer_projector",
    "infer_type",
    "looks_like_xquery",
    "materialized_projector",
    "obs",
    "parse_document",
    "parse_dtd",
    "prune",
    "PruneOptions",
    "PruneResult",
    "prune_document",
    "prune_events",
    "prune_file",
    "prune_many",
    "prune_stream",
    "prune_string",
    "serialize",
    "type_of_query",
    "validate",
]
