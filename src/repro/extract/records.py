"""Record encoders: one record dict in, one JSONL/CSV line out.

Both the fused streaming extractor and the tree-walk reference funnel
their records through the same writer, so the byte-identity the
differential tests assert reduces to record-value identity — the encoder
cannot be the place the two paths diverge.

NULL handling is the spec's: a missing field (``None`` from the
assembler) is spelled as ``spec.null`` when one was declared, else as
JSON ``null`` in JSONL and the empty string in CSV (CSV has no other way
to write "absent").
"""

from __future__ import annotations

import csv
import json
from typing import IO, Any, Mapping

from repro.errors import ReproError
from repro.extract.spec import ExtractSpec

__all__ = ["FORMATS", "RecordWriter", "record_writer"]

FORMATS = ("jsonl", "csv")


class RecordWriter:
    """Base: substitutes NULLs and tracks the substituted record."""

    def __init__(self, spec: ExtractSpec, sink: IO[str]) -> None:
        self.spec = spec
        self.sink = sink
        self._names = tuple(spec.fields)

    def start(self) -> None:
        """Write any prologue (the CSV header row)."""

    def write(self, record: Mapping[str, Any]) -> dict[str, Any]:
        """Encode one record; returns the NULL-substituted dict that was
        written (column order = declared field order)."""
        raise NotImplementedError


class JsonlWriter(RecordWriter):
    def write(self, record: Mapping[str, Any]) -> dict[str, Any]:
        null = self.spec.null
        row = {
            name: (record[name] if record[name] is not None else null)
            for name in self._names
        }
        self.sink.write(
            json.dumps(row, ensure_ascii=False, separators=(",", ":")) + "\n"
        )
        return row


class CsvWriter(RecordWriter):
    def __init__(self, spec: ExtractSpec, sink: IO[str]) -> None:
        super().__init__(spec, sink)
        self._writer = csv.writer(sink, lineterminator="\n")

    def start(self) -> None:
        self._writer.writerow(self._names)

    def write(self, record: Mapping[str, Any]) -> dict[str, Any]:
        # CSV cannot distinguish NULL from "" — an undeclared NULL is
        # spelled empty, which is why the spec's ``null`` knob exists.
        null = self.spec.null if self.spec.null is not None else ""
        row = {
            name: (record[name] if record[name] is not None else null)
            for name in self._names
        }
        self._writer.writerow([row[name] for name in self._names])
        return row


_WRITERS = {"jsonl": JsonlWriter, "csv": CsvWriter}


def record_writer(format: str, spec: ExtractSpec, sink: IO[str]) -> RecordWriter:
    """Build the writer for ``format`` (``"jsonl"`` or ``"csv"``)."""
    try:
        writer = _WRITERS[format]
    except KeyError:
        raise ReproError(
            f"unknown extract format {format!r} (expected one of {FORMATS})"
        ) from None
    return writer(spec, sink)
