"""The unified public extraction API: one :func:`extract` for every source.

Mirrors :mod:`repro.api` (the ``prune`` facade) shape for shape::

    from repro import ExtractSpec, extract, load_grammar

    grammar = load_grammar("auction.dtd", root="site")
    spec = ExtractSpec(
        rows="/site/people/person",
        fields={"name": "name/text()", "city": "address/city/text()"},
        null="",
    )
    result = extract("auction.xml", grammar, spec)          # -> records+text
    extract("auction.xml", grammar, spec,
            out="people.csv", format="csv")                 # -> file

``source`` dispatch matches :func:`repro.prune`: markup string, input
path, open text stream, or an (unpruned) event iterable.  ``out=None``
collects both the encoded text and the record dicts; a path streams the
encoded records to a file (removed again on mid-stream failure); an
object with ``.write`` is streamed to.

The projector is inferred from the spec (row path ∪ absolutized field
paths) through the projector cache, keyed by the spec's content
fingerprint — repeated extractions of the same workload skip the static
analysis entirely.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass, replace
from typing import IO, TYPE_CHECKING, Any, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ledger import Ledger

from repro.core.cache import ProjectorCache, resolve_spec_projector
from repro.dtd.grammar import Grammar
from repro.errors import ReproError, StrayDocumentError, ValidationError
from repro.extract.records import FORMATS, record_writer
from repro.extract.spec import ExtractSpec
from repro.extract.stats import ExtractStats
from repro.extract.streaming import _extract_stream, _records_pass
from repro.limits import Limits, resolve_limits
from repro.xmltree.events import Event
from repro.xmltree.lexer import DEFAULT_CHUNK_SIZE

__all__ = ["ExtractOptions", "ExtractResult", "extract"]


@dataclass(slots=True, frozen=True)
class ExtractOptions:
    """Behavioural knobs shared by every :func:`extract` form.

    * ``format`` — output encoding, ``"jsonl"`` (default) or ``"csv"``;
    * ``fast`` — use the fused scanner-level pipeline (record assembly
      rides the bulk scan; records are identical to the event pipeline's,
      ``False`` exists for benchmarking and debugging);
    * ``chunk_size`` — read granularity for streaming sources;
    * ``limits`` — resource bounds for the pass, as in
      :class:`repro.api.PruneOptions`;
    * ``fallback`` — the fast path's graceful degradation to the event
      pipeline, as in :class:`repro.api.PruneOptions` (``"force"`` skips
      the fast attempt — the differential tests' knob).
    """

    format: str = "jsonl"
    fast: bool = True
    chunk_size: int = DEFAULT_CHUNK_SIZE
    limits: "Limits | str | None" = None
    fallback: "bool | str" = True

    def __post_init__(self) -> None:
        if self.format not in FORMATS:
            raise ReproError(
                f"unknown extract format {self.format!r} "
                f"(expected one of {FORMATS})"
            )

    # -- wire form (the service protocol ships options as JSON) -----------

    def to_wire(self) -> dict[str, Any]:
        """JSON-safe form: only the fields that differ from the defaults
        (``limits`` serializes as a profile name or a bounds dict)."""
        wire: dict[str, Any] = {}
        for name in ("format", "fast", "chunk_size", "fallback"):
            value = getattr(self, name)
            if value != getattr(DEFAULT_EXTRACT_OPTIONS, name):
                wire[name] = value
        if self.limits is not None:
            wire["limits"] = (
                self.limits if isinstance(self.limits, str) else self.limits.as_dict()
            )
        return wire

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "ExtractOptions":
        """Rebuild from :meth:`to_wire` output (unknown keys rejected so a
        client/server version skew fails loudly, not silently)."""
        fields = dict(wire)
        limits = fields.pop("limits", None)
        if isinstance(limits, dict):
            limits = Limits.from_dict(limits)
        unknown = set(fields) - {"format", "fast", "chunk_size", "fallback"}
        if unknown:
            raise ValueError(f"unknown extract option(s): {sorted(unknown)}")
        return cls(limits=limits, **fields)


DEFAULT_EXTRACT_OPTIONS = ExtractOptions()


@dataclass(slots=True)
class ExtractResult:
    """What one :func:`extract` call produced.

    ``stats`` always carries the :class:`~repro.extract.stats.ExtractStats`
    counters.  With ``out=None`` both ``records`` (the NULL-substituted
    dicts, column order = declared field order) and ``text`` (the encoded
    JSONL/CSV) are populated; with a path ``out`` only ``output_path``;
    with a stream ``out`` all three stay ``None`` — the encoded records
    went to the caller's sink.
    """

    stats: ExtractStats
    records: "list[dict[str, Any]] | None" = None
    text: str | None = None
    output_path: str | None = None

    def __iter__(self) -> Iterator[dict[str, Any]]:
        if self.records is None:
            raise TypeError(
                "this extract() result carries no records "
                "(output went to a file or stream)"
            )
        return iter(self.records)


def _resolve_extract_options(
    options: ExtractOptions | None,
    format: str | None,
    fast: bool | None,
    chunk_size: int | None,
    *,
    limits: "Limits | str | None" = None,
    fallback: "bool | str | None" = None,
) -> ExtractOptions:
    resolved = options if options is not None else DEFAULT_EXTRACT_OPTIONS
    overrides: dict[str, Any] = {}
    if format is not None:
        overrides["format"] = format
    if fast is not None:
        overrides["fast"] = fast
    if chunk_size is not None:
        overrides["chunk_size"] = chunk_size
    if limits is not None:
        overrides["limits"] = limits
    if fallback is not None:
        overrides["fallback"] = fallback
    return replace(resolved, **overrides) if overrides else resolved


def _is_markup(text: str) -> bool:
    return text.lstrip()[:1] == "<"


def extract(
    source: "str | os.PathLike[str] | IO[str] | Iterable[Event]",
    grammar: Grammar,
    spec: ExtractSpec,
    *,
    out: "str | os.PathLike[str] | IO[str] | None" = None,
    options: ExtractOptions | None = None,
    format: str | None = None,
    fast: bool | None = None,
    chunk_size: int | None = None,
    limits: "Limits | str | None" = None,
    fallback: "bool | str | None" = None,
    cache: ProjectorCache | None = None,
    ledger: "Ledger | None" = None,
    provenance: "dict[str, Any] | None" = None,
) -> ExtractResult:
    """Extract ``spec``'s records from ``source`` in one streaming pass.

    See the module docstring for the source/out dispatch table.  Returns
    an :class:`ExtractResult`; memory stays O(row depth + field count)
    regardless of source size — no document tree is ever built.

    ``ledger=`` attests the run into a :class:`repro.ledger.Ledger`
    (keyed by grammar/spec/limits fingerprints plus the input content
    hash) and serves previously-recorded results for identical runs from
    stored bytes — by Thm 4.5 byte-identity the served records and text
    equal what a fresh extraction would produce.  ``provenance=`` merges
    extra context (e.g. the grammar's DTD path) into the recorded entry
    so ``repro-xml verify-ledger`` can replay it later.  Event-stream
    sources and open-stream inputs bypass the ledger (their bytes cannot
    be hashed without consuming them).
    """
    opts = _resolve_extract_options(
        options, format, fast, chunk_size, limits=limits, fallback=fallback
    )
    resolved_limits = resolve_limits(opts.limits)
    if getattr(grammar, "on_stray", None) is not None:
        # Inferred grammars: records from a stray document would be
        # silently wrong (Theorem 4.5 only covers accepted documents),
        # and a verbatim copy has no tabular analogue — so extraction
        # pre-validates and *refuses* strays under either policy.
        source = _prevalidate_inferred(source, grammar)
    projector = resolve_spec_projector(grammar, spec, cache=cache)

    # Event-stream source: prune the events, assemble records from them.
    if not isinstance(source, (str, os.PathLike)) and not hasattr(source, "read"):
        if not hasattr(source, "__iter__"):
            raise TypeError(f"cannot extract from source of type {type(source).__name__}")
        return _extract_from_events(
            source, grammar, projector, spec, opts, resolved_limits, out
        )

    is_path = isinstance(source, os.PathLike) or (
        isinstance(source, str) and not _is_markup(source)
    )
    out_is_path = out is not None and not hasattr(out, "write")

    # Static short-circuit: a row path the satisfiability pre-pass proves
    # empty under the DTD yields zero rows from every grammar-valid
    # document — emit the (empty) encoding without opening the source.
    from repro.static.sat import classify_query

    if not classify_query(grammar, spec.rows, language="xpath").satisfiable:
        return _short_circuit_empty(source, spec, opts, out, is_path, out_is_path)

    led = None
    if ledger is not None:
        from repro.api import _ledger_begin
        from repro.ledger.canonical import hash_canonical

        led = _ledger_begin(
            ledger, source, grammar, opts, resolved_limits, provenance,
            is_path, None,
            workload_fp=hash_canonical(
                {"format": opts.format, "spec": spec.fingerprint()}
            ),
        )
        if led is not None:
            led[1].setdefault("spec", spec.to_wire())
            led[1].setdefault("format", opts.format)
            served = _serve_extract_hit(ledger, led[0], out, out_is_path)
            if served is not None:
                return served

    stats = ExtractStats()
    if isinstance(source, str) and not is_path:
        # "replace": hostile markup may contain lone surrogates, which
        # must surface as the pipeline's structured error (if at all),
        # not as a crash in this bookkeeping line.
        stats.bytes_in = len(source.encode("utf-8", "replace"))

    def run(
        stream_source: "str | IO[str]",
        sink: IO[str],
        collect: "list[dict[str, Any]] | None",
    ) -> None:
        _extract_stream(
            stream_source, sink, grammar, projector, spec,
            format=opts.format, fast=opts.fast, chunk_size=opts.chunk_size,
            stats=stats, limits=resolved_limits, fallback=opts.fallback,
            collect=collect,
        )

    def with_source(sink: IO[str], collect: "list[dict[str, Any]] | None") -> None:
        if is_path:
            path = os.fspath(source)  # type: ignore[arg-type]
            stats.bytes_in = os.path.getsize(path)
            with open(path, "r", encoding="utf-8") as handle:
                run(handle, sink, collect)
        else:
            run(source, sink, collect)  # type: ignore[arg-type]

    if out is None:
        collector = io.StringIO()
        records: list[dict[str, Any]] = []
        with_source(collector, records)
        text = collector.getvalue()
        if led is not None:
            from repro.api import _ledger_record

            _ledger_record(ledger, led, "extract", stats, text=text, records=records)
        return ExtractResult(stats=stats, records=records, text=text)
    if out_is_path:
        from repro.projection.streaming import _open_output

        # _open_output keeps the remove-partial-output contract and, when
        # the path cannot even be opened (unwritable), leaves any
        # pre-existing file there untouched.
        out_path = os.fspath(out)  # type: ignore[arg-type]
        with _open_output(out_path) as sink:
            with_source(sink, None)
        if led is not None:
            from repro.api import _ledger_record

            _ledger_record(ledger, led, "extract", stats, output_path=out_path)
        return ExtractResult(stats=stats, output_path=out_path)
    if led is not None:
        from repro.api import _ledger_record
        from repro.ledger.canonical import HashingSink

        tee = HashingSink(tee=out)  # type: ignore[arg-type]
        with_source(tee, None)  # type: ignore[arg-type]
        _ledger_record(ledger, led, "extract", stats, output_hash=tee.hexdigest())
        return ExtractResult(stats=stats)
    with_source(out, None)  # type: ignore[arg-type]
    return ExtractResult(stats=stats)


def _prevalidate_inferred(
    source: "str | os.PathLike[str] | IO[str] | Iterable[Event]",
    grammar: Grammar,
) -> "str | os.PathLike[str]":
    """The extraction half of the inferred-grammar escape hatch: a
    dedicated validation pass over the source before any record is
    assembled.  A stray document raises
    :class:`~repro.errors.StrayDocumentError` regardless of the
    grammar's ``on_stray`` policy (``"copy"`` only makes sense for
    pruning); open streams are buffered so the extraction can replay
    them, event streams are refused (they cannot be replayed)."""
    from repro.dtd.validator import EventValidator
    from repro.xmltree.parser import parse_events

    if hasattr(source, "read"):
        source = source.read()  # type: ignore[union-attr]
    elif not isinstance(source, (str, os.PathLike)):
        raise ReproError(
            "extract() against an inferred grammar needs a replayable "
            "source (markup, a path, or a stream) — not an event stream"
        )
    validator = EventValidator(grammar)
    try:
        if isinstance(source, os.PathLike) or not _is_markup(source):
            with open(os.fspath(source), "r", encoding="utf-8") as handle:
                for event in parse_events(handle):
                    validator.feed(event)
        else:
            for event in parse_events(source):
                validator.feed(event)
        validator.finish()
    except StrayDocumentError:
        raise
    except ValidationError as exc:
        from repro import obs

        obs.count("schema.strays")
        raise StrayDocumentError(str(exc), exc.node_id) from exc
    return source


def _serve_extract_hit(
    ledger: "Ledger",
    key: "tuple[str, str, str, str]",
    out: "str | os.PathLike[str] | IO[str] | None",
    out_is_path: bool,
) -> ExtractResult | None:
    """Serve a recorded, hash-verified extraction instead of re-scanning
    (the extract twin of :func:`repro.api._serve_prune_hit`): the stored
    records/text are byte-identical to a fresh run's by Thm 4.5."""
    hit = ledger.fetch(key, need_records=out is None)
    if hit is None:
        return None
    entry, payload = hit
    from repro.ledger.ledger import decode_stats

    stats = decode_stats(entry.stats)
    if not isinstance(stats, ExtractStats):  # pragma: no cover - defensive
        return None
    text = payload["text"]
    if out is None:
        return ExtractResult(
            stats=stats, records=list(payload["records"]), text=text
        )
    if out_is_path:
        from repro.projection.streaming import _open_output

        out_path = os.fspath(out)  # type: ignore[arg-type]
        with _open_output(out_path) as sink:
            sink.write(text)
        return ExtractResult(stats=stats, output_path=out_path)
    out.write(text)  # type: ignore[union-attr]
    return ExtractResult(stats=stats)


def _short_circuit_empty(
    source: "str | os.PathLike[str] | IO[str]",
    spec: ExtractSpec,
    opts: ExtractOptions,
    out: "str | os.PathLike[str] | IO[str] | None",
    is_path: bool,
    out_is_path: bool,
) -> ExtractResult:
    """Answer a provably-row-less workload without opening the document:
    the encoded form of zero records (nothing for JSONL, the bare header
    row for CSV), byte-identical to what the full scan emits when the
    row path matches nothing."""
    from repro import obs

    stats = ExtractStats()
    if is_path:
        stats.bytes_in = os.path.getsize(os.fspath(source))  # type: ignore[arg-type]
    elif isinstance(source, str):
        stats.bytes_in = len(source.encode("utf-8", "replace"))
    obs.count("static.short_circuits")

    def emit(sink: IO[str]) -> None:
        record_writer(opts.format, spec, sink).start()

    if out is None:
        collector = io.StringIO()
        emit(collector)
        text = collector.getvalue()
        stats.bytes_out = len(text.encode("utf-8"))
        return ExtractResult(stats=stats, records=[], text=text)
    if out_is_path:
        from repro.projection.streaming import _open_output

        out_path = os.fspath(out)  # type: ignore[arg-type]
        counter = io.StringIO()
        with _open_output(out_path) as sink:
            emit(counter)
            sink.write(counter.getvalue())
        stats.bytes_out = len(counter.getvalue().encode("utf-8"))
        return ExtractResult(stats=stats, output_path=out_path)
    counter = io.StringIO()
    emit(counter)
    out.write(counter.getvalue())  # type: ignore[union-attr]
    stats.bytes_out = len(counter.getvalue().encode("utf-8"))
    return ExtractResult(stats=stats)


def _extract_from_events(
    source: Iterable[Event],
    grammar: Grammar,
    projector: frozenset[str],
    spec: ExtractSpec,
    opts: ExtractOptions,
    resolved_limits: Limits,
    out: "str | os.PathLike[str] | IO[str] | None",
) -> ExtractResult:
    """Extraction over an already-parsed event stream (``fast`` is moot:
    event input already paid for parsing)."""
    from repro.obs import get_tracer
    from repro.projection.streaming import (
        StreamingPruner,
        _GovernedSink,
        _open_output,
    )

    stats = ExtractStats()
    guard = resolved_limits.guard()

    def run(sink: IO[str], collect: "list[dict[str, Any]] | None") -> None:
        tracer = get_tracer()
        with tracer.span("extract", mode="events", format=opts.format) as span:
            governed = _GovernedSink(sink, guard)
            pruned = StreamingPruner(grammar, projector, guard=guard).process(source)
            _records_pass(
                pruned, spec, record_writer(opts.format, spec, governed),
                stats, collect,
            )
            stats.bytes_out = governed.written
            span.merge_counters(stats.as_counters())

    if out is None:
        collector = io.StringIO()
        records: list[dict[str, Any]] = []
        run(collector, records)
        return ExtractResult(stats=stats, records=records, text=collector.getvalue())
    if not hasattr(out, "write"):
        out_path = os.fspath(out)  # type: ignore[arg-type]
        with _open_output(out_path) as sink:
            run(sink, None)
        return ExtractResult(stats=stats, output_path=out_path)
    run(out, None)  # type: ignore[arg-type]
    return ExtractResult(stats=stats)
