"""Tabular extraction: projection-driven streaming XML → records ETL.

Declares a tabular workload as an :class:`ExtractSpec` (row path + named
row-relative field paths + NULL spelling), infers the projector that
workload needs, and emits JSONL/CSV records in the same fused single
scan markup pruning uses — see :mod:`repro.extract.streaming` for the
one-pass assembler and :mod:`repro.extract.reference` for the tree-walk
oracle the differential tests compare it against.

Public surface (re-exported at package top level as ``repro.extract`` /
``repro.ExtractSpec`` / ``repro.ExtractOptions`` / ``repro.ExtractResult``):

* :class:`ExtractSpec` — the declared workload;
* :func:`extract` — the one-call facade (mirrors :func:`repro.prune`);
* :class:`ExtractOptions` / :class:`ExtractResult` — its knobs and
  return value;
* :class:`ExtractStats` — the pass counters.

Batch fan-out lives in :func:`repro.parallel.extract_many`; the service
op is ``extract`` (see :mod:`repro.service`).
"""

from repro.extract.api import ExtractOptions, ExtractResult, extract
from repro.extract.reference import extract_document, reference_records
from repro.extract.spec import ExtractSpec, FieldPath
from repro.extract.stats import ExtractStats
from repro.extract.streaming import iter_records

__all__ = [
    "ExtractOptions",
    "ExtractResult",
    "ExtractSpec",
    "ExtractStats",
    "FieldPath",
    "extract",
    "extract_document",
    "iter_records",
    "reference_records",
]
