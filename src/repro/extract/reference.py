"""Tree-walk reference extractor — the differential-testing oracle.

Evaluates an :class:`~repro.extract.spec.ExtractSpec` against a fully
parsed, *unpruned* document by plain tree navigation.  It shares no code
with the fused streaming assembler (different traversal, different data
model), so agreement between the two is evidence for both the assembler
and the projector inference behind it: the streaming path only ever sees
the pruned event stream, and equal records prove pruning discarded
nothing the workload needed (Theorem 4.5 applied to extraction).

This is also the "naive baseline" ``benchmarks/bench_extract.py``
measures the fused scan against: parse everything, walk the tree.
"""

from __future__ import annotations

from typing import IO

from repro.extract.spec import ExtractSpec, FieldPath
from repro.xmltree.nodes import Document, Element, Text

__all__ = ["extract_document", "reference_records"]


def _row_elements(document: Document, steps: tuple[str, ...]) -> list[Element]:
    """Elements at the absolute child-only path, in document order."""
    if document.root.tag != steps[0]:
        return []
    matches: list[Element] = [document.root]
    for step in steps[1:]:
        matches = [
            child for element in matches for child in element.find_children(step)
        ]
    return matches


def _first_match(row: Element, steps: tuple[str, ...]) -> Element | None:
    """First (document-order) element at the row-relative path."""
    matches: list[Element] = [row]
    for step in steps:
        matches = [
            child for element in matches for child in element.find_children(step)
        ]
        if not matches:
            return None
    return matches[0]


def _direct_text(element: Element) -> str:
    """Concatenated *direct* text children (the streaming assembler's
    depth-exact capture; whitespace runs included, so the document must
    be parsed with ``strip_whitespace=False`` to agree)."""
    return "".join(
        child.value for child in element.children if isinstance(child, Text)
    )


def _field_value(row: Element, field: FieldPath) -> str | None:
    element = _first_match(row, field.steps)
    if element is None:
        return None
    if field.kind == "attribute":
        return element.attributes.get(field.attribute)
    if field.kind == "text":
        return _direct_text(element)
    return element.text_value()


def extract_document(
    document: Document, spec: ExtractSpec
) -> list[dict[str, str | None]]:
    """All records of ``spec`` over an in-memory document (missing fields
    are ``None``; NULL substitution is the encoder's job, exactly as in
    the streaming path)."""
    fields = spec.compiled_fields()
    return [
        {field.name: _field_value(row, field) for field in fields}
        for row in _row_elements(document, spec.row_steps())
    ]


def reference_records(
    source: "str | IO[str]", spec: ExtractSpec
) -> list[dict[str, str | None]]:
    """Parse ``source`` in full (no pruning, no grammar, whitespace kept)
    and extract by tree walk — the end-to-end oracle and the benchmark
    baseline."""
    from repro.xmltree.builder import parse_document

    document = parse_document(source, strip_whitespace=False)
    return extract_document(document, spec)
