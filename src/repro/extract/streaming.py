"""Streaming record assembly — extraction fused into the pruning scan.

The paper's Definition 2.7 guarantees pruning is a single bufferless
one-pass traversal; this module rides record emission on that same pass.
The projector inferred from an :class:`~repro.extract.spec.ExtractSpec`
keeps exactly the row spine and the field subtrees, so the pruned event
stream :meth:`~repro.projection.fastpath.FastPruner.events` produces *is*
the tabular workload: :func:`iter_records` folds it into record dicts
with O(row depth + field count) state — no document tree, no second
pass.

Two stages, matching the spec's split:

* **row filter** — a tag stack tracks the absolute path of open kept
  elements; a row opens when the stack equals the row path (exact match,
  so a same-named element elsewhere in the projected stream never
  triggers a row);
* **field supply** — inside a row, each field waits for the *first*
  element matching its row-relative path, then captures its attribute,
  its direct text, or its whole-subtree text, and goes dormant.

The same graceful-degradation contract as markup pruning applies: the
fused scan falls back to the event pipeline (``parse_events`` →
:class:`~repro.projection.streaming.StreamingPruner`) on oversized
tokens, rewinding source, sink and stats first; ``fallback="force"``
skips the fast attempt outright so the differential tests can prove both
paths record-identical.
"""

from __future__ import annotations

from typing import IO, TYPE_CHECKING, Any, Iterable, Iterator

from repro.dtd.grammar import Grammar
from repro.errors import EncodingError, FastPathUnsupported, LimitExceeded
from repro.extract.records import record_writer
from repro.extract.spec import ExtractSpec, FieldPath
from repro.extract.stats import ExtractStats
from repro.obs import get_tracer
from repro.projection.fastpath import FastPruner
from repro.projection.streaming import (
    StreamingPruner,
    _GovernedSink,
    _stream_position,
)
from repro.xmltree.events import Characters, EndElement, Event, StartElement
from repro.xmltree.lexer import DEFAULT_CHUNK_SIZE, Source
from repro.xmltree.parser import parse_events

if TYPE_CHECKING:  # pragma: no cover
    from repro.limits import LimitGuard, Limits

__all__ = ["iter_records"]

_PENDING, _CAPTURING, _DONE = 0, 1, 2


class _FieldState:
    """Per-row capture state for one field (see module docstring)."""

    __slots__ = ("field", "phase", "depth", "subtree", "parts", "value")

    def __init__(self, field: FieldPath, row_event: StartElement) -> None:
        self.field = field
        self.depth = 0
        self.subtree = False
        self.parts: list[str] | None = None
        self.value: str | None = None
        if field.steps:
            self.phase = _PENDING
        elif field.kind == "attribute":
            # The row element's own attribute resolves immediately.
            self.value = row_event.attributes.get(field.attribute)
            self.phase = _DONE
        else:
            # "text()" on the row element: capture its direct text for
            # the whole row span (finished by the row's end tag).
            self.phase = _CAPTURING
            self.parts = []

    def on_start(self, rel: tuple[str, ...], event: StartElement) -> None:
        if self.phase is not _PENDING or self.field.steps != rel:
            return
        if self.field.kind == "attribute":
            self.value = event.attributes.get(self.field.attribute)
            self.phase = _DONE
        else:
            self.phase = _CAPTURING
            self.depth = len(rel)
            self.subtree = self.field.kind == "value"
            self.parts = []

    def on_text(self, rel_depth: int, text: str) -> None:
        if self.phase is not _CAPTURING:
            return
        if rel_depth == self.depth or (self.subtree and rel_depth > self.depth):
            self.parts.append(text)

    def on_end(self, rel_depth: int) -> None:
        # The captured element closes (depth 0 is the row itself, closed
        # by the row handler via finish()).
        if self.phase is _CAPTURING and self.depth == rel_depth and rel_depth:
            self.value = "".join(self.parts)
            self.phase = _DONE

    def finish(self) -> str | None:
        if self.phase is _DONE:
            return self.value
        if self.phase is _CAPTURING:  # row-level text() capture
            return "".join(self.parts)
        return None


def iter_records(
    events: Iterable[Event], spec: ExtractSpec
) -> Iterator[dict[str, str | None]]:
    """Fold a (pruned) event stream into record dicts, one per row
    element, fields in declared order; a missing field is ``None`` (NULL
    substitution happens in the encoder, not here)."""
    row_steps = list(spec.row_steps())
    row_depth = len(row_steps)
    fields = spec.compiled_fields()
    stack: list[str] = []
    states: list[_FieldState] | None = None
    for event in events:
        if isinstance(event, StartElement):
            stack.append(event.tag)
            if states is None:
                if len(stack) == row_depth and stack == row_steps:
                    states = [_FieldState(field, event) for field in fields]
            else:
                rel = tuple(stack[row_depth:])
                for state in states:
                    state.on_start(rel, event)
        elif isinstance(event, EndElement):
            if states is not None:
                if len(stack) == row_depth:
                    yield {
                        state.field.name: state.finish() for state in states
                    }
                    states = None
                else:
                    rel_depth = len(stack) - row_depth
                    for state in states:
                        state.on_end(rel_depth)
            stack.pop()
        elif isinstance(event, Characters):
            if states is not None:
                rel_depth = len(stack) - row_depth
                for state in states:
                    state.on_text(rel_depth, event.text)


# -- internal pipelines (used by the repro.extract facade) --------------------


def _records_pass(
    events: Iterable[Event],
    spec: ExtractSpec,
    writer,
    stats: ExtractStats,
    collect: "list[dict[str, Any]] | None",
) -> None:
    writer.start()
    width = len(spec.fields)
    for record in iter_records(events, spec):
        row = writer.write(record)
        nulls = sum(1 for value in record.values() if value is None)
        stats.rows_out += 1
        stats.nulls_out += nulls
        stats.fields_out += width - nulls
        if collect is not None:
            collect.append(row)


def _events_extract_pass(
    source: Source,
    sink: "IO[str] | _GovernedSink",
    grammar: Grammar,
    projector: frozenset[str],
    spec: ExtractSpec,
    format: str,
    chunk_size: int,
    stats: ExtractStats,
    guard: "LimitGuard | None",
    collect: "list[dict[str, Any]] | None",
) -> None:
    """The event pipeline: parse → prune → assemble → encode."""
    events = StreamingPruner(grammar, projector).process(
        parse_events(source, chunk_size, guard=guard)
    )
    _records_pass(events, spec, record_writer(format, spec, sink), stats, collect)


def _fused_extract_pass(
    source: Source,
    sink: IO[str],
    grammar: Grammar,
    projector: frozenset[str],
    spec: ExtractSpec,
    format: str,
    chunk_size: int,
    stats: ExtractStats,
    guard: "LimitGuard | None",
    fallback: "bool | str",
    tracer,
    collect: "list[dict[str, Any]] | None",
) -> None:
    """The fused fast path, degrading to the event pipeline exactly as
    :func:`repro.projection.streaming._fused_pass` does for markup: the
    only fallback triggers are the bulk tag scan's token limit and an
    explicit :class:`~repro.errors.FastPathUnsupported`; falling back
    rewinds source, sink, stats and the collected records to where this
    call found them (a non-rewindable stream re-raises)."""
    governed = _GovernedSink(sink, guard)
    if fallback != "force":
        snap = stats.snapshot()
        collected = len(collect) if collect is not None else 0
        source_pos = None if isinstance(source, str) else _stream_position(source)
        sink_pos = _stream_position(sink)
        pruner = FastPruner(grammar, projector, True, guard=guard)
        try:
            _records_pass(
                pruner.events(source, chunk_size), spec,
                record_writer(format, spec, governed), stats, collect,
            )
            stats.bytes_out = governed.written
            return
        except (FastPathUnsupported, LimitExceeded) as exc:
            if isinstance(exc, LimitExceeded) and (
                not fallback or exc.limit != "token_bytes"
            ):
                raise
            if not isinstance(source, str):
                if source_pos is None:
                    raise  # can't re-read a non-seekable stream
                source.seek(source_pos)
            if governed.written:
                if sink_pos is None:
                    raise  # flushed output we cannot take back
                sink.seek(sink_pos)
                sink.truncate()
                governed.written = 0
            stats.restore(snap)
            if collect is not None:
                del collect[collected:]
            if guard is not None:
                guard.rewind()
    if tracer.enabled:
        tracer.count("fastpath.fallbacks")
    _events_extract_pass(
        source, governed, grammar, projector, spec,
        format, chunk_size, stats, guard, collect,
    )
    stats.bytes_out = governed.written


def _extract_stream(
    source: Source,
    sink: IO[str],
    grammar: Grammar,
    projector: frozenset[str] | set[str],
    spec: ExtractSpec,
    *,
    format: str = "jsonl",
    fast: bool = True,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    stats: ExtractStats | None = None,
    limits: "Limits | None" = None,
    fallback: "bool | str" = True,
    collect: "list[dict[str, Any]] | None" = None,
) -> ExtractStats:
    """Parse → prune → assemble → encode with constant memory.

    ``source`` is XML text or a text-mode file object; ``sink`` receives
    encoded JSONL/CSV lines.  ``collect`` (a list) additionally receives
    the NULL-substituted record dicts.  Mirrors
    :func:`repro.projection.streaming._prune_stream` for limits,
    fallback, and encoding-error mapping.
    """
    if stats is None:
        stats = ExtractStats()
    guard = limits.guard() if limits is not None else None
    tracer = get_tracer()
    with tracer.span(
        "extract", mode="fast" if fast else "events", format=format
    ) as span:
        try:
            if fast:
                _fused_extract_pass(
                    source, sink, grammar, frozenset(projector), spec,
                    format, chunk_size, stats, guard, fallback, tracer, collect,
                )
            else:
                governed = _GovernedSink(sink, guard)
                _events_extract_pass(
                    source, governed, grammar, frozenset(projector), spec,
                    format, chunk_size, stats, guard, collect,
                )
                stats.bytes_out = governed.written
        except UnicodeError as exc:
            raise EncodingError(str(exc)) from exc
        span.merge_counters(stats.as_counters())
    return stats
