"""Declarative tabular workloads: :class:`ExtractSpec`.

An extract spec separates *row filtering* from *field supply* — the same
two-stage split MarkQL's ``PROJECT(base_tag) AS (field: expr, ...)``
operator makes.  ``rows`` is an absolute, child-only element path that
selects the row elements; each field is a row-relative path naming the
value to supply for the column::

    ExtractSpec(
        rows="/site/people/person",
        fields={"name": "name/text()", "city": "address/city/text()"},
        null="",
    )

Field paths come in three shapes:

* ``a/b/text()`` — the concatenated *direct* text of the first ``a/b``
  element under the row (``text()`` alone reads the row element itself);
* ``a/b/@id`` — an attribute of the first ``a/b`` element (``@id`` alone
  reads the row element's own attribute);
* ``a/b`` — the *string value* (all descendant text) of the first
  ``a/b`` element.

"First" is document order.  A field whose element (or attribute) is
absent yields NULL; ``null`` chooses how NULL is spelled on output
(``None``, the default, becomes JSON ``null`` in JSONL and the empty
string in CSV).

The spec is a first-class, fingerprintable object: its content hash keys
the projector cache (the union of the row path and the absolutized field
paths drives ordinary projector inference, see
:meth:`ExtractSpec.projector_queries`), and :meth:`to_wire` /
:meth:`from_wire` carry it across the service protocol.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ReproError

__all__ = ["ExtractSpec", "FieldPath"]

# The XML name alphabet the fast path's scanner accepts (ASCII subset +
# non-ASCII passthrough), minus the colon — extraction paths do not
# resolve namespaces, so a prefixed name would silently never match.
_NAME_RE = re.compile(
    r"(?:[A-Za-z_]|[^\x00-\x7f])(?:[A-Za-z0-9_.\-]|[^\x00-\x7f])*\Z"
)

_TEXT_STEP = "text()"


@dataclass(slots=True, frozen=True)
class FieldPath:
    """One compiled field: element steps, then what to take at the end.

    ``kind`` is ``"text"`` (direct text of the final element),
    ``"attribute"`` (a named attribute of the final element; ``steps``
    may be empty — the row element itself), or ``"value"`` (the final
    element's string value — all descendant text; ``steps`` never empty).
    """

    name: str
    steps: tuple[str, ...]
    kind: str
    attribute: str | None = None


def _bad(what: str, path: str, why: str) -> ReproError:
    return ReproError(f"invalid extract {what} {path!r}: {why}")


def _check_step(step: str, what: str, path: str) -> str:
    if not step:
        raise _bad(what, path, "empty step (double or trailing slash?)")
    if step in ("*", "..", "."):
        raise _bad(what, path, f"step {step!r} is not supported "
                               "(steps must be literal element names)")
    if not _NAME_RE.match(step):
        raise _bad(what, path, f"step {step!r} is not an element name")
    return step


def _parse_rows(rows: str) -> tuple[str, ...]:
    if not isinstance(rows, str) or not rows.startswith("/"):
        raise _bad("row path", rows, "must be absolute (start with '/')")
    if rows.startswith("//") or "//" in rows:
        raise _bad("row path", rows,
                   "descendant steps ('//') are not supported")
    steps = tuple(
        _check_step(step, "row path", rows) for step in rows[1:].split("/")
    )
    return steps


def _parse_field(name: str, path: str) -> FieldPath:
    if not isinstance(name, str) or not name:
        raise ReproError(f"invalid extract field name {name!r}")
    if not isinstance(path, str) or not path:
        raise _bad("field path", path, "must be a non-empty relative path")
    if path.startswith("/"):
        raise _bad("field path", path, "must be relative to the row element")
    if "//" in path:
        raise _bad("field path", path,
                   "descendant steps ('//') are not supported")
    raw = path.split("/")
    last = raw[-1]
    if last == _TEXT_STEP:
        kind, attribute, element_steps = "text", None, raw[:-1]
    elif last.startswith("@"):
        kind, attribute, element_steps = "attribute", last[1:], raw[:-1]
        if not _NAME_RE.match(attribute):
            raise _bad("field path", path,
                       f"{last!r} is not an attribute name")
    else:
        kind, attribute, element_steps = "value", None, raw
    steps = tuple(
        _check_step(step, "field path", path) for step in element_steps
    )
    return FieldPath(name=name, steps=steps, kind=kind, attribute=attribute)


@dataclass(frozen=True)
class ExtractSpec:
    """A declared tabular workload: row filter + field supply + NULL.

    Immutable and content-addressed: :meth:`fingerprint` hashes the row
    path, the fields *in declared order* (field order is the output
    column order), and the NULL spelling, so equal specs share one
    projector cache entry.  Validation happens at construction — a bad
    path raises :class:`~repro.errors.ReproError` here, not mid-scan.
    """

    rows: str
    fields: Mapping[str, str]
    null: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "fields", dict(self.fields))
        _parse_rows(self.rows)
        if not self.fields:
            raise ReproError("an ExtractSpec needs at least one field")
        for name, path in self.fields.items():
            _parse_field(name, path)
        if self.null is not None and not isinstance(self.null, str):
            raise ReproError(
                f"null must be a string or None, got {type(self.null).__name__}"
            )

    # ``fields`` is a dict, so the generated __hash__ would raise; hash
    # by content instead (consistent with __eq__ up to dict ordering,
    # which fingerprint() deliberately preserves — column order matters).
    def __hash__(self) -> int:
        return hash(self.fingerprint())

    # -- compiled views ---------------------------------------------------

    def row_steps(self) -> tuple[str, ...]:
        """The row path as a tag tuple, e.g. ``("site", "people", "person")``."""
        return _parse_rows(self.rows)

    def compiled_fields(self) -> tuple[FieldPath, ...]:
        """The fields as :class:`FieldPath` tuples, in declared order."""
        return tuple(
            _parse_field(name, path) for name, path in self.fields.items()
        )

    # -- projector inference ---------------------------------------------

    def projector_queries(self) -> list[tuple[str, bool]]:
        """The XPathℓ queries whose union projector this spec needs, as
        ``(query, materialize)`` pairs.

        The row path itself contributes its spine (non-materialized: row
        *content* is only kept where a field asks for it); ``text()`` and
        ``@attr`` fields contribute the absolutized path as-is (the
        inference adds the ``tag#text`` / ``tag@attr`` names); a
        string-value field materializes — Section 4.3's ⌈·⌉ closure keeps
        the whole subtree its value is assembled from.
        """
        queries: list[tuple[str, bool]] = [(self.rows, False)]
        for field in self.compiled_fields():
            suffix = "/".join(field.steps)
            if field.kind == "text":
                tail = f"{suffix}/{_TEXT_STEP}" if suffix else _TEXT_STEP
                queries.append((f"{self.rows}/{tail}", False))
                if suffix:
                    # Presence must survive pruning: an element whose
                    # content model admits no text makes the text() query
                    # statically empty (the inference would drop the whole
                    # spine), yet a *present* element yields "", not NULL.
                    queries.append((f"{self.rows}/{suffix}", False))
            elif field.kind == "attribute":
                tail = f"{suffix}/@{field.attribute}" if suffix else f"@{field.attribute}"
                queries.append((f"{self.rows}/{tail}", False))
            else:
                queries.append((f"{self.rows}/{suffix}", True))
        return queries

    # -- identity ---------------------------------------------------------

    def fingerprint(self) -> str:
        """Content hash: rows + fields (declared order) + null spelling."""
        payload = json.dumps(
            {
                "rows": self.rows,
                "fields": [[name, path] for name, path in self.fields.items()],
                "null": self.null,
            },
            ensure_ascii=False,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- wire form (the service protocol ships specs as JSON) -------------

    def to_wire(self) -> dict[str, Any]:
        """JSON-safe form; field order is preserved (it is the column
        order)."""
        wire: dict[str, Any] = {
            "rows": self.rows,
            "fields": [[name, path] for name, path in self.fields.items()],
        }
        if self.null is not None:
            wire["null"] = self.null
        return wire

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "ExtractSpec":
        """Rebuild from :meth:`to_wire` output (unknown keys rejected so a
        client/server version skew fails loudly, not silently)."""
        data = dict(wire)
        rows = data.pop("rows", None)
        fields = data.pop("fields", None)
        null = data.pop("null", None)
        if data:
            raise ValueError(f"unknown extract spec field(s): {sorted(data)}")
        if not isinstance(rows, str) or fields is None:
            raise ValueError("extract spec needs 'rows' and 'fields'")
        if isinstance(fields, Mapping):
            pairs = list(fields.items())
        else:
            pairs = [(pair[0], pair[1]) for pair in fields]
        return cls(rows=rows, fields=dict(pairs), null=null)
