"""Extraction statistics — the counters one tabular scan gathers."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class ExtractStats:
    """Counters gathered by one extraction pass.

    ``rows_out`` counts emitted records, ``fields_out`` the non-NULL
    values among them and ``nulls_out`` the NULLs (so ``rows_out *
    len(fields) == fields_out + nulls_out``); ``bytes_in`` measures the
    source, ``bytes_out`` the encoded JSONL/CSV written.
    """

    rows_out: int = 0
    fields_out: int = 0
    nulls_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0

    def as_counters(self) -> dict[str, int]:
        """The counters an observability span carries for one pass."""
        return {
            "rows_out": self.rows_out,
            "fields_out": self.fields_out,
            "nulls_out": self.nulls_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
        }

    def snapshot(self) -> tuple:
        """Capture the counters so an aborted fast pass can be rolled
        back before the event-pipeline retry re-reads the document."""
        return (
            self.rows_out, self.fields_out, self.nulls_out,
            self.bytes_in, self.bytes_out,
        )

    def restore(self, snap: tuple) -> None:
        """Roll the counters back to a :meth:`snapshot`."""
        (
            self.rows_out, self.fields_out, self.nulls_out,
            self.bytes_in, self.bytes_out,
        ) = snap

    def merge(self, other: "ExtractStats") -> "ExtractStats":
        """Accumulate another pass's counters into this one (corpus-level
        aggregation for :func:`repro.parallel.extract_many`); returns
        ``self``."""
        self.rows_out += other.rows_out
        self.fields_out += other.fields_out
        self.nulls_out += other.nulls_out
        self.bytes_in += other.bytes_in
        self.bytes_out += other.bytes_out
        return self

    # -- wire form (the service protocol ships stats as JSON) -------------

    def as_dict(self) -> dict[str, int]:
        return self.as_counters()

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "ExtractStats":
        names = {
            "rows_out", "fields_out", "nulls_out", "bytes_in", "bytes_out"
        }
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown extract stats field(s): {sorted(unknown)}")
        return cls(**data)
