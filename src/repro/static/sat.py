"""DTD-aware query satisfiability: emptiness before the document opens.

The decision procedure composes two ingredients, both computed from the
grammar ``(X, E)`` alone:

* **Derivability** — which names can generate *any* finite document
  fragment.  A DTD can define names that generate nothing: a recursive
  element with no base case (``<!ELEMENT a (a)>``) admits no finite
  tree.  :func:`derivable_names` is the least fixpoint of "an element
  name is derivable iff its content regex matches some word over
  derivable names".

* **Occurrence** — which names can appear in *some* valid document of
  the grammar: reachability from the root over *realizable* edges.  An
  edge ``parent -> child`` is realizable iff the parent's content regex
  matches some word over derivable names that contains ``child``
  (:func:`regex_can_contain`) — mere mention in the regex is not enough
  when every word through the mention also needs a non-derivable name.

A query is then **UNSAT** iff the Figure 1 type inference, with every
intermediate type restricted to occurring names, ends empty.  The
restriction is sound because in a grammar-valid document every node's
name occurs by definition, so intersecting an over-approximation of the
node set's names with the occurring set still over-approximates.  The
verdict is one-sided by design: UNSAT is a proof of emptiness over all
valid documents; SAT only means emptiness could not be proven (the type
system itself is approximate, Theorem 4.4).

:func:`filter_projector` applies the same occurrence information to a
projector: names that never occur can be dropped (and names thereby
unchained from the root with them) without changing a single output
byte, because a kept document node's ancestor chain consists of
occurring names only.

Everything here is schema-language agnostic: the procedure consumes the
grammar ``(X, E)`` substrate, so DTD grammars, XSD-compiled grammars
(:mod:`repro.schema.xsd` — including the single-type grammars local
elements compile to), and inferred dataguide grammars
(:mod:`repro.schema.infer`) all get the same verdicts for the same
productions.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from dataclasses import dataclass, field

from repro.core.inference import Env, TypeInference, initial_env
from repro.dtd.grammar import (
    AttributeProduction,
    ElementProduction,
    Grammar,
    TextProduction,
)
from repro.dtd.regex import Alt, Atom, Empty, Epsilon, Opt, Plus, Regex, Seq, Star
from repro.xpath.xpathl import LStep, PathL, SimplePath, element_rooted

__all__ = [
    "BranchVerdict",
    "QueryVerdict",
    "classify_path",
    "classify_paths",
    "classify_query",
    "derivable_names",
    "filter_projector",
    "occurring_names",
    "regex_can_contain",
    "regex_can_match",
]


# -- emptiness over content-model regexes -------------------------------------


def regex_can_match(regex: Regex, allowed: frozenset[str]) -> bool:
    """Whether ``regex`` matches some word using only ``allowed`` names.

    This is regular-language emptiness restricted to an alphabet — decided
    structurally (no automaton needed): iterations can always take zero
    turns, so ``r*`` and ``r?`` match the empty word regardless.
    """
    if isinstance(regex, Empty):
        return False
    if isinstance(regex, Epsilon):
        return True
    if isinstance(regex, Atom):
        return regex.name in allowed
    if isinstance(regex, Seq):
        return all(regex_can_match(item, allowed) for item in regex.items)
    if isinstance(regex, Alt):
        return any(regex_can_match(item, allowed) for item in regex.items)
    if isinstance(regex, (Star, Opt)):
        return True
    if isinstance(regex, Plus):
        return regex_can_match(regex.inner, allowed)
    raise TypeError(f"unknown regex node {regex!r}")


def regex_can_contain(regex: Regex, child: str, allowed: frozenset[str]) -> bool:
    """Whether some word of ``regex`` over ``allowed`` names contains
    ``child`` — i.e. the content-model edge ``parent -> child`` is
    realizable in a valid document.

    Mention is not realization: in ``(a, b)`` with ``b`` non-derivable,
    no valid parent ever has an ``a`` child even though ``a`` is named.
    """
    if child not in allowed:
        return False
    if isinstance(regex, (Empty, Epsilon)):
        return False
    if isinstance(regex, Atom):
        return regex.name == child
    if isinstance(regex, Seq):
        # One item supplies the child; every other item must still match.
        for index, item in enumerate(regex.items):
            if regex_can_contain(item, child, allowed) and all(
                regex_can_match(other, allowed)
                for position, other in enumerate(regex.items)
                if position != index
            ):
                return True
        return False
    if isinstance(regex, Alt):
        return any(regex_can_contain(item, child, allowed) for item in regex.items)
    if isinstance(regex, (Star, Plus, Opt)):
        # One iteration supplies the child; the rest can be empty (zero
        # further iterations for * and ?, and the witnessing iteration
        # itself satisfies +'s "at least one").
        return regex_can_contain(regex.inner, child, allowed)
    raise TypeError(f"unknown regex node {regex!r}")


# -- derivable and occurring names --------------------------------------------

_DERIVABLE: "weakref.WeakKeyDictionary[Grammar, frozenset[str]]" = (
    weakref.WeakKeyDictionary()
)
_OCCURRING: "weakref.WeakKeyDictionary[Grammar, frozenset[str]]" = (
    weakref.WeakKeyDictionary()
)


def derivable_names(grammar: Grammar) -> frozenset[str]:
    """Names that generate at least one finite tree (least fixpoint).

    Text and attribute names are always derivable (any string is a
    witness); an element name is derivable iff its content regex matches
    some word over already-derivable names.  Every name a real DTD parse
    produces is derivable unless the DTD is recursive without a base
    case; the pathological cases matter for hand-built grammars.
    """
    cached = _DERIVABLE.get(grammar)
    if cached is not None:
        return cached
    derivable: set[str] = {
        name
        for name, production in grammar.productions.items()
        if isinstance(production, (TextProduction, AttributeProduction))
    }
    pending = [
        production
        for production in grammar.productions.values()
        if isinstance(production, ElementProduction)
    ]
    changed = True
    while changed:
        changed = False
        remaining = []
        frozen = frozenset(derivable)
        for production in pending:
            if regex_can_match(production.regex, frozen):
                derivable.add(production.name)
                changed = True
            else:
                remaining.append(production)
        pending = remaining
    result = frozenset(derivable)
    _DERIVABLE[grammar] = result
    return result


def occurring_names(grammar: Grammar) -> frozenset[str]:
    """Names that appear in at least one grammar-valid document: forward
    reachability from the root over *realizable* content-model edges.

    Returns the empty set when the root itself is non-derivable (the
    grammar admits no document at all).  Attributes of an occurring
    element always occur (a document may always supply them).
    """
    cached = _OCCURRING.get(grammar)
    if cached is not None:
        return cached
    derivable = derivable_names(grammar)
    occurring: set[str] = set()
    if grammar.root in derivable:
        frontier = [grammar.root]
        occurring.add(grammar.root)
        while frontier:
            current = frontier.pop()
            production = grammar.productions[current]
            if not isinstance(production, ElementProduction):
                continue
            for child in production.regex.names():
                if child not in occurring and regex_can_contain(
                    production.regex, child, derivable
                ):
                    occurring.add(child)
                    frontier.append(child)
            for attr in production.attribute_names():
                occurring.add(attr)
    result = frozenset(occurring)
    _OCCURRING[grammar] = result
    return result


# -- verdicts -----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BranchVerdict:
    """Satisfiability of one qualifier disjunct, in its path context."""

    path: str
    satisfiable: bool
    reason: str


@dataclass(frozen=True, slots=True)
class QueryVerdict:
    """The pre-pass verdict for one query.

    ``satisfiable=False`` is a proof: over every grammar-valid document
    the query selects nothing.  ``result_type`` is the Figure 1 type of
    the answer restricted to occurring names; ``tau_empty`` records
    whether the *unrestricted* Figure 1 type is already empty — exactly
    the condition under which projector inference provably returns the
    root-only projector, licensing the analysis work-skip.  ``branches``
    carries one verdict per qualifier disjunct encountered.
    """

    query: str
    satisfiable: bool
    reason: str
    result_type: frozenset[str] = frozenset()
    tau_empty: bool = False
    branches: tuple[BranchVerdict, ...] = ()

    def fingerprint(self) -> str:
        """Content hash of the verdict — byte-stable across runs and
        processes, so cached and fresh verdicts can be compared."""
        payload = json.dumps(
            {
                "query": self.query,
                "satisfiable": self.satisfiable,
                "reason": self.reason,
                "result_type": sorted(self.result_type),
                "tau_empty": self.tau_empty,
                "branches": [
                    [branch.path, branch.satisfiable, branch.reason]
                    for branch in self.branches
                ],
            },
            ensure_ascii=False,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(slots=True)
class _PathFacts:
    satisfiable: bool
    tau_empty: bool
    result_type: frozenset[str]
    reason: str
    branches: list[BranchVerdict] = field(default_factory=list)


def _restrict(env: Env, occ: frozenset[str]) -> Env:
    """Intersect an environment with the occurring names (sound: every
    node in a valid document has an occurring name, so the restriction
    preserves the over-approximation invariant of Theorem 4.4)."""
    return Env(env.tau & occ, env.kappa & occ)


def _path_facts(
    grammar: Grammar,
    inference: TypeInference,
    occ: frozenset[str],
    pathl: "PathL | SimplePath",
) -> _PathFacts:
    rooted = element_rooted(pathl) if isinstance(pathl, PathL) else pathl
    if rooted is None:
        return _PathFacts(
            satisfiable=False,
            tau_empty=True,
            result_type=frozenset(),
            reason="UNSAT: the leading axis selects nothing at the document node",
        )

    # Plain Figure 1 walk — τ emptiness here is the work-skip criterion
    # (projector inference provably returns {root} for a τ-empty path).
    plain = initial_env(grammar)
    plain_dead_at: int | None = None
    for index, lstep in enumerate(rooted.steps):
        plain = inference.infer(plain, (lstep,))
        if plain.is_empty:
            plain_dead_at = index
            break
    tau_empty = plain.is_empty

    # Occurrence-restricted walk: strictly stronger, still sound.  The
    # qualifier rule is re-run per name so a disjunct that only reaches
    # never-occurring names counts as false (plain Figure 1 keeps it).
    env = _restrict(initial_env(grammar), occ)
    dead_at: int | None = None
    branches: list[BranchVerdict] = []
    for index, lstep in enumerate(rooted.steps):
        if env.is_empty:
            break
        if lstep.condition is None:
            env = _restrict(inference.infer(env, (lstep,)), occ)
        else:
            bare = LStep(lstep.axis, lstep.test)
            mid = _restrict(inference.infer(env, (bare,)), occ)
            kept: set[str] = set()
            for disjunct in lstep.condition:
                witness = inference.infer(mid, disjunct.steps)
                if witness.tau & occ:
                    d_reason = "SAT: the qualifier may hold"
                elif witness.is_empty:
                    d_reason = "UNSAT: no grammar chain continues the qualifier"
                else:
                    d_reason = (
                        "UNSAT: the qualifier only reaches names that never "
                        "occur in a valid document"
                    )
                branches.append(
                    BranchVerdict(
                        path=f"{lstep.axis.value}::{lstep.test}[{disjunct}]",
                        satisfiable=bool(witness.tau & occ),
                        reason=d_reason,
                    )
                )
            ops = inference.ops
            for name in mid.tau:
                singleton = frozenset((name,))
                local = Env(singleton, ops.context_restrict(mid.kappa, singleton))
                for disjunct in lstep.condition:
                    if inference.infer(local, disjunct.steps).tau & occ:
                        kept.add(name)
                        break
            tau = frozenset(kept)
            env = Env(tau, ops.context_restrict(mid.kappa, tau))
        if env.is_empty and dead_at is None:
            dead_at = index

    satisfiable = not env.is_empty
    if satisfiable:
        reason = "SAT: may select nodes typed {%s}" % ", ".join(sorted(env.tau))
    elif not occ:
        reason = (
            "UNSAT: the grammar admits no valid document "
            "(the root name is not derivable)"
        )
    elif tau_empty:
        where = plain_dead_at + 1 if plain_dead_at is not None else len(rooted.steps)
        reason = f"UNSAT: no grammar chain matches the path (type empties at step {where})"
    else:
        where = dead_at + 1 if dead_at is not None else len(rooted.steps)
        reason = (
            "UNSAT: the path only reaches names that never occur in a "
            f"valid document (dead from step {where})"
        )
    return _PathFacts(
        satisfiable=satisfiable,
        tau_empty=tau_empty,
        result_type=env.tau,
        reason=reason,
        branches=branches,
    )


def classify_path(
    grammar: Grammar,
    pathl: "PathL | SimplePath",
    query: str | None = None,
) -> QueryVerdict:
    """Verdict for a single (already-approximated) XPathℓ path."""
    inference = TypeInference(grammar)
    occ = occurring_names(grammar)
    facts = _path_facts(grammar, inference, occ, pathl)
    return QueryVerdict(
        query=query if query is not None else str(pathl),
        satisfiable=facts.satisfiable,
        reason=facts.reason,
        result_type=facts.result_type,
        tau_empty=facts.tau_empty,
        branches=tuple(facts.branches),
    )


def classify_paths(
    grammar: Grammar,
    paths: "list[PathL] | tuple[PathL, ...]",
    query: str,
) -> QueryVerdict:
    """Aggregate verdict over several extracted paths (one XQuery may
    contribute many): satisfiable iff any path is, τ-empty iff all are.

    For an XQuery, UNSAT means the query's *projection paths* select
    nothing in any valid document — the query reads no document data
    (constructed output may still be non-empty; only data access is
    judged).
    """
    inference = TypeInference(grammar)
    occ = occurring_names(grammar)
    all_facts = [_path_facts(grammar, inference, occ, path) for path in paths]
    if not all_facts:
        return QueryVerdict(
            query=query,
            satisfiable=False,
            tau_empty=True,
            reason="UNSAT: the query extracts no paths (no document access)",
        )
    satisfiable = any(facts.satisfiable for facts in all_facts)
    tau_empty = all(facts.tau_empty for facts in all_facts)
    result_type: frozenset[str] = frozenset()
    for facts in all_facts:
        result_type |= facts.result_type
    branches = [branch for facts in all_facts for branch in facts.branches]
    if satisfiable:
        reason = next(facts.reason for facts in all_facts if facts.satisfiable)
    elif len(all_facts) == 1:
        reason = all_facts[0].reason
    else:
        reason = (
            "UNSAT: none of the query's %d extracted paths can select a "
            "node in a valid document" % len(all_facts)
        )
    return QueryVerdict(
        query=query,
        satisfiable=satisfiable,
        reason=reason,
        result_type=result_type,
        tau_empty=tau_empty,
        branches=tuple(branches),
    )


def classify_query(
    grammar: Grammar,
    query,
    language: str = "auto",
) -> QueryVerdict:
    """Verdict for one query in any supported surface syntax.

    Routing matches :func:`repro.core.pipeline.analyze`: ``language`` may
    be ``"xpath"``, ``"xquery"`` or ``"auto"``.  XQuery goes through the
    Section 5 rewriting and Figure 3 path extraction; XPath through the
    Section 3.3 approximation into XPathℓ.
    """
    from repro.core.pipeline import _query_language, _to_pathl

    label = query if isinstance(query, str) else str(query)
    kind = _query_language(query, language)
    if kind == "xquery":
        from repro.xquery.extraction import extract_paths
        from repro.xquery.parser import parse_xquery
        from repro.xquery.rewrite import rewrite_query

        parsed = parse_xquery(query) if isinstance(query, str) else query
        paths = extract_paths(rewrite_query(parsed))
        return classify_paths(grammar, list(paths), label)
    approximation = _to_pathl(query)
    return classify_path(grammar, approximation.main, label)


# -- projector filtering ------------------------------------------------------


def filter_projector(grammar: Grammar, projector: frozenset[str]) -> frozenset[str]:
    """Drop never-occurring names from a projector, then re-close chains.

    Byte-identical on grammar-valid documents: the pruner keeps a node
    iff its name and its whole ancestor chain are in the projector, and
    every name on a real node's chain occurs by definition — so removing
    non-occurring names (and whatever they alone chained to the root)
    can never change which nodes are kept.  The result is a valid
    projector by construction (chain-closed from the root).
    """
    occ = occurring_names(grammar)
    keep = (frozenset(projector) & occ) | {grammar.root}
    reached: set[str] = set()
    frontier = [grammar.root]
    while frontier:
        current = frontier.pop()
        if current in reached:
            continue
        reached.add(current)
        for successor in grammar.successors_of(current):
            if successor in keep and successor not in reached:
                frontier.append(successor)
    return frozenset(reached)
