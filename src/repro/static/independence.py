"""Update/query independence from types (after Bidoit–Colazzo–Ulliana).

An update expression is abstracted — the same way Section 3.3 abstracts
queries — to the paths naming its target nodes.  Whatever the update
does (delete, replace, insert-into, rename), every node it creates,
destroys or modifies lies inside the subtree of some target node, so
the names it can touch are bounded by the Figure 1 type of the target
paths closed under descendants: :func:`impact_names`.

A projected view is then **independent** of the update iff that impact
set is disjoint from the view's projector.  Soundness is the pruner's
own keep rule read backwards: a node is kept iff its name and its whole
ancestor chain lie in the projector, so a modification confined to
names outside the projector can neither add a kept node (the new node's
name is not in the projector), remove one (no kept node has a touched
name), nor change one's content — the projected bytes are identical
before and after.  As with satisfiability, the judgment is one-sided:
``independent=True`` is a proof (for grammar-preserving updates on
grammar-valid documents); ``False`` only means overlap could not be
excluded.

The service's ``check_update`` op builds on this to *retain* resident
pinned payloads across proven-independent updates instead of
invalidating them (see :mod:`repro.service`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.inference import infer_type
from repro.dtd.grammar import Grammar

__all__ = ["IndependenceReport", "impact_names", "independent"]


@dataclass(frozen=True, slots=True)
class IndependenceReport:
    """Outcome of one independence check.

    ``impact`` is the set of grammar names the update may touch;
    ``overlap`` is its intersection with the view's projector — empty
    exactly when ``independent`` is True.
    """

    independent: bool
    impact: frozenset[str]
    overlap: frozenset[str]
    projector: frozenset[str]
    reason: str


def impact_names(grammar: Grammar, update_path) -> frozenset[str]:
    """Names an update targeting ``update_path`` may create, destroy or
    modify: the Figure 1 type of the path, closed under descendants
    (an update may rewrite the whole subtree of each target, including
    its text and attribute names)."""
    from repro.core.pipeline import _to_pathl
    from repro.xpath.xpathl import element_rooted

    approximation = _to_pathl(update_path)
    rooted = element_rooted(approximation.main)
    if rooted is None:
        return frozenset()
    tau = infer_type(grammar, rooted).tau
    return grammar.descendant_closure(tau)


def independent(
    grammar: Grammar,
    update_paths,
    query_spec,
    cache=None,
) -> IndependenceReport:
    """Judge whether updates along ``update_paths`` can affect the view
    defined by ``query_spec``.

    ``update_paths`` is one path or a list of paths (XPath strings or
    parsed paths); ``query_spec`` is anything the projector machinery
    accepts: an already-inferred projector (a set of names), a query
    string or list of query strings (analyzed through ``cache`` or the
    process default), or an object with a ``projector`` attribute (an
    :class:`~repro.core.pipeline.AnalysisResult`).
    """
    from repro.core.cache import resolve_projector

    if hasattr(query_spec, "projector"):
        projector = frozenset(query_spec.projector)
    else:
        projector = resolve_projector(grammar, query_spec, cache=cache)

    if not isinstance(update_paths, (list, tuple)):
        update_paths = [update_paths]
    impact: frozenset[str] = frozenset()
    for update_path in update_paths:
        impact |= impact_names(grammar, update_path)

    overlap = impact & projector
    if not update_paths:
        reason = "independent: no update paths given"
    elif not impact:
        reason = "independent: the update paths match nothing under the grammar"
    elif overlap:
        preview = ", ".join(sorted(overlap)[:5])
        more = "" if len(overlap) <= 5 else f" (+{len(overlap) - 5} more)"
        reason = f"dependent: the update may touch projected name(s) {preview}{more}"
    else:
        reason = (
            "independent: every name the update may touch lies outside "
            "the projector"
        )
    return IndependenceReport(
        independent=not overlap,
        impact=impact,
        overlap=overlap,
        projector=projector,
        reason=reason,
    )
