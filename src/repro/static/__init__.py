"""Static satisfiability and update-independence analysis.

Everything in this package is *static-phase* work in the paper's sense:
it consumes only the compiled grammar ``(X, E)`` — never a document —
and its conclusions therefore hold for every grammar-valid document at
once.  Two judgements live here:

* **Satisfiability** (:mod:`repro.static.sat`): can a query select any
  node in *some* valid document?  Emptiness is decided by derivability
  and reachability over the content-model regexes (after *XPath
  Satisfiability ... under Real-World DTDs*, Ishihara et al.), composed
  with the Figure 1 type inference for the path/qualifier structure.
  An UNSAT verdict licenses answering the query with an empty result
  without opening the document.

* **Update independence** (:mod:`repro.static.independence`): can an
  update along the given paths ever change a projected view?  (After
  *Type-Based Detection of XML Query-Update Independence*, Bidoit,
  Colazzo, Ulliana.)  A proven-independent update lets the resident
  service keep cached pruned payloads warm instead of invalidating.

Both verdicts are conservative in the sound direction: ``UNSAT`` and
``independent`` are proofs (under grammar-validity); ``SAT`` and
``dependent`` merely mean "could not prove otherwise".
"""

from repro.static.independence import (
    IndependenceReport,
    impact_names,
    independent,
)
from repro.static.sat import (
    BranchVerdict,
    QueryVerdict,
    classify_path,
    classify_query,
    derivable_names,
    filter_projector,
    occurring_names,
    regex_can_contain,
    regex_can_match,
)

__all__ = [
    "BranchVerdict",
    "IndependenceReport",
    "QueryVerdict",
    "classify_path",
    "classify_query",
    "derivable_names",
    "filter_projector",
    "impact_names",
    "independent",
    "occurring_names",
    "regex_can_contain",
    "regex_can_match",
]
