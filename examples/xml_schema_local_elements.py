"""XML Schema-style local elements (the paper's footnote 1).

A DTD cannot give two <item> elements different content models; an XML
Schema can (local element declarations).  This example builds the
corresponding *single-type tree grammar*, where a node's name is resolved
from its parent's name plus its tag, and shows that validation, projector
inference and pruning all distinguish the two <item> types: a query over
book pages prunes away every film — even though films share the tag.

Run:  python examples/xml_schema_local_elements.py
"""

from repro.core.pipeline import analyze
from repro.dtd.regex import Atom, Seq, Star
from repro.dtd.singletype import single_type_grammar
from repro.dtd.validator import validate
from repro.projection.tree import prune_document
from repro.xmltree.builder import parse_document
from repro.xmltree.serializer import serialize
from repro.xpath.evaluator import XPathEvaluator

GRAMMAR = single_type_grammar(
    "Lib",
    {
        "Lib": ("library", Seq([Atom("Books"), Atom("Films")])),
        "Books": ("books", Star(Atom("Book"))),
        "Films": ("films", Star(Atom("Film"))),
        # Two *local* declarations of tag <item>:
        "Book": ("item", Seq([Atom("BTitle"), Atom("Pages")])),
        "Film": ("item", Seq([Atom("FTitle"), Atom("Minutes")])),
        "BTitle": ("title", Star(Atom("BTitleS"))),
        "FTitle": ("title", Star(Atom("FTitleS"))),
        "Pages": ("pages", Star(Atom("PagesS"))),
        "Minutes": ("minutes", Star(Atom("MinutesS"))),
        "BTitleS": None,
        "FTitleS": None,
        "PagesS": None,
        "MinutesS": None,
    },
)

XML = (
    "<library>"
    "<books>"
    "<item><title>Moby-Dick</title><pages>635</pages></item>"
    "<item><title>Ulysses</title><pages>730</pages></item>"
    "</books>"
    "<films>"
    "<item><title>Stalker</title><minutes>161</minutes></item>"
    "</films>"
    "</library>"
)

QUERY = "//item[pages > 700]/title"


def main() -> None:
    document = parse_document(XML)
    interpretation = validate(document, GRAMMAR)

    items = [node for node in document.elements() if node.tag == "item"]
    print("interpretation of the three <item> nodes:",
          [interpretation[node.node_id] for node in items])

    result = analyze(GRAMMAR, [QUERY])
    print(f"\nquery: {QUERY}")
    print("projector:", sorted(result.projector))
    assert "Film" not in result.projector  # films share the tag, not the name

    pruned = prune_document(document, interpretation, result.projector)
    print("\npruned document:")
    print(serialize(pruned))

    original = XPathEvaluator(document).select_ids(QUERY)
    after = XPathEvaluator(pruned).select_ids(QUERY)
    assert original == after
    titles = [node.text_value() for node in XPathEvaluator(pruned).select(QUERY)]
    print("\nanswers:", titles)


if __name__ == "__main__":
    main()
