"""DTD-less pruning via dataguides (the paper's conclusion, realised).

"It should be easy to adapt the approach to work in the absence of DTDs,
by using dataguides/path-summaries instead" — this example summarises a
document *without any schema* into a local tree grammar, then runs the
unchanged analysis + pruning pipeline against it.

Run:  python examples/dtdless_dataguide.py
"""

from repro.core.pipeline import analyze
from repro.dtd.dataguide import grammar_from_documents
from repro.dtd.validator import validate
from repro.projection.tree import prune_document
from repro.workloads.xmark import generate_document
from repro.xmltree.serializer import serialize
from repro.xpath.evaluator import XPathEvaluator

QUERY = "//person[profile/@income > 50000]/name"


def main() -> None:
    # Pretend we received this file with no DTD attached.
    document = generate_document(0.002)
    print(f"document: {document.size()} nodes (no schema available)")

    # 1. Summarise it into a dataguide grammar.
    grammar = grammar_from_documents(document)
    print(f"inferred grammar: {len(grammar.names())} names, root <{grammar.root}>")

    # 2. The inferred grammar accepts the document, yielding ℑ.
    interpretation = validate(document, grammar)

    # 3. The standard pipeline runs unchanged.
    result = analyze(grammar, [QUERY])
    print(f"projector ({result.analysis_seconds * 1000:.1f} ms): "
          f"{sorted(result.projector)}")

    pruned = prune_document(document, interpretation, result.projector)
    print(f"pruned: {pruned.size()} nodes "
          f"({pruned.size() / document.size():.1%} kept)")

    original = XPathEvaluator(document).select_ids(QUERY)
    after = XPathEvaluator(pruned).select_ids(QUERY)
    assert original == after
    print(f"answers identical on both documents ({len(original)} hits)")
    sample = XPathEvaluator(pruned).select(QUERY)
    if sample:
        print("first hit:", serialize(sample[0]))


if __name__ == "__main__":
    main()
