"""Constant-memory streaming pruning of a document file.

The paper's operational claim (Sections 1.2 and 6): pruning is "a single
bufferless one-pass traversal" — it can run while parsing (or validating)
and its memory footprint does not depend on document size.  This example
writes an XMark file, prunes it file-to-file through the event pipeline,
and shows the traversal state never exceeds the document depth.

Run:  python examples/streaming_prune.py [factor]
"""

import os
import sys
import tempfile
import time
import tracemalloc

from repro import analyze
from repro.api import prune
from repro.workloads.xmark import generate_file, xmark_grammar

QUERY = "/site/people/person[profile/age > 60]/name"


def main() -> None:
    factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    grammar = xmark_grammar()
    result = analyze(grammar, [QUERY])
    print(f"query: {QUERY}")
    print(f"projector ({result.analysis_seconds * 1000:.1f} ms): {sorted(result.projector)}")

    with tempfile.TemporaryDirectory() as workdir:
        source = os.path.join(workdir, "auction.xml")
        target = os.path.join(workdir, "pruned.xml")
        written = generate_file(source, factor=factor)
        print(f"\ngenerated {written / 1e6:.2f} MB at {source}")

        tracemalloc.start()
        started = time.perf_counter()
        stats = prune(source, grammar, result.projector, out=target, validate=True).stats
        elapsed = time.perf_counter() - started
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        print(f"pruned (validating) in {elapsed:.2f} s "
              f"({written / 1e6 / max(elapsed, 1e-9):.1f} MB/s)")
        print(f"size: {stats.bytes_in} -> {stats.bytes_out} bytes "
              f"({stats.size_percent:.2f}% kept)")
        print(f"peak Python heap during pruning: {peak / 1e6:.2f} MB "
              "(constant in document size — try a larger factor)")


if __name__ == "__main__":
    main()
