"""XQuery end-to-end on XMark: extraction, inference, pruning, speedup.

Reproduces the Section 6 experience on one XMark query: generate a
benchmark document, infer a projector through the full XQuery pipeline
(Section 5 rewriting + Figure 3 path extraction + Figure 2 inference),
prune, and compare engine time/memory on the original vs pruned document.

Run:  python examples/xmark_pipeline.py [factor]
"""

import sys
import time

from repro import analyze
from repro.dtd.validator import validate
from repro.engine.executor import QueryEngine
from repro.projection.tree import prune_document
from repro.workloads.xmark import generate_document, xmark_grammar, xmark_query

QUERY_NAME = "QM07"  # the three-step // query the paper highlights


def main() -> None:
    factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.004
    grammar = xmark_grammar()
    query = xmark_query(QUERY_NAME)
    print(f"query {QUERY_NAME}:\n  {query}\n")

    document = generate_document(factor)
    interpretation = validate(document, grammar)
    print(f"document: {document.size()} nodes (factor {factor})")

    started = time.perf_counter()
    result = analyze(grammar, query, language="xquery")
    print(f"\nextracted {len(result.paths)} paths "
          f"({(time.perf_counter() - started) * 1000:.1f} ms):")
    for path in result.paths:
        print("   ", path)
    print(f"projector: {sorted(result.projector)}")

    pruned = prune_document(document, interpretation, result.projector)
    print(f"\npruned: {pruned.size()} nodes ({pruned.size() / document.size():.1%} kept)")

    original_engine = QueryEngine(document)
    pruned_engine = QueryEngine(pruned)
    original_run = original_engine.run(query)
    pruned_run = pruned_engine.run(query)

    assert original_engine.run_serialized(query) == pruned_engine.run_serialized(query)
    print(f"\n{'':>12}  {'original':>12}  {'pruned':>12}")
    print(f"{'time (s)':>12}  {original_run.query_seconds:>12.3f}  {pruned_run.query_seconds:>12.3f}")
    print(f"{'memory (MB)':>12}  {original_run.total_bytes / 1e6:>12.2f}  {pruned_run.total_bytes / 1e6:>12.2f}")
    print(f"{'results':>12}  {original_run.result_count:>12}  {pruned_run.result_count:>12}")
    if pruned_run.query_seconds > 0:
        print(f"\nspeedup: {original_run.query_seconds / pruned_run.query_seconds:.1f}x, "
              f"memory gain: {original_run.total_bytes / pruned_run.total_bytes:.1f}x")


if __name__ == "__main__":
    main()
