"""Bunches of queries: one pruned document serving a whole workload.

The paper's technique — unlike Bressan et al. [9] — "allows for dealing
with bunches of queries" (Section 1.2): projectors are closed under union,
so a single pruning pass can serve every query an application will run.
This example prunes one XMark document for a five-query workload and
verifies every query still answers identically.

Run:  python examples/multi_query_workload.py
"""

from repro import analyze
from repro.dtd.validator import validate
from repro.projection.tree import prune_document
from repro.workloads.xmark import generate_document, xmark_grammar, xmark_query
from repro.xquery.evaluator import XQueryEvaluator

WORKLOAD = ["QM01", "QM05", "QM06", "QM17", "QM20"]


def main() -> None:
    grammar = xmark_grammar()
    document = generate_document(0.003)
    interpretation = validate(document, grammar)
    queries = [xmark_query(name) for name in WORKLOAD]

    # Per-query projectors and the workload union.
    union = analyze(grammar, queries, language="xquery")
    print(f"{'query':>6}  {'|π|':>4}  kept alone")
    for name, projector in zip(WORKLOAD, union.per_query):
        alone = prune_document(document, interpretation, projector)
        print(f"{name:>6}  {len(projector):>4}  {alone.size() / document.size():>8.1%}")
    print(f"{'union':>6}  {len(union.projector):>4}")

    pruned = prune_document(document, interpretation, union.projector)
    print(f"\nworkload-pruned document: {pruned.size()}/{document.size()} nodes "
          f"({pruned.size() / document.size():.1%})")

    for name, query in zip(WORKLOAD, queries):
        original = XQueryEvaluator(document).evaluate_serialized(query)
        on_pruned = XQueryEvaluator(pruned).evaluate_serialized(query)
        assert original == on_pruned, name
        print(f"  {name}: identical answers ({len(original)} chars)")
    print("\nall workload queries answered identically on the shared pruned document")


if __name__ == "__main__":
    main()
