"""Type-based pruning vs the Marian & Siméon path-based loader-pruner.

Reproduces the paper's two comparison claims (Sections 1.1 and 5):

1. on ``//``-heavy queries the path-based pruner must explore speculative
   subtrees (memory/time cost), while the type-based pruner decides every
   node from its tag alone;
2. on ``descendant::node[condition]`` patterns the path-based extraction
   degenerates (no pruning at all), while predicates survive the
   type-based pipeline.

Run:  python examples/baseline_comparison.py
"""

import time

from repro import analyze
from repro.baselines import baseline_paths_for_query, prune_with_baseline
from repro.dtd.validator import validate
from repro.projection.tree import prune_document
from repro.xquery.evaluator import XQueryEvaluator
from repro.workloads.xmark import generate_document, xmark_grammar, xmark_query

CASES = {
    "QM06 (//item counts)": xmark_query("QM06"),
    "QM07 (three // steps)": xmark_query("QM07"),
    "degenerate (desc-or-self + condition)": (
        'for $y in /site//node return '
        'if ($y/author="whatever") then <r>{$y}</r> else ()'
    ),
}


def main() -> None:
    grammar = xmark_grammar()
    document = generate_document(0.003)
    interpretation = validate(document, grammar)

    header = f"{'case':<38} {'keep(type)':>10} {'keep(path)':>10} {'specul.':>8} {'t(type)':>8} {'t(path)':>8}"
    print(header)
    print("-" * len(header))
    for label, query in CASES.items():
        started = time.perf_counter()
        result = analyze(grammar, query, language="xquery")
        ours = prune_document(document, interpretation, result.projector)
        ours_seconds = time.perf_counter() - started

        started = time.perf_counter()
        baseline = prune_with_baseline(document, baseline_paths_for_query(query))
        baseline_seconds = time.perf_counter() - started

        # Both prunings must be sound.
        reference = XQueryEvaluator(document).evaluate_serialized(query)
        assert XQueryEvaluator(ours).evaluate_serialized(query) == reference
        assert XQueryEvaluator(baseline.document).evaluate_serialized(query) == reference

        print(f"{label:<38} "
              f"{ours.size() / document.size():>10.1%} "
              f"{baseline.document.size() / document.size():>10.1%} "
              f"{baseline.metrics.speculative_nodes:>8} "
              f"{ours_seconds:>7.2f}s {baseline_seconds:>7.2f}s")
    print("\nspecul. = nodes the path-based loader had to buffer before deciding;")
    print("the type-based pruner buffers none (tag alone decides).")


if __name__ == "__main__":
    main()
