"""Quickstart: infer a type projector and prune a document.

This walks the paper's running example (Section 3): the query that returns
the titles of books written by Dante, over a small bibliography DTD.  The
projector keeps only books, authors (with their text, to evaluate the
predicate) and titles — years and prices disappear.

Run:  python examples/quickstart.py
"""

from repro import analyze
from repro.dtd.grammar import grammar_from_text
from repro.dtd.validator import validate
from repro.projection.tree import prune_document
from repro.xmltree.builder import parse_document
from repro.xmltree.serializer import serialize
from repro.xpath.evaluator import XPathEvaluator

DTD = """
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author+, year?, price?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT price (#PCDATA)>
"""

XML = """\
<bib>
  <book><title>Divina Commedia</title><author>Dante</author><year>1320</year><price>12</price></book>
  <book><title>Moby-Dick</title><author>Melville</author><year>1851</year><price>20</price></book>
  <book><title>Vita Nova</title><author>Dante</author><price>8</price></book>
</bib>
"""

# The paper's query Q (Section 3), with the standard text() spelling.
# (The paper's prose says the query "ascends to the book element and
# descends to the title"; its one-parent-step rendering would ascend only
# to <author>, so we write the intended two ascents.)
QUERY = (
    "/descendant::author/child::text()[self::node()='Dante']"
    "/parent::node()/parent::node()/child::title"
)


def main() -> None:
    grammar = grammar_from_text(DTD, "bib")
    document = parse_document(XML, strip_whitespace=True)
    interpretation = validate(document, grammar)  # the paper's ℑ

    # Static analysis: XPath -> XPathℓ approximation -> Figure 2 inference.
    result = analyze(grammar, [QUERY])
    print(f"projector ({result.analysis_seconds * 1000:.1f} ms):")
    for name in sorted(result.projector):
        print("   ", name)

    pruned = prune_document(document, interpretation, result.projector)
    print("\npruned document:")
    print(serialize(pruned))

    # Soundness (Theorem 4.5): same answers, by node identity.
    original_answers = XPathEvaluator(document).select_ids(QUERY)
    pruned_answers = XPathEvaluator(pruned).select_ids(QUERY)
    assert original_answers == pruned_answers, (original_answers, pruned_answers)
    titles = [node.text_value() for node in XPathEvaluator(pruned).select(QUERY)]
    print("\nanswers on the pruned document:", titles)
    print(f"nodes: {document.size()} -> {pruned.size()}")


if __name__ == "__main__":
    main()
