"""Tests for :mod:`repro.parallel` — the multiprocess batch-pruning engine.

The contract under test: ``jobs=1`` is byte-identical to calling the
:func:`repro.prune` facade per document; any pool width produces the same
results in input order; a malformed document (or a crashed worker) yields
a structured :class:`~repro.parallel.BatchError` without poisoning the
other items or hanging the pool; and worker-side obs records merge back
into the parent tracer.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro import ExtractSpec, extract, extract_many, obs, prune, prune_many
from repro.core.cache import resolve_projector
from repro.engine.loader import load_many
from repro.parallel import (
    BatchError,
    _output_paths,
    expand_sources,
)

QUERY = "/bib/book/title"

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _doc(i: int) -> str:
    return (
        f'<bib><book year="20{i % 100:02d}"><title>T{i}</title>'
        f"<author>A{i}</author><price>{i}.00</price></book></bib>"
    )


@pytest.fixture()
def corpus(tmp_path):
    paths = []
    for i in range(6):
        path = tmp_path / f"doc{i:02d}.xml"
        path.write_text(_doc(i), encoding="utf-8")
        paths.append(str(path))
    return paths


# -- source expansion ---------------------------------------------------------


class TestExpandSources:
    def test_single_path_passes_through(self, corpus):
        assert expand_sources(corpus[0]) == [corpus[0]]

    def test_markup_passes_through(self):
        assert expand_sources("<bib/>") == ["<bib/>"]
        assert expand_sources("  <bib/>") == ["  <bib/>"]

    def test_glob_expands_sorted(self, corpus, tmp_path):
        assert expand_sources(str(tmp_path / "doc*.xml")) == sorted(corpus)

    def test_directory_expands_sorted(self, corpus, tmp_path):
        assert expand_sources(str(tmp_path)) == sorted(corpus)

    def test_directory_skips_dotfiles_and_subdirs(self, corpus, tmp_path):
        (tmp_path / ".hidden.xml").write_text("<x/>")
        (tmp_path / "sub").mkdir()
        assert expand_sources(str(tmp_path)) == sorted(corpus)

    def test_mixed_list_preserves_order(self, corpus, tmp_path):
        spec = ["<bib/>", corpus[2], str(tmp_path / "doc0*.xml")]
        expanded = expand_sources(spec)
        assert expanded[0] == "<bib/>"
        assert expanded[1] == corpus[2]
        assert expanded[2:] == sorted(corpus)
    def test_rejects_non_source_items(self):
        with pytest.raises(TypeError):
            expand_sources([42])


class TestOutputPaths:
    def test_path_sources_keep_basename(self):
        paths = _output_paths(["/a/x.xml", "/b/y.xml"], "out")
        assert paths == [os.path.join("out", "x.xml"), os.path.join("out", "y.xml")]

    def test_basename_collision_gets_index_prefix(self):
        paths = _output_paths(["/a/x.xml", "/b/x.xml"], "out")
        assert paths[0] == os.path.join("out", "x.xml")
        assert paths[1] == os.path.join("out", "00001_x.xml")

    def test_markup_sources_get_indexed_names(self):
        paths = _output_paths(["<bib/>", "<bib/>"], "out")
        assert paths == [
            os.path.join("out", "doc00000.xml"),
            os.path.join("out", "doc00001.xml"),
        ]


# -- serial mode (jobs=1) -----------------------------------------------------


class TestSerial:
    def test_jobs1_matches_facade_byte_for_byte(self, corpus, book_grammar):
        projector = resolve_projector(book_grammar, QUERY)
        batch = prune_many(corpus, book_grammar, QUERY, jobs=1)
        assert batch.ok
        assert batch.jobs == 1
        for path, result in zip(corpus, batch.results):
            assert result.text == prune(path, book_grammar, projector).text

    def test_accepts_projector_directly(self, corpus, book_grammar):
        projector = resolve_projector(book_grammar, QUERY)
        by_query = prune_many(corpus, book_grammar, QUERY)
        by_projector = prune_many(corpus, book_grammar, projector)
        assert by_query.texts() == by_projector.texts()

    def test_accepts_markup_sources(self, book_grammar):
        batch = prune_many([_doc(0), _doc(1)], book_grammar, QUERY)
        assert batch.ok
        assert batch.results[0].text == prune(_doc(0), book_grammar,
                                              resolve_projector(book_grammar, QUERY)).text

    def test_aggregate_stats_sum_over_items(self, corpus, book_grammar):
        batch = prune_many(corpus, book_grammar, QUERY)
        singles = [prune(p, book_grammar, resolve_projector(book_grammar, QUERY)).stats
                   for p in corpus]
        assert batch.stats.elements_in == sum(s.elements_in for s in singles)
        assert batch.stats.bytes_out == sum(s.bytes_out for s in singles)
        assert batch.stats.distinct_tags_out == set.union(
            *(set(s.distinct_tags_out) for s in singles)
        )

    def test_empty_sources(self, book_grammar):
        batch = prune_many([], book_grammar, QUERY)
        assert batch.ok
        assert batch.documents == 0
        assert batch.results == []

    def test_out_dir_writes_files(self, corpus, book_grammar, tmp_path):
        out_dir = tmp_path / "pruned"
        batch = prune_many(corpus, book_grammar, QUERY, out_dir=out_dir)
        assert batch.ok
        projector = resolve_projector(book_grammar, QUERY)
        for path, result in zip(corpus, batch.results):
            assert result.text is None
            assert os.path.basename(result.output_path) == os.path.basename(path)
            with open(result.output_path, encoding="utf-8") as handle:
                assert handle.read() == prune(path, book_grammar, projector).text
        assert batch.output_paths() == [r.output_path for r in batch.results]

    def test_malformed_document_reports_error_others_succeed(
        self, corpus, book_grammar, tmp_path
    ):
        bad = tmp_path / "bad.xml"
        bad.write_text("<bib><book year='1'><title>oops</book></bib>")
        items = corpus[:2] + [str(bad)] + corpus[2:]
        batch = prune_many(items, book_grammar, QUERY)
        assert not batch.ok
        assert batch.succeeded == len(corpus)
        (error,) = batch.errors
        assert isinstance(error, BatchError)
        assert error.index == 2
        assert error.kind == "XMLSyntaxError"
        assert batch.results[2] is None
        assert batch.texts()[2] is None
        assert all(text is not None for i, text in enumerate(batch.texts()) if i != 2)

    def test_missing_file_reports_error(self, book_grammar):
        batch = prune_many(["/nonexistent/doc.xml"], book_grammar, QUERY)
        (error,) = batch.errors
        assert error.kind == "FileNotFoundError"

    def test_invalid_jobs_raises(self, corpus, book_grammar):
        with pytest.raises(ValueError):
            prune_many(corpus, book_grammar, QUERY, jobs=-2)

    def test_bad_projector_raises_in_parent(self, corpus, book_grammar):
        with pytest.raises(Exception):
            prune_many(corpus, book_grammar, frozenset({"NotAName"}))


# -- pool mode (jobs>1) -------------------------------------------------------


class TestPool:
    def test_pool_matches_serial_in_order(self, corpus, book_grammar):
        serial = prune_many(corpus, book_grammar, QUERY, jobs=1)
        pooled = prune_many(corpus, book_grammar, QUERY, jobs=2)
        assert pooled.ok
        assert pooled.jobs == 2
        assert pooled.texts() == serial.texts()

    def test_pool_out_dir(self, corpus, book_grammar, tmp_path):
        serial = prune_many(corpus, book_grammar, QUERY, jobs=1)
        out_dir = tmp_path / "pooled"
        pooled = prune_many(corpus, book_grammar, QUERY, jobs=2, out_dir=out_dir)
        assert pooled.ok
        for result, text in zip(pooled.results, serial.texts()):
            with open(result.output_path, encoding="utf-8") as handle:
                assert handle.read() == text

    def test_pool_malformed_document_does_not_poison_batch(
        self, corpus, book_grammar, tmp_path
    ):
        bad = tmp_path / "bad.xml"
        bad.write_text("<bib><unclosed>")
        items = [str(bad)] + corpus
        batch = prune_many(items, book_grammar, QUERY, jobs=2)
        assert batch.succeeded == len(corpus)
        (error,) = batch.errors
        assert error.index == 0
        assert all(text is not None for text in batch.texts()[1:])

    def test_pool_merges_worker_obs(self, corpus, book_grammar):
        with obs.capture() as sink:
            batch = prune_many(corpus, book_grammar, QUERY, jobs=2)
            obs.flush()
        assert batch.ok
        prune_spans = sink.spans("prune")
        assert len(prune_spans) == len(corpus)
        # every worker span is tagged with the process that ran it
        workers = {span["attrs"].get("worker") for span in prune_spans}
        assert None not in workers
        # fused fast path counts one document per prune
        assert sink.counters().get("fastpath.documents") == len(corpus)
        (batch_span,) = sink.spans("prune.batch")
        assert batch_span["attrs"]["jobs"] == 2
        assert batch_span["counters"]["elements_in"] == batch.stats.elements_in

    def test_jobs_zero_uses_all_cores(self, corpus, book_grammar):
        batch = prune_many(corpus[:2], book_grammar, QUERY, jobs=0)
        assert batch.ok
        assert batch.jobs == (os.cpu_count() or 1)

    @pytest.mark.skipif(not HAS_FORK, reason="crash injection requires fork")
    def test_worker_crash_yields_structured_errors_not_hang(
        self, corpus, book_grammar, monkeypatch
    ):
        import repro.parallel as parallel

        def _crash(pruner, options, source, out_path):
            os._exit(13)

        # fork workers inherit the patched module, so every item's worker
        # dies abruptly; the pool must report each item, not hang.
        monkeypatch.setattr(parallel, "_execute_item", _crash)
        batch = prune_many(corpus, book_grammar, QUERY, jobs=2)
        assert batch.succeeded == 0
        assert len(batch.errors) == len(corpus)
        assert {error.kind for error in batch.errors} == {parallel.WORKER_CRASH}
        assert [error.index for error in batch.errors] == list(range(len(corpus)))

    @pytest.mark.skipif(not HAS_FORK, reason="crash injection requires fork")
    def test_crash_then_clean_run_reuses_nothing_stale(self, corpus, book_grammar, monkeypatch):
        import repro.parallel as parallel

        monkeypatch.setattr(
            parallel, "_execute_item", lambda *a: os._exit(13)
        )
        crashed = prune_many(corpus[:2], book_grammar, QUERY, jobs=2)
        assert not crashed.ok
        monkeypatch.undo()
        clean = prune_many(corpus[:2], book_grammar, QUERY, jobs=2)
        assert clean.ok


# -- per-item timeouts, respawn, and degradation ------------------------------


@pytest.mark.skipif(not HAS_FORK, reason="stall injection requires fork")
class TestPoolTimeout:
    """Batch-timeout semantics: a stuck worker is killed, only its item
    fails (``kind="timeout"``), the remaining items still complete in
    input order, and the pool is respawned at most once per kill."""

    def _stall_on(self, monkeypatch, needles):
        import repro.parallel as parallel
        import time as _time

        real = parallel._execute_item

        def stalling(pruner, options, source, out_path):
            if any(needle in source for needle in needles):
                _time.sleep(60)
            return real(pruner, options, source, out_path)

        # fork workers inherit the patched module, so the marked items
        # hang inside their worker while the rest run normally.
        monkeypatch.setattr(parallel, "_execute_item", stalling)

    def test_stuck_item_times_out_others_complete(
        self, corpus, book_grammar, monkeypatch
    ):
        self._stall_on(monkeypatch, ["doc00"])
        batch = prune_many(corpus, book_grammar, QUERY, jobs=2, timeout=1.0)
        assert {(e.index, e.kind) for e in batch.errors} == {(0, "timeout")}
        assert batch.results[0] is None
        assert all(result is not None for result in batch.results[1:])
        assert batch.respawns <= 1
        monkeypatch.undo()
        serial = prune_many(corpus, book_grammar, QUERY, jobs=1)
        assert batch.texts()[1:] == serial.texts()[1:]

    def test_both_workers_stuck_respawns_pool_once(
        self, corpus, book_grammar, monkeypatch
    ):
        # The first two items stall both workers, so the queued items can
        # only complete after the pool is killed and respawned.
        self._stall_on(monkeypatch, ["doc00", "doc01"])
        batch = prune_many(corpus, book_grammar, QUERY, jobs=2, timeout=1.0)
        assert {(e.index, e.kind) for e in batch.errors} == {
            (0, "timeout"),
            (1, "timeout"),
        }
        assert all(result is not None for result in batch.results[2:])
        assert batch.respawns == 1

    def test_timeout_with_no_stall_changes_nothing(self, corpus, book_grammar):
        timed = prune_many(corpus, book_grammar, QUERY, jobs=2, timeout=30.0)
        plain = prune_many(corpus, book_grammar, QUERY, jobs=1)
        assert timed.ok
        assert timed.respawns == 0
        assert timed.texts() == plain.texts()

    def test_jobs1_timeout_folds_into_deadline(self, corpus, book_grammar, monkeypatch):
        import repro.parallel as parallel

        seen = []
        real = parallel._execute_item

        def recording(pruner, options, source, out_path):
            seen.append(options.limits)
            return real(pruner, options, source, out_path)

        monkeypatch.setattr(parallel, "_execute_item", recording)
        batch = prune_many(corpus[:2], book_grammar, QUERY, jobs=1, timeout=2.5)
        assert batch.ok
        assert all(lim is not None and lim.deadline == 2.5 for lim in seen)

    def test_nonpositive_timeout_raises(self, corpus, book_grammar):
        with pytest.raises(ValueError):
            prune_many(corpus, book_grammar, QUERY, jobs=2, timeout=0)


@pytest.mark.skipif(not HAS_FORK, reason="retry injection requires fork")
class TestCrashRetry:
    def test_crashed_item_retried_once(self, corpus, book_grammar, monkeypatch, tmp_path):
        import repro.parallel as parallel

        marker = tmp_path / "crashed-once"
        real = parallel._execute_item

        def crash_first_time(pruner, options, source, out_path):
            if "doc02" in source and not marker.exists():
                marker.touch()
                os._exit(13)
            return real(pruner, options, source, out_path)

        monkeypatch.setattr(parallel, "_execute_item", crash_first_time)
        batch = prune_many(
            corpus, book_grammar, QUERY, jobs=2, retry_crashes=True
        )
        assert batch.results[2] is not None
        assert batch.respawns >= 1

    def test_persistent_crash_still_reported_once_retried(
        self, corpus, book_grammar, monkeypatch
    ):
        import repro.parallel as parallel

        real = parallel._execute_item

        def always_crash(pruner, options, source, out_path):
            if "doc02" in source:
                os._exit(13)
            return real(pruner, options, source, out_path)

        monkeypatch.setattr(parallel, "_execute_item", always_crash)
        batch = prune_many(
            corpus, book_grammar, QUERY, jobs=2, retry_crashes=True
        )
        crash_errors = [e for e in batch.errors if e.kind == parallel.WORKER_CRASH]
        assert {e.index for e in crash_errors} == {2}


@pytest.mark.skipif(not HAS_FORK, reason="fingerprint skew requires fork")
class TestFingerprintMismatch:
    def test_mismatch_falls_back_to_parent_side_prune(
        self, corpus, book_grammar, monkeypatch
    ):
        import repro.parallel as parallel

        real = parallel.grammar_fingerprint
        parent = os.getpid()

        def skewed(grammar):
            fingerprint = real(grammar)
            # The parent sees the true fingerprint; forked workers see a
            # different one, simulating a grammar that does not survive
            # the process boundary intact.
            return fingerprint if os.getpid() == parent else fingerprint + "-skewed"

        monkeypatch.setattr(parallel, "grammar_fingerprint", skewed)
        with obs.capture() as sink:
            batch = prune_many(corpus, book_grammar, QUERY, jobs=2)
            obs.flush()
        assert batch.ok, batch.errors
        assert sink.counters().get("parallel.fingerprint_fallbacks") == len(corpus)
        monkeypatch.undo()
        serial = prune_many(corpus, book_grammar, QUERY, jobs=1)
        assert batch.texts() == serial.texts()


# -- batch extraction ---------------------------------------------------------


EXTRACT_SPEC = ExtractSpec(
    rows="/bib/book",
    fields={"title": "title/text()", "author": "author/text()"},
)


class TestExtractMany:
    def test_serial_matches_facade(self, corpus, book_grammar):
        batch = extract_many(corpus, book_grammar, EXTRACT_SPEC)
        assert batch.ok and batch.jobs == 1
        assert batch.documents == len(corpus)
        for path, result in zip(corpus, batch.results):
            solo = extract(path, book_grammar, EXTRACT_SPEC)
            assert result.text == solo.text
            assert result.records == solo.records
        assert batch.stats.rows_out == len(corpus)  # one book per doc

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_pool_matches_serial(self, corpus, book_grammar):
        serial = extract_many(corpus, book_grammar, EXTRACT_SPEC)
        pool = extract_many(corpus, book_grammar, EXTRACT_SPEC, jobs=2)
        assert pool.ok
        assert [r.text for r in pool.results] == [r.text for r in serial.results]
        assert pool.stats.as_dict() == serial.stats.as_dict()

    def test_out_dir_takes_the_format_extension(self, corpus, book_grammar,
                                                tmp_path):
        out = tmp_path / "rows"
        batch = extract_many(corpus, book_grammar, EXTRACT_SPEC,
                             out_dir=str(out), format="csv")
        assert batch.ok
        names = sorted(os.listdir(out))
        assert names == [f"doc{i:02d}.csv" for i in range(6)]
        lines = (out / names[0]).read_text().splitlines()
        assert lines[0] == "title,author"
        assert lines[1] == "T0,A0"

    def test_error_isolation(self, corpus, book_grammar, tmp_path):
        bad = tmp_path / "zz_bad.xml"  # sorts after the corpus docs
        bad.write_text("<bib><book></bib>")
        items = corpus[:2] + [str(bad)]
        batch = extract_many(items, book_grammar, EXTRACT_SPEC)
        assert not batch.ok
        assert [error.index for error in batch.errors] == [2]
        assert batch.results[2] is None
        assert batch.results[0] is not None and batch.results[1] is not None
        assert batch.succeeded == 2

    def test_foreign_grammar_fails_per_item_not_globally(self, corpus):
        from repro.dtd.grammar import grammar_from_text

        other = grammar_from_text("<!ELEMENT catalog (#PCDATA)>", "catalog")
        spec = ExtractSpec(rows="/catalog", fields={"v": "text()"})
        batch = extract_many(corpus[:1], other, spec)
        # Documents from the wrong vocabulary fail as data, per item —
        # the same structured-error contract as prune_many.
        assert not batch.ok
        assert [error.index for error in batch.errors] == [0]


# -- engine integration -------------------------------------------------------


class TestLoadMany:
    def test_reports_align_with_sources(self, corpus, book_grammar, tmp_path):
        bad = tmp_path / "bad.xml"
        bad.write_text("<bib><nope/></bib>")
        items = corpus[:2] + [str(bad)]
        reports, batch = load_many(items, book_grammar, QUERY)
        assert len(reports) == 3
        assert reports[2] is None
        assert batch.errors[0].index == 2
        for report in reports[:2]:
            assert report.document.root.tag == "bib"
            assert report.prune_stats is not None

    def test_loaded_trees_answer_the_query(self, corpus, book_grammar):
        from repro.engine.executor import QueryEngine

        reports, batch = load_many(corpus, book_grammar, QUERY, jobs=2)
        assert batch.ok
        counts = [QueryEngine(r.document).run(QUERY).result_count for r in reports]
        assert counts == [1] * len(corpus)
