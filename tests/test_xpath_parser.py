"""XPath lexer and parser tests."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    Axis,
    BinaryExpr,
    FilterExpr,
    FunctionCall,
    KindTest,
    Literal,
    LocationPath,
    NameTest,
    Number,
    OrExpr,
    AndExpr,
    PathExpr,
    UnionExpr,
    VariableRef,
)
from repro.xpath.lexer import TokenKind, tokenize
from repro.xpath.parser import parse_location_path, parse_xpath


class TestLexer:
    def test_star_disambiguation(self):
        multiply = tokenize("2 * 3")
        assert [t.kind for t in multiply][1] is TokenKind.OPERATOR
        wildcard = tokenize("child::*")
        assert wildcard[1].kind is TokenKind.STAR

    def test_word_operator_disambiguation(self):
        tokens = tokenize("a and b")
        assert tokens[1].kind is TokenKind.OPERATOR and tokens[1].value == "and"
        # 'and' as an element name at expression start.
        tokens = tokenize("and/or")
        assert tokens[0].kind is TokenKind.NAME

    def test_axis_token(self):
        tokens = tokenize("ancestor-or-self::node()")
        assert tokens[0].kind is TokenKind.AXIS
        assert tokens[0].value == "ancestor-or-self"

    def test_function_vs_node_type(self):
        tokens = tokenize("count(node())")
        assert tokens[0].kind is TokenKind.FUNCTION
        assert tokens[2].kind is TokenKind.NODE_TYPE

    def test_number_with_decimal(self):
        tokens = tokenize("3.14 .5")
        assert tokens[0].value == "3.14"
        assert tokens[1].value == ".5"

    def test_node_order_operators(self):
        tokens = tokenize("a << b >> c")
        values = [t.value for t in tokens if t.kind is TokenKind.OPERATOR]
        assert values == ["<<", ">>"]

    def test_unterminated_literal(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("'oops")


class TestStepParsing:
    def test_default_axis_is_child(self):
        path = parse_location_path("book/title")
        assert all(step.axis is Axis.CHILD for step in path.steps)

    def test_explicit_axes(self):
        path = parse_location_path("descendant::a/ancestor::b/following-sibling::c")
        assert [step.axis for step in path.steps] == [
            Axis.DESCENDANT,
            Axis.ANCESTOR,
            Axis.FOLLOWING_SIBLING,
        ]

    def test_abbreviations(self):
        path = parse_location_path("../@id")
        assert path.steps[0] == parse_location_path("parent::node()").steps[0]
        assert path.steps[1].axis is Axis.ATTRIBUTE
        assert path.steps[1].test == NameTest("id")

    def test_dot_is_self_node(self):
        path = parse_location_path("./a")
        assert path.steps[0].axis is Axis.SELF
        assert path.steps[0].test == KindTest("node")

    def test_double_slash_expansion(self):
        path = parse_location_path("//a//b")
        axes = [step.axis for step in path.steps]
        assert axes == [Axis.DESCENDANT_OR_SELF, Axis.CHILD, Axis.DESCENDANT_OR_SELF, Axis.CHILD]
        assert path.absolute

    def test_bare_node_is_kind_test(self):
        path = parse_location_path("self::node/child::a")
        assert path.steps[0].test == KindTest("node")

    def test_bare_text_is_name_test(self):
        # XMark has an element literally named 'text'.
        path = parse_location_path("child::text")
        assert path.steps[0].test == NameTest("text")

    def test_text_function_is_kind_test(self):
        path = parse_location_path("child::text()")
        assert path.steps[0].test == KindTest("text")

    def test_wildcard(self):
        path = parse_location_path("child::*")
        assert path.steps[0].test == NameTest(None)

    def test_predicates_attach_to_steps(self):
        path = parse_location_path("a[b][2]")
        assert len(path.steps[0].predicates) == 2
        assert isinstance(path.steps[0].predicates[1], Number)

    def test_absolute_root_only(self):
        path = parse_location_path("/")
        assert path.absolute and path.steps == ()


class TestExpressions:
    def test_precedence_or_and_comparison(self):
        expr = parse_xpath("a or b and c = d")
        assert isinstance(expr, OrExpr)
        assert isinstance(expr.right, AndExpr)
        assert isinstance(expr.right.right, BinaryExpr)

    def test_arithmetic_precedence(self):
        expr = parse_xpath("1 + 2 * 3")
        assert isinstance(expr, BinaryExpr) and expr.op == "+"
        assert isinstance(expr.right, BinaryExpr) and expr.right.op == "*"

    def test_union(self):
        expr = parse_xpath("a | b | c")
        assert isinstance(expr, UnionExpr)
        assert isinstance(expr.left, UnionExpr)

    def test_function_call_with_args(self):
        expr = parse_xpath("contains(name, 'x')")
        assert expr == FunctionCall(
            "contains",
            (LocationPath((expr.args[0].steps[0],),), Literal("x")),
        )

    def test_variable_rooted_path(self):
        expr = parse_xpath("$x/a/b")
        assert isinstance(expr, PathExpr)
        assert expr.source == VariableRef("x")
        assert len(expr.steps) == 2

    def test_variable_with_double_slash(self):
        expr = parse_xpath("$x//a")
        assert isinstance(expr, PathExpr)
        assert expr.steps[0].axis is Axis.DESCENDANT_OR_SELF

    def test_filter_expression(self):
        expr = parse_xpath("$x[1]")
        assert isinstance(expr, FilterExpr)

    def test_parenthesised(self):
        expr = parse_xpath("(1 + 2) * 3")
        assert isinstance(expr, BinaryExpr) and expr.op == "*"

    def test_value_comparisons(self):
        for op in ("eq", "ne", "lt", "le", "gt", "ge"):
            expr = parse_xpath(f"a {op} b")
            assert isinstance(expr, BinaryExpr) and expr.op == op

    def test_unary_minus(self):
        from repro.xpath.ast import UnaryMinus

        assert isinstance(parse_xpath("-a"), UnaryMinus)

    @pytest.mark.parametrize("bad", ["a[", "a//", "::x", "a b", "count(", "$", "a["])
    def test_syntax_errors(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(bad)

    def test_not_a_location_path(self):
        with pytest.raises(XPathSyntaxError):
            parse_location_path("1 + 2")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "query",
        [
            "child::a/descendant::b",
            "/site/people/person[profile/age > 60]/name",
            "//item[parent::namerica or parent::samerica]/name",
            "self::a[child::b or child::c]",
            "count(child::a) > 3",
        ],
    )
    def test_str_reparses_to_same_ast(self, query):
        once = parse_xpath(query)
        assert parse_xpath(str(once)) == once
