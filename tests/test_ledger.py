"""The attestation ledger (:mod:`repro.ledger`).

Four layers of guarantees, each tested here:

* **canonical encoding** — deterministic JSON (key-order invariant,
  idempotent through ``json.loads``, stable across processes), property-
  tested with Hypothesis;
* **chain integrity** — any single-entry mutation, insertion, deletion
  or reorder is rejected on open with :class:`LedgerCorrupt`;
* **concurrency & crash safety** — threads and forked processes
  appending to one ledger produce a valid unbroken chain with no torn
  lines, and a writer killed mid-append costs at most the final partial
  line (mirrors ``test_threaded_hammer_keeps_the_cache_consistent`` in
  ``tests/test_projector_cache.py``);
* **recording, dedup and replay** — the ``prune()``/``extract()``
  facades record and serve byte-identical results, and
  :func:`replay_ledger` re-earns every attestation (divergences and
  skips land in the structured report, not in exceptions).
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
import threading

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import extract, obs, prune
from repro.dtd.grammar import grammar_from_text
from repro.errors import LedgerCorrupt
from repro.extract.spec import ExtractSpec
from repro.extract.stats import ExtractStats
from repro.ledger import (
    HashingSink,
    Ledger,
    canonical_json,
    decode_stats,
    encode_stats,
    hash_canonical,
    hash_file,
    hash_records,
    hash_text,
    replay_ledger,
)
from repro.projection.stats import PruneStats
from tests.conftest import BOOK_DTD, BOOK_XML

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# -- canonical encoding (Hypothesis) -----------------------------------------

# No surrogates: canonical text ultimately hashes through strict UTF-8.
_text = st.text(
    alphabet=st.characters(exclude_categories=("Cs",)), max_size=12
)
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    _text,
)
_json_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(_text, children, max_size=4),
    ),
    max_leaves=24,
)


def _reorder(value):
    """The same JSON value with every dict's insertion order reversed."""
    if isinstance(value, dict):
        return {key: _reorder(value[key]) for key in reversed(list(value))}
    if isinstance(value, list):
        return [_reorder(item) for item in value]
    return value


def _encode_or_assume(value) -> str:
    try:
        return canonical_json(value)
    except ValueError:
        # NFC-colliding keys (or NaN smuggled through) are rejected by
        # design — not interesting cases for the determinism properties.
        assume(False)
        raise AssertionError  # pragma: no cover


class TestCanonicalEncoding:
    @given(_json_values)
    @settings(max_examples=150, deadline=None)
    def test_invariant_under_dict_key_order(self, value):
        assert _encode_or_assume(value) == canonical_json(_reorder(value))

    @given(_json_values)
    @settings(max_examples=150, deadline=None)
    def test_idempotent_through_json_loads(self, value):
        encoded = _encode_or_assume(value)
        decoded = json.loads(encoded)
        assert canonical_json(decoded) == encoded
        assert hash_canonical(decoded) == hash_canonical(value)

    @given(_json_values)
    @settings(max_examples=100, deadline=None)
    def test_encoding_is_parseable_json(self, value):
        encoded = _encode_or_assume(value)
        json.loads(encoded)  # must not raise

    def test_sorted_keys_and_tight_separators(self):
        assert canonical_json({"b": 1, "a": [True, None]}) == '{"a":[true,null],"b":1}'

    def test_negative_zero_collapses(self):
        assert canonical_json(-0.0) == canonical_json(0.0)
        assert hash_canonical({"x": -0.0}) == hash_canonical({"x": 0.0})

    def test_nfc_normalization_unifies_spellings(self):
        composed = "café"
        decomposed = "café"
        assert canonical_json(composed) == canonical_json(decomposed)
        with pytest.raises(ValueError, match="duplicate key"):
            canonical_json({composed: 1, decomposed: 2})

    def test_rejections(self):
        with pytest.raises(ValueError):
            canonical_json(float("nan"))
        with pytest.raises(ValueError):
            canonical_json([float("inf")])
        with pytest.raises(TypeError):
            canonical_json({1: "non-string key"})
        with pytest.raises(TypeError):
            canonical_json({"x": object()})

    def test_hashes_stable_across_processes(self):
        value = {"b": [1, 2.5, None, True], "a": "café", "n": -0.0}
        code = (
            "from repro.ledger import hash_canonical\n"
            "print(hash_canonical({'b': [1, 2.5, None, True], "
            "'a': 'caf\\u00e9', 'n': -0.0}))"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == hash_canonical(value)

    def test_hash_text_matches_hash_file(self, tmp_path):
        text = "<bib>élève &amp; price</bib>\n"
        path = tmp_path / "doc.xml"
        path.write_text(text, encoding="utf-8")
        assert hash_file(path) == hash_text(text)

    def test_hashing_sink_matches_hash_text_and_tees(self):
        tee = io.StringIO()
        sink = HashingSink(tee=tee)
        for chunk in ("<a>", "café", "</a>"):
            sink.write(chunk)
        sink.flush()
        assert sink.hexdigest() == hash_text("<a>café</a>")
        assert tee.getvalue() == "<a>café</a>"
        assert sink.written == len("<a>café</a>")

    def test_hash_records_is_order_sensitive(self):
        rows = [{"a": "1"}, {"a": "2"}]
        assert hash_records(rows) != hash_records(list(reversed(rows)))
        assert hash_records(rows) == hash_records([dict(r) for r in rows])


class TestStatsRoundTrip:
    def test_prune_stats(self):
        stats = PruneStats(
            elements_in=10, elements_out=4, texts_in=5, texts_out=2,
            attributes_in=3, attributes_out=1, bytes_in=100, bytes_out=40,
            distinct_tags_in={"a", "b"}, distinct_tags_out={"a"},
        )
        wire = encode_stats(stats)
        assert wire["kind"] == "prune"
        canonical_json(wire)  # JSON-safe by construction
        assert decode_stats(json.loads(json.dumps(wire))) == stats

    def test_extract_stats(self):
        stats = ExtractStats(rows_out=7, fields_out=14, nulls_out=2,
                             bytes_in=100, bytes_out=50)
        wire = encode_stats(stats)
        assert wire["kind"] == "extract"
        assert decode_stats(json.loads(json.dumps(wire))) == stats


# -- the chained ledger file -------------------------------------------------


def _record(ledger: Ledger, i: int, tag: str = "x", text: str | None = None):
    text = text if text is not None else f"<out>{tag}-{i}</out>"
    return ledger.record(
        op="prune",
        grammar_fp=f"grammar-{tag}",
        workload_fp=f"workload-{i}",
        limits_fp="limits",
        input_hash=f"input-{tag}-{i}",
        output_hash=hash_text(text),
        stats=encode_stats(PruneStats(bytes_in=len(text) + 1, bytes_out=len(text))),
        provenance={"tag": tag},
        result={"kind": "prune", "text": text},
    )


class TestLedgerFile:
    def test_append_reopen_verifies_chain(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with Ledger(path, fsync=False) as ledger:
            first = _record(ledger, 1)
            second = _record(ledger, 2)
            assert first.prev == "" and second.prev == first.entry_hash
            assert ledger.tip == second.entry_hash
            assert [e.seq for e in ledger.entries] == [1, 2]
        with Ledger(path, fsync=False) as ledger:
            assert len(ledger) == 2
            assert ledger.tip == second.entry_hash
            third = _record(ledger, 3)
            assert third.prev == second.entry_hash and third.seq == 3

    def test_identical_rerun_dedups_and_heals_the_store(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with Ledger(path, fsync=False) as ledger:
            entry = _record(ledger, 1)
            again = _record(ledger, 1)
            assert again is entry and len(ledger) == 1
            # Losing the stored blob disables serving; re-running the
            # workload re-puts it instead of appending history.
            blob = os.path.join(path + ".store", entry.output_hash + ".json")
            os.unlink(blob)
            assert ledger.fetch(entry.key) is None
            _record(ledger, 1)
            assert len(ledger) == 1 and ledger.fetch(entry.key) is not None

    def test_same_key_new_output_appends(self, tmp_path):
        """A changed output for a recorded key is *history*, not an
        overwrite — both attestations stay on the chain."""
        path = str(tmp_path / "ledger.jsonl")
        with Ledger(path, fsync=False) as ledger:
            first = _record(ledger, 1, text="<out>v1</out>")
            second = _record(ledger, 1, text="<out>v2</out>")
            assert second.seq == 2 and second.key == first.key
            assert ledger.lookup(first.key) is second  # latest wins

    def test_fetch_refuses_tampered_store_payload(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with Ledger(path, fsync=False) as ledger:
            entry = _record(ledger, 1)
            blob = os.path.join(path + ".store", entry.output_hash + ".json")
            payload = json.loads(open(blob, encoding="utf-8").read())
            payload["text"] += "!"
            with open(blob, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            assert ledger.fetch(entry.key) is None
            assert ledger.hits == 0

    def test_any_single_entry_mutation_is_rejected(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with Ledger(path, fsync=False) as ledger:
            for i in range(1, 4):
                _record(ledger, i)
        pristine = open(path, "rb").read()
        lines = pristine.splitlines(keepends=True)
        assert len(lines) == 3
        for victim in range(3):
            line = lines[victim]
            where = line.index(b'"output":"') + len(b'"output":"')
            flipped = b"0" if line[where:where + 1] != b"0" else b"1"
            mutated = line[:where] + flipped + line[where + 1:]
            assert mutated != line
            with open(path, "wb") as handle:
                handle.writelines(
                    mutated if i == victim else original
                    for i, original in enumerate(lines)
                )
            with pytest.raises(LedgerCorrupt):
                Ledger(path, fsync=False)
        # Deleting or swapping whole entries breaks the chain too.
        with open(path, "wb") as handle:
            handle.writelines([lines[0], lines[2]])
        with pytest.raises(LedgerCorrupt):
            Ledger(path, fsync=False)
        with open(path, "wb") as handle:
            handle.writelines([lines[1], lines[0], lines[2]])
        with pytest.raises(LedgerCorrupt):
            Ledger(path, fsync=False)
        with open(path, "wb") as handle:
            handle.write(pristine)
        with Ledger(path, fsync=False) as ledger:
            assert len(ledger) == 3  # pristine bytes still verify

    def test_torn_final_line_is_truncated_on_open(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with Ledger(path, fsync=False) as ledger:
            _record(ledger, 1)
            _record(ledger, 2)
        intact = open(path, "rb").read()
        with open(path, "ab") as handle:
            handle.write(b'{"v":1,"seq":3,"op":"prune","gram')
        with Ledger(path, fsync=False) as ledger:
            assert len(ledger) == 2
        assert open(path, "rb").read() == intact

    def test_shrunk_file_is_corrupt(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with Ledger(path, fsync=False) as ledger:
            _record(ledger, 1)
            _record(ledger, 2)
            with open(path, "rb") as handle:
                first_line_len = len(handle.readline())
            os.truncate(path, first_line_len)
            with pytest.raises(LedgerCorrupt, match="shrank"):
                _record(ledger, 3)

    def test_ledger_is_always_truthy(self, tmp_path):
        with Ledger(tmp_path / "ledger.jsonl", fsync=False) as ledger:
            assert len(ledger) == 0 and bool(ledger)

    def test_entry_hashes_stable_across_processes(self, tmp_path):
        with Ledger(tmp_path / "here.jsonl", fsync=False) as ledger:
            local = _record(ledger, 1)
        code = (
            "import sys\n"
            "from repro.ledger import Ledger, encode_stats, hash_text\n"
            "from repro.projection.stats import PruneStats\n"
            "text = '<out>x-1</out>'\n"
            "with Ledger(sys.argv[1], fsync=False) as ledger:\n"
            "    entry = ledger.record(op='prune', grammar_fp='grammar-x',\n"
            "        workload_fp='workload-1', limits_fp='limits',\n"
            "        input_hash='input-x-1', output_hash=hash_text(text),\n"
            "        stats=encode_stats(PruneStats(bytes_in=len(text) + 1,\n"
            "                                      bytes_out=len(text))),\n"
            "        provenance={'tag': 'x'})\n"
            "print(entry.entry_hash)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code, str(tmp_path / "there.jsonl")],
            capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == local.entry_hash


# -- concurrency & crash safety ----------------------------------------------


class TestConcurrencyAndCrashes:
    def test_thread_and_fork_hammer_keeps_the_chain_unbroken(self, tmp_path):
        """8 threads sharing one handle plus 4 forked workers with their
        own handles, all appending to one file: every append lands, the
        chain verifies end to end, and no line is torn."""
        path = str(tmp_path / "ledger.jsonl")
        per_writer = 20

        child_pids = []
        for worker in range(4):
            pid = os.fork()
            if pid == 0:
                status = 1
                try:
                    with Ledger(path, fsync=False) as ledger:
                        for i in range(per_writer):
                            _record(ledger, i, tag=f"fork{worker}")
                    status = 0
                finally:
                    os._exit(status)
            child_pids.append(pid)

        errors: list[BaseException] = []
        with Ledger(path, fsync=False) as ledger:
            def hammer(thread: int) -> None:
                try:
                    for i in range(per_writer):
                        _record(ledger, i, tag=f"thread{thread}")
                except BaseException as exc:  # pragma: no cover - fail loudly
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(t,)) for t in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
                assert not thread.is_alive(), "hammer thread wedged"
        for pid in child_pids:
            _, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0, "forked writer failed"
        assert not errors

        raw = open(path, "rb").read()
        assert raw.endswith(b"\n"), "torn final line survived the hammer"
        with Ledger(path, fsync=False) as ledger:  # full chain verification
            assert len(ledger) == (8 + 4) * per_writer
            assert raw.count(b"\n") == len(ledger)
            assert [e.seq for e in ledger.entries] == list(
                range(1, len(ledger) + 1)
            )

    def test_writer_killed_mid_append_costs_one_partial_line(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with Ledger(path, fsync=True) as ledger:
            _record(ledger, 1)
            _record(ledger, 2)

        pid = os.fork()
        if pid == 0:
            # Die mid-append: half an entry hits the file, no newline,
            # no cleanup (os._exit skips every handler).
            fd = os.open(path, os.O_APPEND | os.O_WRONLY)
            os.write(fd, b'{"v":1,"seq":3,"op":"prune","grammar":"gram')
            os._exit(1)
        os.waitpid(pid, 0)
        raw = open(path, "rb").read()
        assert not raw.endswith(b"\n")  # the torn line really is there

        with Ledger(path, fsync=False) as ledger:
            assert len(ledger) == 2  # at most the final partial line lost
            entry = _record(ledger, 3)
            assert entry.seq == 3
        raw = open(path, "rb").read()
        assert raw.endswith(b"\n") and raw.count(b"\n") == 3

        report = replay_ledger(path)
        assert report.ok and not report.divergent


# -- facade recording, dedup serving, replay ---------------------------------


@pytest.fixture()
def bib(tmp_path):
    grammar = grammar_from_text(BOOK_DTD, "bib")
    doc = tmp_path / "bib.xml"
    doc.write_text(BOOK_XML, encoding="utf-8")
    return grammar, str(doc), str(tmp_path / "ledger.jsonl")


PROV = {"grammar": {"dtd": BOOK_DTD, "root": "bib"}}
TITLES = frozenset({"bib", "book", "title"})


class TestFacadeRecording:
    def test_prune_records_serves_and_counts(self, bib):
        grammar, doc, led_path = bib
        with obs.capture(), Ledger(led_path, fsync=False) as ledger:
            fresh = prune(doc, grammar, TITLES)
            first = prune(doc, grammar, TITLES, ledger=ledger, provenance=PROV)
            second = prune(doc, grammar, TITLES, ledger=ledger, provenance=PROV)
            assert first.text == second.text == fresh.text
            assert first.stats == second.stats == fresh.stats
            assert ledger.appended == 1 and ledger.hits == 1
            assert obs.counter("ledger.records") == 1
            assert obs.counter("ledger.hits") == 1

    def test_validate_runs_are_never_dedup_served(self, bib):
        grammar, doc, led_path = bib
        with Ledger(led_path, fsync=False) as ledger:
            prune(doc, grammar, TITLES, ledger=ledger, validate=True)
            prune(doc, grammar, TITLES, ledger=ledger, validate=True)
            assert ledger.hits == 0 and len(ledger) == 1

    def test_stream_output_attests_without_a_blob(self, bib):
        grammar, doc, led_path = bib
        with Ledger(led_path, fsync=False) as ledger:
            sink = io.StringIO()
            prune(doc, grammar, TITLES, out=sink, ledger=ledger)
            entry = ledger.entries[0]
            assert entry.output_hash == hash_text(sink.getvalue())
            # No stored bytes -> no dedup serve; the re-run re-attests
            # the same hash without appending history.
            again = io.StringIO()
            prune(doc, grammar, TITLES, out=again, ledger=ledger)
            assert again.getvalue() == sink.getvalue()
            assert ledger.hits == 0 and len(ledger) == 1

    def test_stream_sources_bypass_the_ledger(self, bib):
        grammar, _, led_path = bib
        with Ledger(led_path, fsync=False) as ledger:
            result = prune(io.StringIO(BOOK_XML), grammar, TITLES, ledger=ledger)
            assert result.text is not None
            assert len(ledger) == 0

    def test_extract_records_and_serves_records(self, bib):
        grammar, doc, led_path = bib
        spec = ExtractSpec(
            rows="/bib/book",
            fields={"title": "title/text()", "isbn": "@isbn"},
        )
        with Ledger(led_path, fsync=False) as ledger:
            fresh = extract(doc, grammar, spec)
            first = extract(doc, grammar, spec, ledger=ledger, provenance=PROV)
            second = extract(doc, grammar, spec, ledger=ledger, provenance=PROV)
            assert ledger.appended == 1 and ledger.hits == 1
            assert second.text == first.text == fresh.text
            assert second.records == first.records == fresh.records
            assert second.stats == first.stats == fresh.stats
            entry = ledger.entries[0]
            assert entry.op == "extract" and entry.records_hash is not None

    def test_prune_and_extract_to_path_serve_identical_files(self, bib, tmp_path):
        grammar, doc, led_path = bib
        out_a, out_b = str(tmp_path / "a.xml"), str(tmp_path / "b.xml")
        with Ledger(led_path, fsync=False) as ledger:
            prune(doc, grammar, TITLES, out=out_a, ledger=ledger)
            prune(doc, grammar, TITLES, out=out_b, ledger=ledger)
            assert ledger.hits == 1
            assert open(out_a).read() == open(out_b).read()


class TestReplay:
    def _recorded(self, bib) -> "tuple[str, object]":
        grammar, doc, led_path = bib
        spec = ExtractSpec(rows="/bib/book", fields={"title": "title/text()"})
        with Ledger(led_path, fsync=False) as ledger:
            prune(doc, grammar, TITLES, ledger=ledger, provenance=PROV)
            extract(doc, grammar, spec, ledger=ledger, provenance=PROV)
        return led_path, grammar

    def test_replay_attests_everything(self, bib):
        led_path, _ = self._recorded(bib)
        report = replay_ledger(led_path, jobs=2)
        assert report.ok and report.attested == report.total == 2
        assert not report.skipped
        data = report.as_dict()
        assert data["ok"] and data["attested"] == 2

    def test_changed_input_is_divergent(self, bib):
        led_path, _ = self._recorded(bib)
        _, doc, _ = bib
        with open(doc, "a", encoding="utf-8") as handle:
            handle.write("<!-- tampered -->")
        report = replay_ledger(led_path)
        assert not report.ok and len(report.divergent) == 2
        assert all("input file changed" in item.reason
                   for item in report.divergent)

    def test_missing_source_is_skipped_not_failed(self, bib):
        led_path, _ = self._recorded(bib)
        _, doc, _ = bib
        os.unlink(doc)
        # The stored results still hash-verify (step 1), but the runs
        # cannot be re-earned — reported as skips, never as divergence.
        report = replay_ledger(led_path)
        assert report.ok and report.attested == 0
        assert {item.reason for item in report.skipped} == {
            "source file no longer exists"
        }

    def test_grammar_fallback_by_fingerprint(self, bib):
        grammar, doc, led_path = bib
        with Ledger(led_path, fsync=False) as ledger:
            # No grammar provenance recorded at all.
            prune(doc, grammar, TITLES, ledger=ledger)
        assert replay_ledger(led_path).skipped  # unrecoverable alone
        report = replay_ledger(led_path, grammar=grammar)
        assert report.ok and report.attested == 1
        wrong = grammar_from_text("<!ELEMENT r (#PCDATA)>", "r")
        report = replay_ledger(led_path, grammars=[wrong])
        assert report.attested == 0 and report.skipped

    def test_since_replays_a_suffix(self, bib):
        led_path, _ = self._recorded(bib)
        report = replay_ledger(led_path, since=2)
        assert report.total == 1 and report.ok


class TestCli:
    def test_verify_ledger_command(self, bib, capsys):
        from repro.cli import main

        grammar, doc, led_path = bib
        with Ledger(led_path, fsync=False) as ledger:
            prune(doc, grammar, TITLES, ledger=ledger, provenance=PROV)
        assert main(["verify-ledger", "--ledger", led_path, "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "1 attested, 0 divergent, 0 skipped" in out

        with open(doc, "a", encoding="utf-8") as handle:
            handle.write(" ")
        assert main(["verify-ledger", "--ledger", led_path]) == 1
        captured = capsys.readouterr()
        assert "DIVERGENT seq=1" in captured.err

    def test_prune_and_extract_ledger_flags(self, bib, tmp_path, capsys):
        from repro.cli import main

        _, doc, led_path = bib
        dtd = tmp_path / "bib.dtd"
        dtd.write_text(BOOK_DTD, encoding="utf-8")
        out = str(tmp_path / "pruned.xml")
        argv = ["prune", "--dtd", str(dtd), "--root", "bib",
                "--query", "/bib/book/title", doc, out, "--ledger", led_path]
        assert main(argv) == 0
        assert "ledger: attestation recorded" in capsys.readouterr().out
        assert main(argv) == 0
        assert "ledger: served from recorded result" in capsys.readouterr().out

        argv = ["extract", "--dtd", str(dtd), "--root", "bib",
                "--rows", "/bib/book", "--field", "title=title/text()",
                doc, "--ledger", led_path]
        assert main(argv) == 0
        assert "ledger: attestation recorded" in capsys.readouterr().err
        assert main(argv) == 0
        assert "ledger: served from recorded result" in capsys.readouterr().err

        # The recorded dtd_path provenance makes the replay self-contained.
        assert main(["verify-ledger", "--ledger", led_path]) == 0
        assert "2 attested" in capsys.readouterr().out

    def test_ledger_refuses_batch_and_server(self, bib, tmp_path):
        from repro.cli import main

        _, doc, led_path = bib
        with pytest.raises(SystemExit, match="single-document"):
            main(["prune", "--xmark", "--query", "/site", "--jobs", "2",
                  doc, str(tmp_path), "--ledger", led_path])
        with pytest.raises(SystemExit, match="serve --ledger"):
            main(["prune", "--xmark", "--query", "/site", doc,
                  str(tmp_path / "o.xml"), "--ledger", led_path,
                  "--server", "127.0.0.1:1"])
